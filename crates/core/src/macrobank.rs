//! The batched multi-macro executor.
//!
//! Where [`Chip`](crate::bank::Chip) models the paper's *lock-step* chip
//! (one broadcast op, every macro in the same cycle), a [`MacroBank`] is the
//! throughput-oriented executor a server workload needs: it owns `N`
//! independent [`ImcMacro`]s and spreads a queue of independent jobs across
//! them, one worker thread per macro, with results returned in job order.
//!
//! Each job gets exclusive `&mut` access to one macro for its whole
//! duration, so macro state (rows, activity log, separator counters) stays
//! consistent and no locking is involved. Cycle and energy accounting is
//! unchanged from running the same jobs sequentially on one macro: the
//! activity logs record *hardware* cycles, and [`MacroBank::total_cycles`]
//! sums them across macros (total work), while
//! [`MacroBank::makespan_cycles`] reports the parallel-completion bound
//! (slowest macro).
//!
//! # Examples
//!
//! ```
//! use bpimc_core::{MacroBank, MacroConfig, Precision};
//!
//! let mut bank = MacroBank::new(4, MacroConfig::paper_macro());
//! // 64 independent add jobs, dispatched across the 4 macros.
//! let sums = bank.run_batch(&(0u64..64).collect::<Vec<_>>(), |mac, &j| {
//!     mac.write_words(0, Precision::P8, &[j]).unwrap();
//!     mac.write_words(1, Precision::P8, &[100]).unwrap();
//!     mac.add(0, 1, 2, Precision::P8).unwrap();
//!     mac.read_words(2, Precision::P8, 1).unwrap()[0]
//! });
//! assert_eq!(sums[7], 107);
//! assert_eq!(bank.total_cycles(), 64 * 4); // 2 writes + 1 add + 1 read each
//! ```

use crate::config::MacroConfig;
use crate::macroblock::ImcMacro;
use bpimc_stats::parallel::{
    par_queue_map, par_queue_try_map, par_queue_try_map_cancellable, par_state_map, worker_count,
    CancelToken, CancellableBatch, JobPanic,
};

/// Cache-line-aligned macro slot: neighbouring macros are mutated by
/// different threads during a batch, and sharing a line between them would
/// ping-pong on every activity-log push.
#[derive(Debug, Clone, PartialEq)]
#[repr(align(128))]
struct MacroSlot(ImcMacro);

/// A pool of independent IMC macros executing batched workloads in
/// parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroBank {
    macros: Vec<MacroSlot>,
}

impl MacroBank {
    /// A bank of `n` zeroed macros.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, config: MacroConfig) -> Self {
        assert!(n > 0, "a bank needs at least one macro");
        Self {
            macros: (0..n).map(|_| MacroSlot(ImcMacro::new(config))).collect(),
        }
    }

    /// A bank sized to the host: one macro per available worker thread.
    pub fn with_host_parallelism(config: MacroConfig) -> Self {
        Self::new(worker_count(usize::MAX), config)
    }

    /// Number of macros in the bank.
    pub fn len(&self) -> usize {
        self.macros.len()
    }

    /// Always false: banks have at least one macro.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the macros immutably (activity inspection).
    pub fn macros(&self) -> impl Iterator<Item = &ImcMacro> {
        self.macros.iter().map(|s| &s.0)
    }

    /// One macro, mutably (single-stream use and setup).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn macro_at(&mut self, i: usize) -> &mut ImcMacro {
        &mut self.macros[i].0
    }

    /// Runs one closure per macro concurrently (macro index, `&mut` macro)
    /// and returns the per-macro results in index order.
    pub fn dispatch<T, F>(&mut self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut ImcMacro) -> T + Sync,
    {
        par_state_map(&mut self.macros, |i, slot| f(i, &mut slot.0))
    }

    /// Spreads `jobs` across the bank — the calling thread and one pool
    /// worker per additional macro pull jobs from a shared claim queue —
    /// and returns `f`'s results **in job order**.
    ///
    /// `f` gets exclusive access to one macro per job, so it can freely
    /// write rows, run multi-cycle ops and read results. Which macro serves
    /// which job is scheduling-dependent, so jobs must be self-contained
    /// (write their operand rows before using them — as anything batched
    /// across macros must anyway). For stateful per-macro workloads use
    /// [`MacroBank::dispatch`]. The claim-queue design bounds a batch's
    /// cost at sequential time plus a sub-millisecond dispatch overhead
    /// even when pool worker wake-ups are slow (sandboxed kernels can take
    /// ~0.5 ms to deliver one); batches with more than ~1 ms of work spread
    /// across all macros.
    pub fn run_batch<J, T, F>(&mut self, jobs: &[J], f: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(&mut ImcMacro, &J) -> T + Sync,
    {
        par_queue_map(&mut self.macros, jobs, |slot, job| f(&mut slot.0, job))
    }

    /// [`MacroBank::run_batch`] with per-job panic containment: a job that
    /// panics yields `Err(JobPanic)` in its own result slot while sibling
    /// jobs complete normally and the bank stays usable for later batches.
    ///
    /// This is the entry point a multi-client service uses: one client's
    /// faulty request must fail alone, not take down every in-flight
    /// request sharing the bank. A panicking job may leave its macro's
    /// array rows partially written, which the next job tolerates by
    /// construction (batched jobs always write their operand rows before
    /// using them); its activity log may likewise carry a partial op, so
    /// accounting-sensitive callers should clear per job.
    pub fn try_run_batch<J, T, F>(&mut self, jobs: &[J], f: F) -> Vec<Result<T, JobPanic>>
    where
        J: Sync,
        T: Send,
        F: Fn(&mut ImcMacro, &J) -> T + Sync,
    {
        par_queue_try_map(&mut self.macros, jobs, |slot, job| f(&mut slot.0, job))
    }

    /// [`MacroBank::try_run_batch`] with **cooperative cancellation**: the
    /// token is checked in the claim queue between block claims, so a
    /// batch whose deadline passes (or that a caller cancels) stops
    /// claiming new jobs within one claim-queue block per lane — with zero
    /// per-element overhead while the token is quiet. Jobs never claimed
    /// return `None`; jobs already claimed when the token fires still
    /// complete (their macro work and activity-log entries are real).
    /// The returned [`CancellableBatch::cancelled`] flag reflects the
    /// token's state when the batch finished — a token that fires after
    /// the final block is claimed (every slot `Some`) still sets it.
    pub fn try_run_batch_cancellable<J, T, F>(
        &mut self,
        jobs: &[J],
        f: F,
        cancel: &CancelToken,
    ) -> CancellableBatch<T>
    where
        J: Sync,
        T: Send,
        F: Fn(&mut ImcMacro, &J) -> T + Sync,
    {
        par_queue_try_map_cancellable(
            &mut self.macros,
            jobs,
            |slot, job| f(&mut slot.0, job),
            cancel,
        )
    }

    /// Total hardware cycles across all macros — the amount of work done,
    /// identical to running the same jobs on one macro.
    pub fn total_cycles(&self) -> u64 {
        self.macros
            .iter()
            .map(|m| m.0.activity().total_cycles())
            .sum()
    }

    /// Parallel completion bound: the busiest macro's cycle count.
    pub fn makespan_cycles(&self) -> u64 {
        self.macros
            .iter()
            .map(|m| m.0.activity().total_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Clears every macro's activity log (array contents untouched).
    pub fn clear_activity(&mut self) {
        for m in &mut self.macros {
            m.0.clear_activity();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    #[test]
    fn batch_results_are_in_job_order() {
        let mut bank = MacroBank::new(3, MacroConfig::paper_macro());
        let jobs: Vec<u64> = (0..50).collect();
        let out = bank.run_batch(&jobs, |mac, &j| {
            mac.write_words(0, Precision::P8, &[j % 251]).unwrap();
            mac.read_words(0, Precision::P8, 1).unwrap()[0]
        });
        assert_eq!(out, jobs.iter().map(|j| j % 251).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_accounting_matches_single_macro_execution() {
        // The same 40 mult jobs on a 4-macro bank and on a single macro
        // must log identical total cycles (the log counts hardware cycles,
        // not host time).
        let jobs: Vec<(u64, u64)> = (0..40).map(|i| (i % 256, (i * 7) % 256)).collect();
        let run = |mac: &mut ImcMacro, job: &(u64, u64)| -> u64 {
            mac.write_mult_operands(0, Precision::P8, &[job.0]).unwrap();
            mac.write_mult_operands(1, Precision::P8, &[job.1]).unwrap();
            mac.mult(0, 1, 2, Precision::P8).unwrap();
            mac.read_products(2, Precision::P8, 1).unwrap()[0]
        };

        let mut bank = MacroBank::new(4, MacroConfig::paper_macro());
        let got = bank.run_batch(&jobs, run);

        let mut single = ImcMacro::new(MacroConfig::paper_macro());
        let expect: Vec<u64> = jobs.iter().map(|j| run(&mut single, j)).collect();

        assert_eq!(got, expect);
        assert_eq!(bank.total_cycles(), single.activity().total_cycles());
        assert!(bank.makespan_cycles() <= bank.total_cycles());
        for (a, b) in jobs.iter().zip(&got) {
            assert_eq!(a.0 * a.1, *b);
        }
    }

    #[test]
    fn dispatch_reaches_every_macro() {
        let mut bank = MacroBank::new(5, MacroConfig::paper_macro());
        let ids = bank.dispatch(|i, mac| {
            mac.write_words(0, Precision::P8, &[i as u64]).unwrap();
            i
        });
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        for i in 0..5 {
            assert_eq!(
                bank.macro_at(i).read_words(0, Precision::P8, 1).unwrap()[0],
                i as u64
            );
        }
    }

    #[test]
    fn more_macros_than_jobs_is_fine() {
        let mut bank = MacroBank::new(8, MacroConfig::paper_macro());
        let out = bank.run_batch(&[1u64, 2], |mac, &j| {
            mac.write_words(0, Precision::P8, &[j]).unwrap();
            j * 10
        });
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let mut bank = MacroBank::new(2, MacroConfig::paper_macro());
        let out: Vec<u64> = bank.run_batch(&[], |_mac, j: &u64| *j);
        assert!(out.is_empty());
        assert_eq!(bank.total_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one macro")]
    fn zero_macros_rejected() {
        let _ = MacroBank::new(0, MacroConfig::paper_macro());
    }

    #[test]
    fn cancelled_batch_stops_claiming_within_one_block_per_lane() {
        // The activity log is the ground truth: every executed job costs
        // exactly 2 cycles (one write, one read), so the bank's total
        // cycle count states precisely how many jobs ran after the token
        // fired. Jobs sleep ~1 ms so the cancel store is visible to every
        // lane long before its next claim check.
        const JOBS: usize = 64;
        const CANCEL_AT: u64 = 10;
        let lanes = worker_count(JOBS).min(4);
        let mut bank = MacroBank::new(4, MacroConfig::paper_macro());
        let jobs: Vec<u64> = (0..JOBS as u64).collect();
        let token = bpimc_stats::parallel::CancelToken::new();
        let out = bank.try_run_batch_cancellable(
            &jobs,
            |mac, &j| {
                if j == CANCEL_AT {
                    token.cancel();
                }
                mac.write_words(0, Precision::P8, &[j % 251]).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(1));
                mac.read_words(0, Precision::P8, 1).unwrap()[0]
            },
            &token,
        );
        assert!(out.cancelled, "the fired token must be reported");
        let executed = out.results.iter().filter(|r| r.is_some()).count();
        let abandoned = out.results.iter().filter(|r| r.is_none()).count();
        // Block size is 1 at this batch shape, so after the cancel each
        // lane may finish only the single job it already claimed.
        let max_jobs = CANCEL_AT as usize + 1 + lanes;
        assert!(
            executed <= max_jobs,
            "{executed} jobs ran after a cancel at job {CANCEL_AT} ({lanes} lanes)"
        );
        assert_eq!(executed + abandoned, JOBS);
        assert!(abandoned > 0, "the cancel must shed most of the batch");
        // The activity log agrees: exactly 2 cycles per executed job.
        assert_eq!(bank.total_cycles(), 2 * executed as u64);
        // The bank keeps serving after a cancelled batch.
        let again = bank.run_batch(&jobs, |mac, &j| {
            mac.write_words(0, Precision::P8, &[j + 1]).unwrap();
            mac.read_words(0, Precision::P8, 1).unwrap()[0]
        });
        assert_eq!(again, jobs.iter().map(|j| j + 1).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_batch_contains_a_panicking_job() {
        let mut bank = MacroBank::new(3, MacroConfig::paper_macro());
        let jobs: Vec<u64> = (0..30).collect();
        let out = bank.try_run_batch(&jobs, |mac, &j| {
            if j == 13 {
                panic!("poisoned job");
            }
            mac.write_words(0, Precision::P8, &[j % 251]).unwrap();
            mac.read_words(0, Precision::P8, 1).unwrap()[0]
        });
        for (j, r) in out.iter().enumerate() {
            if j == 13 {
                assert!(r.as_ref().unwrap_err().message.contains("poisoned"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), j as u64 % 251);
            }
        }
        // The bank keeps serving after the contained failure.
        let again = bank.run_batch(&jobs, |mac, &j| {
            mac.write_words(0, Precision::P8, &[j + 1]).unwrap();
            mac.read_words(0, Precision::P8, 1).unwrap()[0]
        });
        assert_eq!(again, jobs.iter().map(|j| j + 1).collect::<Vec<_>>());
    }
}
