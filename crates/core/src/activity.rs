//! Per-cycle activity logging.
//!
//! Every cycle the executor runs is recorded with enough detail for the
//! energy model to reproduce the paper's Table II: which phases ran, how
//! many columns computed, how many were written back and whether the BL
//! separator shielded the write, and how many multiplier FF bits clocked.

use crate::isa::OpKind;
use bpimc_array::CycleKind;
use bpimc_periph::Precision;

/// What happened in one macro cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleActivity {
    /// The access type of the cycle.
    pub kind: CycleKind,
    /// Columns participating in the BL compute / sense phase.
    pub compute_cols: usize,
    /// Columns whose FA/logic slice evaluated.
    pub logic_cols: usize,
    /// Columns driven by the write-back phase.
    pub wb_cols: usize,
    /// Whether the write-back targeted a dummy row.
    pub wb_to_dummy: bool,
    /// Whether the BL separator shielded the write-back.
    pub wb_shielded: bool,
    /// Whether the write-back inverts the just-read data (a NOT), forcing
    /// every bit-line to swing against its read polarity — the expensive
    /// write case the energy model charges separately.
    pub wb_inverting: bool,
    /// Multiplier FF bits clocked this cycle.
    pub ff_bits: usize,
}

impl CycleActivity {
    /// A cycle with no array activity at all (placeholder/testing).
    pub fn idle() -> Self {
        Self {
            kind: CycleKind::ReadOnly,
            compute_cols: 0,
            logic_cols: 0,
            wb_cols: 0,
            wb_to_dummy: false,
            wb_shielded: false,
            wb_inverting: false,
            ff_bits: 0,
        }
    }
}

/// One executed operation: its kind, precision and cycle span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Operation kind.
    pub kind: OpKind,
    /// The precision it ran at (logic/copy ops report the full row and use
    /// [`Precision::P8`] only as a placeholder when irrelevant).
    pub precision: Precision,
    /// Index of its first cycle in the log.
    pub first_cycle: usize,
    /// Number of cycles it took.
    pub cycle_count: usize,
}

/// The complete activity history of a macro.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityLog {
    cycles: Vec<CycleActivity>,
    ops: Vec<OpRecord>,
}

impl ActivityLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cycle.
    pub fn push_cycle(&mut self, c: CycleActivity) {
        self.cycles.push(c);
    }

    /// Records an operation spanning the last `cycle_count` cycles.
    pub fn push_op(&mut self, kind: OpKind, precision: Precision, cycle_count: usize) {
        let first_cycle = self.cycles.len().saturating_sub(cycle_count);
        self.ops.push(OpRecord {
            kind,
            precision,
            first_cycle,
            cycle_count,
        });
    }

    /// All recorded cycles.
    pub fn cycles(&self) -> &[CycleActivity] {
        &self.cycles
    }

    /// All recorded operations.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Total cycle count.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// The cycles belonging to an op record.
    pub fn cycles_of(&self, op: &OpRecord) -> &[CycleActivity] {
        &self.cycles[op.first_cycle..op.first_cycle + op.cycle_count]
    }

    /// The last recorded op, if any.
    pub fn last_op(&self) -> Option<&OpRecord> {
        self.ops.last()
    }

    /// Clears all history (used between measurements).
    pub fn clear(&mut self) {
        self.cycles.clear();
        self.ops.clear();
    }
}

/// Per-session accounting for a multi-client workload.
///
/// Where [`ActivityLog`] records every cycle of one macro, a
/// `SessionActivity` aggregates the *billable* totals of one client
/// session served by a shared [`MacroBank`](crate::MacroBank): how many
/// requests it issued, how many failed, and the hardware cycles and energy
/// its successful requests consumed — regardless of which macro each
/// request happened to land on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionActivity {
    /// Requests the session has completed (successes and failures).
    pub requests: u64,
    /// Requests that failed (bad input, execution error, contained panic).
    pub errors: u64,
    /// Hardware cycles consumed by the session's successful requests.
    pub cycles: u64,
    /// Energy consumed by the session's successful requests, femtojoules
    /// (Table II-calibrated, 0.9 V).
    pub energy_fj: f64,
}

impl SessionActivity {
    /// A fresh, empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successful request and the hardware work it consumed.
    pub fn record_ok(&mut self, cycles: u64, energy_fj: f64) {
        self.requests += 1;
        self.cycles += cycles;
        self.energy_fj += energy_fj;
    }

    /// Records one failed request (no hardware work billed).
    pub fn record_error(&mut self) {
        self.requests += 1;
        self.errors += 1;
    }

    /// Folds another account into this one (e.g. totals across sessions).
    pub fn merge(&mut self, other: &SessionActivity) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.cycles += other.cycles;
        self.energy_fj += other.energy_fj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_activity_accumulates() {
        let mut s = SessionActivity::new();
        s.record_ok(10, 1.5);
        s.record_ok(4, 0.5);
        s.record_error();
        assert_eq!(s.requests, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cycles, 14);
        assert!((s.energy_fj - 2.0).abs() < 1e-12);
        let mut total = SessionActivity::new();
        total.merge(&s);
        total.merge(&s);
        assert_eq!(total.requests, 6);
        assert_eq!(total.cycles, 28);
    }

    #[test]
    fn op_spans_map_to_cycles() {
        let mut log = ActivityLog::new();
        log.push_cycle(CycleActivity::idle());
        log.push_cycle(CycleActivity {
            compute_cols: 64,
            ..CycleActivity::idle()
        });
        log.push_op(OpKind::Sub, Precision::P8, 2);
        let op = *log.last_op().unwrap();
        assert_eq!(op.first_cycle, 0);
        assert_eq!(log.cycles_of(&op).len(), 2);
        assert_eq!(log.cycles_of(&op)[1].compute_cols, 64);
        assert_eq!(log.total_cycles(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut log = ActivityLog::new();
        log.push_cycle(CycleActivity::idle());
        log.push_op(OpKind::Not, Precision::P8, 1);
        log.clear();
        assert_eq!(log.total_cycles(), 0);
        assert!(log.ops().is_empty());
    }
}
