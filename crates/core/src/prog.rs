//! The typed program abstraction: one instruction stream from library
//! callers to the wire.
//!
//! The paper's macro is driven by an instruction decoder that sequences the
//! Table I operation set over one array. This module is that decoder's
//! software twin: a [`Program`] is a validated list of typed [`Instr`]s
//! over *virtual row registers* ([`Reg`]), built either with the
//! [`ProgramBuilder`] (library callers) or from the wire
//! (`exec_program` requests, see [`crate::wire`]).
//!
//! A `Program` offers three things a raw sequence of [`ImcMacro`] method
//! calls cannot:
//!
//! * **Upfront validation** ([`Program::validate`]) — register bounds
//!   against the macro geometry, def-before-use, operand aliasing that the
//!   bit-line compute path cannot express, and precision/lane-width
//!   compatibility — returning a structured [`ProgError`] *before* any
//!   array state changes.
//! * **A static cost model** — [`Program::cycles`] and
//!   [`Program::predicted_activity`] predict the exact cycle count and
//!   per-cycle activity (and therefore energy) of a run before it happens;
//!   [`Program::run`] asserts the prediction against the activity log
//!   afterwards.
//! * **A lowering pass** ([`Program::lowered`]) — adjacent `add` + `shl`
//!   pairs fuse into the hardware's single-cycle `add_shift` path when the
//!   intermediate sum is dead afterwards.
//!
//! Execution runs on one macro ([`Program::run`]) or fans a batch of
//! programs across a bank ([`MacroBank::run_programs`]).
//!
//! # Examples
//!
//! ```
//! use bpimc_core::prog::ProgramBuilder;
//! use bpimc_core::{MacroConfig, ImcMacro, Precision};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.write(Precision::P8, vec![10, 20, 30]);
//! let y = b.write(Precision::P8, vec![1, 2, 3]);
//! let sum = b.add(x, y, Precision::P8);
//! let doubled = b.shl(sum, Precision::P8); // fuses with the add
//! b.read(doubled, Precision::P8, 3);
//! let prog = b.finish();
//!
//! assert_eq!(prog.cycles(), 4); // write, write, fused add-shift, read
//! let mut mac = ImcMacro::new(MacroConfig::paper_macro());
//! let run = prog.run(&mut mac).unwrap();
//! assert_eq!(run.outputs[0], vec![22, 44, 66]);
//! assert_eq!(mac.activity().total_cycles(), prog.cycles());
//! ```

use crate::activity::CycleActivity;
use crate::config::MacroConfig;
use crate::error::Error;
use crate::isa::OpKind;
use crate::macrobank::MacroBank;
use crate::macroblock::ImcMacro;
use bpimc_array::CycleKind;
use bpimc_periph::{LogicOp, Precision};
use std::fmt;
use std::ops::Range;

pub mod analysis;

/// A virtual row register. The executor maps register `i` to main-array
/// row `i`; a program may use at most as many registers as the macro has
/// rows (dummy rows stay internal to the ops that use them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl Reg {
    /// The physical main-array row this register maps to.
    pub fn row(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One typed instruction over virtual row registers — the program-level
/// vocabulary matching the macro's Table I operation set plus the word
/// packing/unpacking moves at the array boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Packs `values` into dense `precision` lanes and writes them to
    /// `dst`. One cycle.
    Write {
        /// Destination register.
        dst: Reg,
        /// Lane width.
        precision: Precision,
        /// One value per lane, LSB lane first.
        values: Vec<u64>,
    },
    /// Packs multiplication operands into the low half of each `2P`-wide
    /// product lane of `dst` (the Fig. 6 layout). One cycle.
    WriteMult {
        /// Destination register.
        dst: Reg,
        /// Operand width (`P`; the lane is `2P` wide).
        precision: Precision,
        /// One operand per product lane.
        values: Vec<u64>,
    },
    /// Reads the first `n` dense `precision` lanes of `src` out of the
    /// macro. One cycle; appends one vector to the run's outputs.
    Read {
        /// Source register.
        src: Reg,
        /// Lane width.
        precision: Precision,
        /// Lanes to read.
        n: usize,
    },
    /// Reads the first `n` products (each `2P` bits) of `src`. One cycle;
    /// appends one vector to the run's outputs.
    ReadProducts {
        /// Source register.
        src: Reg,
        /// Operand width of the multiplication that produced the row.
        precision: Precision,
        /// Product lanes to read.
        n: usize,
    },
    /// Bit-wise logic between `a` and `b` into `dst`. One cycle.
    Logic {
        /// Which logic function.
        op: LogicOp,
        /// First operand register (must differ from `b`).
        a: Reg,
        /// Second operand register.
        b: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Bit-wise NOT of `src` into `dst`. One cycle.
    Not {
        /// Source register.
        src: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Copies `src` to `dst`. One cycle.
    Copy {
        /// Source register.
        src: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Per-lane logical left shift of `src` by one into `dst`. One cycle.
    Shl {
        /// Source register.
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Lane width the carry chain is segmented to.
        precision: Precision,
    },
    /// Per-lane addition `dst = a + b` (wrapping). One cycle.
    Add {
        /// First operand register (must differ from `b`).
        a: Reg,
        /// Second operand register.
        b: Reg,
        /// Destination register.
        dst: Reg,
        /// Lane width.
        precision: Precision,
    },
    /// Per-lane add-and-shift `dst = (a + b) << 1`. One cycle.
    AddShift {
        /// First operand register (must differ from `b`).
        a: Reg,
        /// Second operand register.
        b: Reg,
        /// Destination register.
        dst: Reg,
        /// Lane width.
        precision: Precision,
    },
    /// Per-lane subtraction `dst = a - b` (two's complement). Two cycles.
    Sub {
        /// Minuend register.
        a: Reg,
        /// Subtrahend register.
        b: Reg,
        /// Destination register.
        dst: Reg,
        /// Lane width.
        precision: Precision,
    },
    /// Per-lane multiplication of product-lane operands; `P + 2` cycles.
    Mult {
        /// Multiplicand register (written with [`Instr::WriteMult`]).
        a: Reg,
        /// Multiplier register.
        b: Reg,
        /// Destination register (receives `2P`-wide products).
        dst: Reg,
        /// Operand width.
        precision: Precision,
    },
    /// In-memory reduction: sums `srcs` into `dst` with a chain of
    /// bit-parallel ADDs through the dummy rows. `n` cycles for `n > 1`
    /// sources, 2 for a single source (copy in, copy out).
    ReduceAdd {
        /// Source registers (must not be empty).
        srcs: Vec<Reg>,
        /// Destination register.
        dst: Reg,
        /// Lane width.
        precision: Precision,
    },
}

impl Instr {
    /// The wire name of this instruction (see [`crate::wire`]); logic
    /// instructions are named by their function (`and`/`or`/…), exactly
    /// as the wire parser expects them back.
    pub fn name(&self) -> &'static str {
        match self {
            Instr::Write { .. } => "write",
            Instr::WriteMult { .. } => "write_mult",
            Instr::Read { .. } => "read",
            Instr::ReadProducts { .. } => "read_products",
            Instr::Logic {
                op: LogicOp::And, ..
            } => "and",
            Instr::Logic {
                op: LogicOp::Or, ..
            } => "or",
            Instr::Logic {
                op: LogicOp::Xor, ..
            } => "xor",
            Instr::Logic {
                op: LogicOp::Nand, ..
            } => "nand",
            Instr::Logic {
                op: LogicOp::Nor, ..
            } => "nor",
            Instr::Logic {
                op: LogicOp::Xnor, ..
            } => "xnor",
            Instr::Not { .. } => "not",
            Instr::Copy { .. } => "copy",
            Instr::Shl { .. } => "shl",
            Instr::Add { .. } => "add",
            Instr::AddShift { .. } => "add_shift",
            Instr::Sub { .. } => "sub",
            Instr::Mult { .. } => "mult",
            Instr::ReduceAdd { .. } => "reduce_add",
        }
    }

    /// True for instructions that append a vector to the run's outputs.
    pub fn is_read(&self) -> bool {
        matches!(self, Instr::Read { .. } | Instr::ReadProducts { .. })
    }

    /// The registers this instruction reads.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Write { .. } | Instr::WriteMult { .. } => Vec::new(),
            Instr::Read { src, .. }
            | Instr::ReadProducts { src, .. }
            | Instr::Not { src, .. }
            | Instr::Copy { src, .. }
            | Instr::Shl { src, .. } => vec![*src],
            Instr::Logic { a, b, .. }
            | Instr::Add { a, b, .. }
            | Instr::AddShift { a, b, .. }
            | Instr::Sub { a, b, .. }
            | Instr::Mult { a, b, .. } => vec![*a, *b],
            Instr::ReduceAdd { srcs, .. } => srcs.clone(),
        }
    }

    /// The register this instruction writes, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Read { .. } | Instr::ReadProducts { .. } => None,
            Instr::Write { dst, .. }
            | Instr::WriteMult { dst, .. }
            | Instr::Logic { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Shl { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::AddShift { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Mult { dst, .. }
            | Instr::ReduceAdd { dst, .. } => Some(*dst),
        }
    }

    /// The cycles this instruction takes on the macro (the paper's Table I
    /// plus the data-movement moves).
    pub fn cycles(&self) -> u64 {
        match self {
            Instr::Write { .. }
            | Instr::WriteMult { .. }
            | Instr::Read { .. }
            | Instr::ReadProducts { .. } => 1,
            Instr::Logic { .. } | Instr::Not { .. } | Instr::Copy { .. } | Instr::Shl { .. } => 1,
            Instr::Add { .. } | Instr::AddShift { .. } => 1,
            Instr::Sub { .. } => 2,
            Instr::Mult { precision, .. } => OpKind::Mult.cycles(*precision),
            Instr::ReduceAdd { srcs, .. } => {
                if srcs.len() > 1 {
                    srcs.len() as u64
                } else {
                    2
                }
            }
        }
    }
}

/// A structured program-validation or execution failure. Every variant
/// carries the index of the offending instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgError {
    /// The program names more registers than the macro has rows.
    TooManyRegs {
        /// Registers the program uses (highest index + 1).
        needed: usize,
        /// Main-array rows available.
        rows: usize,
    },
    /// A register is read before any instruction wrote it.
    UseBeforeDef {
        /// The undefined register.
        reg: Reg,
        /// Index of the reading instruction.
        instr: usize,
    },
    /// A two-operand bit-line compute op names the same register twice
    /// (the dual-WL read cannot activate one row as both operands).
    OperandsAlias {
        /// The aliased register.
        reg: Reg,
        /// Index of the offending instruction.
        instr: usize,
    },
    /// The precision does not fit the row width (multiplication and
    /// product reads need `2P`-bit lanes).
    PrecisionTooWide {
        /// Lane width required in bits.
        needed_bits: usize,
        /// Columns available.
        cols: usize,
        /// Index of the offending instruction.
        instr: usize,
    },
    /// More values/lanes than the row holds at this precision.
    TooManyWords {
        /// Lanes requested.
        requested: usize,
        /// Lanes available.
        available: usize,
        /// Index of the offending instruction.
        instr: usize,
    },
    /// A value does not fit the instruction's precision.
    WordTooWide {
        /// The offending value.
        value: u64,
        /// The precision in bits.
        bits: usize,
        /// Index of the offending instruction.
        instr: usize,
    },
    /// A `reduce_add` with no sources.
    EmptyReduce {
        /// Index of the offending instruction.
        instr: usize,
    },
    /// A [`CompiledProgram::run_with_inputs`] call bound the wrong number
    /// of input vectors: one entry per `write`/`write_mult` instruction is
    /// required.
    InputCount {
        /// Write instructions in the program.
        expected: usize,
        /// Input entries supplied.
        got: usize,
    },
    /// A bound input vector's length differs from the compiled write's
    /// value count (the contract that keeps the static cost model and the
    /// baked `read` lane counts valid).
    InputLen {
        /// Index of the write instruction (submitted order).
        instr: usize,
        /// Values the write was compiled with.
        expected: usize,
        /// Values the binding supplied.
        got: usize,
    },
    /// The macro rejected an instruction at execution time — unreachable
    /// for a validated program; kept for defensive containment.
    Exec {
        /// Index of the failing instruction.
        instr: usize,
        /// The macro's error.
        source: Error,
    },
    /// A program in a [`MacroBank::run_programs`] batch panicked its job;
    /// sibling programs were unaffected.
    Panicked(String),
    /// A [`CompiledProgram`] was run on a macro whose configuration differs
    /// from the one it was compiled (validated) for.
    ConfigMismatch,
    /// A cooperative cancellation token fired before the run completed
    /// ([`MacroBank::run_partitioned_cancellable`]); some components were
    /// abandoned unexecuted.
    Cancelled,
}

impl fmt::Display for ProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgError::TooManyRegs { needed, rows } => {
                write!(
                    f,
                    "program uses {needed} registers but the macro has {rows} rows"
                )
            }
            ProgError::UseBeforeDef { reg, instr } => {
                write!(f, "instr {instr}: register {reg} read before any write")
            }
            ProgError::OperandsAlias { reg, instr } => {
                write!(
                    f,
                    "instr {instr}: both operands are {reg} (dual-WL reads need distinct rows)"
                )
            }
            ProgError::PrecisionTooWide {
                needed_bits,
                cols,
                instr,
            } => {
                write!(
                    f,
                    "instr {instr}: needs {needed_bits}-bit lanes but the row has {cols} columns"
                )
            }
            ProgError::TooManyWords {
                requested,
                available,
                instr,
            } => {
                write!(
                    f,
                    "instr {instr}: {requested} lanes requested but only {available} available"
                )
            }
            ProgError::WordTooWide { value, bits, instr } => {
                write!(f, "instr {instr}: value {value} does not fit {bits} bits")
            }
            ProgError::EmptyReduce { instr } => {
                write!(f, "instr {instr}: reduce_add needs at least one source")
            }
            ProgError::InputCount { expected, got } => {
                write!(
                    f,
                    "program has {expected} write instruction(s) but {got} input vector(s) were bound"
                )
            }
            ProgError::InputLen {
                instr,
                expected,
                got,
            } => {
                write!(
                    f,
                    "instr {instr}: bound input has {got} values but the stored write has {expected}"
                )
            }
            ProgError::Exec { instr, source } => {
                write!(f, "instr {instr} failed on the macro: {source}")
            }
            ProgError::Panicked(msg) => write!(f, "program job panicked: {msg}"),
            ProgError::ConfigMismatch => {
                write!(
                    f,
                    "compiled program run on a macro with a different configuration"
                )
            }
            ProgError::Cancelled => {
                write!(f, "execution cancelled before the program completed")
            }
        }
    }
}

impl std::error::Error for ProgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgError::Exec { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ProgError {
    /// The stable diagnostic code for this error kind (`E001`–`E013`, one
    /// per variant), carried by `invalid_program` wire errors and
    /// [`analysis::Diagnostic`]s.
    pub fn code(&self) -> &'static str {
        match self {
            ProgError::TooManyRegs { .. } => "E001",
            ProgError::UseBeforeDef { .. } => "E002",
            ProgError::OperandsAlias { .. } => "E003",
            ProgError::PrecisionTooWide { .. } => "E004",
            ProgError::TooManyWords { .. } => "E005",
            ProgError::WordTooWide { .. } => "E006",
            ProgError::EmptyReduce { .. } => "E007",
            ProgError::InputCount { .. } => "E008",
            ProgError::InputLen { .. } => "E009",
            ProgError::Exec { .. } => "E010",
            ProgError::Panicked(_) => "E011",
            ProgError::ConfigMismatch => "E012",
            ProgError::Cancelled => "E013",
        }
    }

    /// The index of the offending instruction, for variants that name one.
    pub fn instr(&self) -> Option<usize> {
        match self {
            ProgError::UseBeforeDef { instr, .. }
            | ProgError::OperandsAlias { instr, .. }
            | ProgError::PrecisionTooWide { instr, .. }
            | ProgError::TooManyWords { instr, .. }
            | ProgError::WordTooWide { instr, .. }
            | ProgError::EmptyReduce { instr }
            | ProgError::InputLen { instr, .. }
            | ProgError::Exec { instr, .. } => Some(*instr),
            ProgError::TooManyRegs { .. }
            | ProgError::InputCount { .. }
            | ProgError::Panicked(_)
            | ProgError::ConfigMismatch
            | ProgError::Cancelled => None,
        }
    }
}

/// The result of executing a [`Program`] on a macro.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRun {
    /// One vector per `read`/`read_products` instruction, in program order.
    pub outputs: Vec<Vec<u64>>,
    /// Hardware cycles billed to each *submitted* instruction. A `shl`
    /// fused into the preceding `add` bills 0 (its cycle is in the fused
    /// `add_shift`, billed to the `add`).
    pub instr_cycles: Vec<u64>,
    /// Per-instruction spans into the executing macro's activity log
    /// (absolute cycle indices), for exact per-instruction energy
    /// accounting. A fused-away instruction has an empty span.
    pub instr_spans: Vec<Range<usize>>,
}

impl ProgramRun {
    /// Total hardware cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.instr_cycles.iter().sum()
    }
}

/// A validated-on-demand instruction stream over virtual row registers.
///
/// Build one with [`ProgramBuilder`], or from explicit instructions (e.g.
/// parsed off the wire) with [`Program::new`]. See the module docs for the
/// full contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    regs: usize,
}

impl Program {
    /// Wraps an explicit instruction list. The register file size is the
    /// highest register index used plus one.
    pub fn new(instrs: Vec<Instr>) -> Self {
        let regs = instrs
            .iter()
            .flat_map(|i| i.sources().into_iter().chain(i.dst()).map(|r| r.row() + 1))
            .max()
            .unwrap_or(0);
        Self { instrs, regs }
    }

    /// The submitted instruction stream (pre-lowering).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of virtual registers the program uses.
    pub fn reg_count(&self) -> usize {
        self.regs
    }

    /// Number of `read`/`read_products` instructions (output vectors a run
    /// will produce).
    pub fn read_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_read()).count()
    }

    /// Validates the whole program against a macro configuration without
    /// touching any macro: register bounds, def-before-use, operand
    /// aliasing, precision/lane-width compatibility and value ranges.
    ///
    /// # Errors
    ///
    /// Returns the first problem found, with the offending instruction's
    /// index (see [`ProgError`]).
    pub fn validate(&self, config: &MacroConfig) -> Result<(), ProgError> {
        let rows = config.geometry.rows;
        let cols = config.geometry.cols;
        if self.regs > rows {
            return Err(ProgError::TooManyRegs {
                needed: self.regs,
                rows,
            });
        }
        let mut defined = vec![false; self.regs];
        for (idx, instr) in self.instrs.iter().enumerate() {
            for src in instr.sources() {
                if !defined[src.row()] {
                    return Err(ProgError::UseBeforeDef {
                        reg: src,
                        instr: idx,
                    });
                }
            }
            match instr {
                Instr::Write {
                    precision, values, ..
                } => {
                    check_values(values, *precision, precision.lanes(cols), idx)?;
                }
                Instr::WriteMult {
                    precision, values, ..
                } => {
                    check_product_width(*precision, cols, idx)?;
                    check_values(values, *precision, precision.product_lanes(cols), idx)?;
                }
                Instr::Read { precision, n, .. } => {
                    let available = precision.lanes(cols);
                    if *n > available {
                        return Err(ProgError::TooManyWords {
                            requested: *n,
                            available,
                            instr: idx,
                        });
                    }
                }
                Instr::ReadProducts { precision, n, .. } => {
                    check_product_width(*precision, cols, idx)?;
                    let available = precision.product_lanes(cols);
                    if *n > available {
                        return Err(ProgError::TooManyWords {
                            requested: *n,
                            available,
                            instr: idx,
                        });
                    }
                }
                Instr::Logic { a, b, .. }
                | Instr::Add { a, b, .. }
                | Instr::AddShift { a, b, .. } => {
                    if a == b {
                        return Err(ProgError::OperandsAlias {
                            reg: *a,
                            instr: idx,
                        });
                    }
                }
                Instr::Mult { precision, .. } => {
                    check_product_width(*precision, cols, idx)?;
                }
                Instr::ReduceAdd { srcs, .. } => {
                    if srcs.is_empty() {
                        return Err(ProgError::EmptyReduce { instr: idx });
                    }
                }
                Instr::Not { .. } | Instr::Copy { .. } | Instr::Shl { .. } | Instr::Sub { .. } => {}
            }
            if let Some(dst) = instr.dst() {
                defined[dst.row()] = true;
            }
        }
        Ok(())
    }

    /// The lowered instruction stream the executor actually runs: an
    /// `add r_t <- a, b` immediately followed by `shl d <- r_t` (same
    /// precision) fuses into the hardware's single-cycle
    /// `add_shift d <- a, b` when `r_t` is dead afterwards — the paper's
    /// ADD-shift path, saving one cycle per pair.
    pub fn lowered(&self) -> Vec<Instr> {
        self.lower_indexed().into_iter().map(|(i, _)| i).collect()
    }

    /// Lowered instructions, each tagged with the index of the submitted
    /// instruction its cycles are billed to. One pass over the stream: the
    /// fusion-legality liveness question ("is the intermediate sum ever
    /// read later?") is answered from a precomputed last-read index per
    /// register, so lowering stays linear in program length (untrusted
    /// `exec_program` requests run through here on the shared dispatcher).
    fn lower_indexed(&self) -> Vec<(Instr, usize)> {
        let last_read = self.last_read_table();
        let mut out = Vec::with_capacity(self.instrs.len());
        let mut idx = 0;
        while idx < self.instrs.len() {
            if let Some(fused) = self.try_fuse_at(idx, &last_read) {
                out.push((fused, idx));
                idx += 2;
            } else {
                out.push((self.instrs[idx].clone(), idx));
                idx += 1;
            }
        }
        out
    }

    /// `last_read[r]` = highest instruction index that reads register `r`.
    fn last_read_table(&self) -> Vec<usize> {
        let mut last_read = vec![0usize; self.regs];
        for (idx, instr) in self.instrs.iter().enumerate() {
            for src in instr.sources() {
                if let Some(slot) = last_read.get_mut(src.row()) {
                    *slot = idx;
                }
            }
        }
        last_read
    }

    /// The fused `add_shift` for the pair starting at `idx`, when legal.
    fn try_fuse_at(&self, idx: usize, last_read: &[usize]) -> Option<Instr> {
        let Instr::Add {
            a,
            b,
            dst: t,
            precision,
        } = self.instrs.get(idx)?
        else {
            return None;
        };
        let Instr::Shl {
            src,
            dst: d,
            precision: shl_p,
        } = self.instrs.get(idx + 1)?
        else {
            return None;
        };
        if src != t || shl_p != precision {
            return None;
        }
        // The fused op skips materialising the intermediate sum in `t`, so
        // `t` must be dead afterwards: no later instruction may read it
        // (unless `t` and `d` coincide, in which case `t` holds the fused
        // result exactly as the two-instruction form would leave it). The
        // `shl` at `idx + 1` reads `t`, so "never read later" is exactly
        // `last_read[t] <= idx + 1`.
        if t != d && last_read.get(t.row()).is_some_and(|&lr| lr > idx + 1) {
            return None;
        }
        Some(Instr::AddShift {
            a: *a,
            b: *b,
            dst: *d,
            precision: *precision,
        })
    }

    /// Predicted total hardware cycles of a run — the static cost model
    /// over the *lowered* stream (Table I per-op counts; a fused
    /// `add`+`shl` pair costs one cycle).
    pub fn cycles(&self) -> u64 {
        self.lowered().iter().map(Instr::cycles).sum()
    }

    /// Predicted cycles billed to each submitted instruction (aligned with
    /// [`Program::instrs`]; a `shl` fused into its `add` predicts 0).
    pub fn instr_cycles(&self) -> Vec<u64> {
        let mut per = vec![0u64; self.instrs.len()];
        for (instr, idx) in self.lower_indexed() {
            per[idx] = instr.cycles();
        }
        per
    }

    /// Predicts the exact per-cycle activity of a run — the same
    /// [`CycleActivity`] records the macro will log, cycle for cycle — so
    /// energy is computable *before* execution
    /// (`EnergyParams::cycles_energy_fj` in `bpimc-metrics` turns the
    /// slice into femtojoules).
    ///
    /// # Errors
    ///
    /// Validates first and forwards any [`ProgError`].
    pub fn predicted_activity(
        &self,
        config: &MacroConfig,
    ) -> Result<Vec<CycleActivity>, ProgError> {
        self.validate(config)?;
        let cols = config.geometry.cols;
        let sep = config.separator_enabled;
        let mut cycles = Vec::new();
        for instr in self.lowered() {
            predict_instr_activity(&instr, cols, sep, &mut cycles);
        }
        Ok(cycles)
    }

    /// Validates, then executes the lowered stream on `mac`, returning the
    /// read outputs and exact per-instruction accounting spans into the
    /// macro's activity log.
    ///
    /// The static cost model is asserted against the activity log: a
    /// mismatch between [`Program::cycles`] and the cycles actually logged
    /// is a bug in this module and panics.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgError`] from validation; the macro itself is only
    /// touched after validation succeeds.
    ///
    /// # Panics
    ///
    /// Panics if the executed cycle count diverges from the static cost
    /// model (a `prog` bug, never a data-dependent condition).
    pub fn run(&self, mac: &mut ImcMacro) -> Result<ProgramRun, ProgError> {
        self.validate(mac.config())?;
        // Fuse on the fly: the executor walks the submitted stream once,
        // consulting the liveness table at each potential `add`+`shl` pair,
        // so no lowered copy of the instructions (or of their payload
        // vectors) is materialised per run.
        let last_read = self.last_read_table();
        let mut state = ExecState::new(mac, self.instrs.len(), self.read_count());
        let mut predicted = 0u64;
        let mut idx = 0;
        while idx < self.instrs.len() {
            if let Some(fused) = self.try_fuse_at(idx, &last_read) {
                predicted += fused.cycles();
                state.step(mac, &fused, idx)?;
                idx += 2;
            } else {
                let instr = &self.instrs[idx];
                predicted += instr.cycles();
                state.step(mac, instr, idx)?;
                idx += 1;
            }
        }
        Ok(state.finish(mac, predicted))
    }

    /// Validates and lowers once for `config`, returning a
    /// [`CompiledProgram`] whose runs skip both — the fast path for
    /// validate-once-run-many callers (stored programs, benchmark loops,
    /// replayed pipelines).
    ///
    /// # Errors
    ///
    /// Forwards any validation [`ProgError`].
    pub fn compile(&self, config: &MacroConfig) -> Result<CompiledProgram, ProgError> {
        self.validate(config)?;
        let ops = self.lower_indexed();
        let predicted = ops.iter().map(|(i, _)| i.cycles()).sum();
        let writes = ops
            .iter()
            .filter(|(i, _)| matches!(i, Instr::Write { .. } | Instr::WriteMult { .. }))
            .count();
        Ok(CompiledProgram {
            ops,
            submitted: self.instrs.len(),
            reads: self.read_count(),
            writes,
            predicted,
            config: *config,
        })
    }
}

/// A [`Program`] pre-resolved for one macro configuration: validated once,
/// lowered once into a flat op array, ready to run any number of times
/// with zero per-run validation or lowering cost.
///
/// The compiled-for [`MacroConfig`] is the cache key: running against a
/// macro with any other configuration returns
/// [`ProgError::ConfigMismatch`] instead of silently skipping the checks
/// that made the compilation sound.
///
/// # Examples
///
/// ```
/// use bpimc_core::prog::ProgramBuilder;
/// use bpimc_core::{ImcMacro, MacroConfig, Precision};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.write(Precision::P8, vec![3, 4]);
/// let y = b.write(Precision::P8, vec![10, 20]);
/// let s = b.add(x, y, Precision::P8);
/// b.read(s, Precision::P8, 2);
/// let prog = b.finish();
///
/// let cfg = MacroConfig::paper_macro();
/// let compiled = prog.compile(&cfg).unwrap();
/// let mut mac = ImcMacro::new(cfg);
/// for _ in 0..3 {
///     let run = compiled.run(&mut mac).unwrap(); // no re-validation
///     assert_eq!(run.outputs[0], vec![13, 24]);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Lowered ops, each tagged with the submitted-instruction index its
    /// cycles bill to.
    ops: Vec<(Instr, usize)>,
    /// Submitted instruction count (sizes the per-instruction accounting).
    submitted: usize,
    /// Output vectors a run produces.
    reads: usize,
    /// `write`/`write_mult` instructions (the bindable input slots of
    /// [`CompiledProgram::run_with_inputs`]).
    writes: usize,
    /// Static total-cycle prediction over the lowered stream.
    predicted: u64,
    /// The configuration the program was validated against.
    config: MacroConfig,
}

impl CompiledProgram {
    /// The configuration this program was compiled for.
    pub fn config(&self) -> &MacroConfig {
        &self.config
    }

    /// Predicted total hardware cycles of a run (the static cost model).
    pub fn cycles(&self) -> u64 {
        self.predicted
    }

    /// Number of submitted instructions (per-instruction accounting slots).
    pub fn submitted_len(&self) -> usize {
        self.submitted
    }

    /// Number of `write`/`write_mult` instructions — the input slots a
    /// [`CompiledProgram::run_with_inputs`] call binds, in submitted order.
    pub fn write_count(&self) -> usize {
        self.writes
    }

    /// Executes the pre-resolved op array on `mac` — no validation, no
    /// lowering, just the instruction stream and its accounting. Same
    /// results and same cost-model assertion as [`Program::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgError::ConfigMismatch`] if `mac` is not configured as
    /// compiled; forwards macro errors as [`ProgError::Exec`] (unreachable
    /// for the validated stream; kept for defensive containment).
    ///
    /// # Panics
    ///
    /// Panics if the executed cycle count diverges from the static cost
    /// model (a `prog` bug, never a data-dependent condition).
    pub fn run(&self, mac: &mut ImcMacro) -> Result<ProgramRun, ProgError> {
        if *mac.config() != self.config {
            return Err(ProgError::ConfigMismatch);
        }
        let mut state = ExecState::new(mac, self.submitted, self.reads);
        for (instr, idx) in &self.ops {
            state.step(mac, instr, *idx)?;
        }
        Ok(state.finish(mac, self.predicted))
    }

    /// Executes the pre-resolved op array with fresh *input bindings*: one
    /// entry per `write`/`write_mult` instruction in submitted order, where
    /// `Some(values)` replaces that write's values for this run and `None`
    /// keeps the compiled ones. This is the stored-program hot path — the
    /// same validated shape runs many times over new data with zero
    /// re-validation, re-lowering or instruction cloning.
    ///
    /// A bound vector must have exactly as many values as the write was
    /// compiled with (so the baked `read` lane counts and the static cost
    /// model stay correct) and every value must fit the write's precision.
    /// The cycle count and per-cycle activity of a bound run are identical
    /// to the compiled run's — writes cost one cycle regardless of data.
    ///
    /// # Errors
    ///
    /// [`ProgError::ConfigMismatch`] on a differently-configured macro,
    /// [`ProgError::InputCount`] / [`ProgError::InputLen`] /
    /// [`ProgError::WordTooWide`] on a bad binding (checked before any
    /// array state changes), and [`ProgError::Exec`] as in
    /// [`CompiledProgram::run`].
    ///
    /// # Panics
    ///
    /// Panics if the executed cycle count diverges from the static cost
    /// model (a `prog` bug, never a data-dependent condition).
    pub fn run_with_inputs(
        &self,
        mac: &mut ImcMacro,
        inputs: &[Option<&[u64]>],
    ) -> Result<ProgramRun, ProgError> {
        if *mac.config() != self.config {
            return Err(ProgError::ConfigMismatch);
        }
        self.check_bindings(inputs)?;
        let mut state = ExecState::new(mac, self.submitted, self.reads);
        let mut slot = 0usize;
        for (instr, idx) in &self.ops {
            match instr {
                Instr::Write { dst, precision, .. } => {
                    let bound = inputs[slot];
                    slot += 1;
                    if let Some(values) = bound {
                        state.step_write(mac, *idx, |m| {
                            m.write_words(dst.row(), *precision, values)
                        })?;
                        continue;
                    }
                }
                Instr::WriteMult { dst, precision, .. } => {
                    let bound = inputs[slot];
                    slot += 1;
                    if let Some(values) = bound {
                        state.step_write(mac, *idx, |m| {
                            m.write_mult_operands(dst.row(), *precision, values)
                        })?;
                        continue;
                    }
                }
                _ => {}
            }
            state.step(mac, instr, *idx)?;
        }
        Ok(state.finish(mac, self.predicted))
    }

    /// [`CompiledProgram::run_with_inputs`] without the per-instruction
    /// accounting: returns just the read outputs. For callers that bill
    /// from the activity log's totals anyway (the serving classify path),
    /// this skips the per-instruction cycle/span bookkeeping — the last
    /// measurable executor overhead on many-instruction programs. The
    /// total-cycle cost-model assertion still runs.
    ///
    /// # Errors
    ///
    /// As [`CompiledProgram::run_with_inputs`].
    ///
    /// # Panics
    ///
    /// Panics if the executed cycle count diverges from the static cost
    /// model (a `prog` bug, never a data-dependent condition).
    pub fn run_outputs(
        &self,
        mac: &mut ImcMacro,
        inputs: &[Option<&[u64]>],
    ) -> Result<Vec<Vec<u64>>, ProgError> {
        if *mac.config() != self.config {
            return Err(ProgError::ConfigMismatch);
        }
        self.check_bindings(inputs)?;
        let log_start = mac.activity().total_cycles();
        let mut outputs = Vec::with_capacity(self.reads);
        let mut slot = 0usize;
        for (instr, idx) in &self.ops {
            let res = match instr {
                Instr::Write { dst, precision, .. } => {
                    let bound = inputs[slot];
                    slot += 1;
                    match bound {
                        Some(values) => mac.write_words(dst.row(), *precision, values).map(|_| ()),
                        None => exec_instr(instr, mac, &mut outputs),
                    }
                }
                Instr::WriteMult { dst, precision, .. } => {
                    let bound = inputs[slot];
                    slot += 1;
                    match bound {
                        Some(values) => mac
                            .write_mult_operands(dst.row(), *precision, values)
                            .map(|_| ()),
                        None => exec_instr(instr, mac, &mut outputs),
                    }
                }
                _ => exec_instr(instr, mac, &mut outputs),
            };
            res.map_err(|source| ProgError::Exec {
                instr: *idx,
                source,
            })?;
        }
        let executed = mac.activity().total_cycles() - log_start;
        assert_eq!(
            executed, self.predicted,
            "static cost model diverged from the activity log"
        );
        Ok(outputs)
    }

    /// Checks a binding set against the compiled writes without touching
    /// any macro: entry count, per-entry length, value ranges.
    fn check_bindings(&self, inputs: &[Option<&[u64]>]) -> Result<(), ProgError> {
        if inputs.len() != self.writes {
            return Err(ProgError::InputCount {
                expected: self.writes,
                got: inputs.len(),
            });
        }
        let mut slot = 0usize;
        for (instr, idx) in &self.ops {
            let (precision, baked) = match instr {
                Instr::Write {
                    precision, values, ..
                }
                | Instr::WriteMult {
                    precision, values, ..
                } => (*precision, values),
                _ => continue,
            };
            if let Some(bound) = inputs[slot] {
                if bound.len() != baked.len() {
                    return Err(ProgError::InputLen {
                        instr: *idx,
                        expected: baked.len(),
                        got: bound.len(),
                    });
                }
                if let Some(&v) = bound.iter().find(|&&v| v > precision.max_value()) {
                    return Err(ProgError::WordTooWide {
                        value: v,
                        bits: precision.bits(),
                        instr: *idx,
                    });
                }
            }
            slot += 1;
        }
        Ok(())
    }
}

/// One independent subgraph of a [`Program`], produced by
/// [`Program::partition`]: a self-contained instruction subsequence whose
/// every register read reaches a definition *inside* the subgraph, so it
/// can run on any macro, in any order relative to its siblings, and still
/// compute exactly what it computed in the original stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SubProgram {
    /// The component as a standalone runnable program (original
    /// instruction order preserved within the component).
    pub program: Program,
    /// For each component instruction, the index of the submitted
    /// instruction it came from.
    pub submitted: Vec<usize>,
    /// For each component `read`/`read_products` (in component order), the
    /// output-slot index it fills in the original program's output list.
    pub read_slots: Vec<usize>,
}

impl Program {
    /// Splits the program into its independent dependence components.
    ///
    /// Two instructions belong to the same component when one reads a
    /// register *value* the other defined (reaching definitions, not raw
    /// register indices — a register recycled by `write_to` across loop
    /// iterations starts a fresh value each time, so chunked pipelines
    /// like `classify`'s per-prototype dots split apart even though they
    /// share three physical registers). Within a component the original
    /// instruction order is preserved, which also preserves the
    /// `add`+`shl` fusion opportunities and therefore the component cycle
    /// counts: the components' cycles always sum to [`Program::cycles`].
    ///
    /// Intended for validated programs; on an invalid program the split is
    /// still well-defined (an unreachable source read simply does not link)
    /// but the components may not validate individually.
    pub fn partition(&self) -> Vec<SubProgram> {
        // The shared dataflow framework resolves every read to its
        // reaching definition; components are the connected closure of
        // those value edges, numbered by first instruction.
        let comp = analysis::Dataflow::of(self).components();
        let count = comp.iter().copied().max().map_or(0, |m| m + 1);
        let mut comps: Vec<(Vec<Instr>, Vec<usize>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new(), Vec::new()); count];
        let mut read_slot = 0usize;
        for (idx, instr) in self.instrs.iter().enumerate() {
            let c = comp[idx];
            if instr.is_read() {
                comps[c].2.push(read_slot);
                read_slot += 1;
            }
            comps[c].0.push(instr.clone());
            comps[c].1.push(idx);
        }
        comps
            .into_iter()
            .map(|(instrs, submitted, read_slots)| SubProgram {
                program: Program::new(instrs),
                submitted,
                read_slots,
            })
            .collect()
    }

    /// The static cost model's parallel-completion bound: the busiest
    /// macro's cycle count when the program's dependence components are
    /// spread over `macros` macros by the deterministic LPT schedule
    /// [`MacroBank::run_partitioned`] uses. With one macro this equals
    /// [`Program::cycles`]; total work is always exactly
    /// [`Program::cycles`] regardless of the split.
    pub fn predicted_makespan(&self, macros: usize) -> u64 {
        let parts = self.partition();
        let costs: Vec<u64> = parts.iter().map(|p| p.program.cycles()).collect();
        lpt_schedule(&costs, macros.max(1))
            .iter()
            .map(|bin| bin.iter().map(|&c| costs[c]).sum::<u64>())
            .max()
            .unwrap_or(0)
    }
}

/// Deterministic longest-processing-time schedule: components sorted by
/// (cost descending, index ascending), each assigned to the least-loaded
/// bin (lowest index on ties). Returns the component indices per bin.
fn lpt_schedule(costs: &[u64], bins: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut out = vec![Vec::new(); bins];
    let mut load = vec![0u64; bins];
    for i in order {
        let b = (0..bins).min_by_key(|&b| (load[b], b)).expect("bins >= 1");
        load[b] += costs[i];
        out[b].push(i);
    }
    out
}

/// The result of a multi-macro partitioned execution
/// ([`MacroBank::run_partitioned`]).
///
/// Outputs and per-instruction cycles are reassembled in *program order*,
/// so they are identical to a single-macro [`Program::run`]; what changes
/// is completion time, reported as [`PartitionedRun::makespan_cycles`]
/// (the busiest macro) next to the unchanged total work.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedRun {
    /// One vector per `read`/`read_products` instruction, in program order.
    pub outputs: Vec<Vec<u64>>,
    /// Hardware cycles billed per submitted instruction (fused `shl`s bill
    /// 0, exactly as in [`ProgramRun`]).
    pub instr_cycles: Vec<u64>,
    /// Total hardware work — identical to the single-macro run.
    pub total_cycles: u64,
    /// Parallel completion bound: the busiest macro's cycles this run.
    pub makespan_cycles: u64,
    /// Macros that executed at least one component.
    pub macros_used: usize,
}

impl MacroBank {
    /// Runs one program with its independent dependence components spread
    /// across the bank's macros (deterministic LPT schedule over the
    /// static per-component cycle costs) — the single-request latency
    /// path: total cycles and all results are identical to
    /// [`Program::run`] on one macro, while the completion bound drops to
    /// [`PartitionedRun::makespan_cycles`].
    ///
    /// The extended cost model is asserted against the activity logs: each
    /// macro must log exactly the cycles the schedule predicted for it
    /// ([`Program::predicted_makespan`] reports the same schedule's
    /// maximum).
    ///
    /// # Errors
    ///
    /// Forwards validation [`ProgError`]s (checked against the bank's
    /// configuration before any macro is touched).
    ///
    /// # Panics
    ///
    /// Panics if any macro's logged cycles diverge from the schedule's
    /// prediction (a `prog` bug, never a data-dependent condition).
    pub fn run_partitioned(&mut self, prog: &Program) -> Result<PartitionedRun, ProgError> {
        self.run_partitioned_inner(prog, None)
    }

    /// [`MacroBank::run_partitioned`] with **cooperative cancellation**:
    /// the token is checked between component executions on every macro,
    /// so a cancelled or deadline-expired run abandons its remaining
    /// components mid-flight (each macro finishes only the component it is
    /// currently executing) and returns [`ProgError::Cancelled`]. The
    /// activity logs record exactly the components that ran — partial work
    /// is billed, never invented.
    ///
    /// # Errors
    ///
    /// Validation errors as [`MacroBank::run_partitioned`], plus
    /// [`ProgError::Cancelled`] whenever the token fired during the run —
    /// including after the final component was already claimed, so a
    /// cancelled request never masquerades as a complete one.
    pub fn run_partitioned_cancellable(
        &mut self,
        prog: &Program,
        cancel: &bpimc_stats::parallel::CancelToken,
    ) -> Result<PartitionedRun, ProgError> {
        self.run_partitioned_inner(prog, Some(cancel))
    }

    fn run_partitioned_inner(
        &mut self,
        prog: &Program,
        cancel: Option<&bpimc_stats::parallel::CancelToken>,
    ) -> Result<PartitionedRun, ProgError> {
        let config = *self.macros().next().expect("banks are non-empty").config();
        prog.validate(&config)?;
        let parts = prog.partition();
        let costs: Vec<u64> = parts.iter().map(|p| p.program.cycles()).collect();
        let bins = lpt_schedule(&costs, self.len());
        let starts: Vec<u64> = self.macros().map(|m| m.activity().total_cycles()).collect();
        let mut results = self.dispatch(|i, mac| {
            let mut runs = Vec::new();
            for &ci in &bins[i] {
                // The cancellation check sits between whole components —
                // the partitioned analogue of a claim-queue block — so a
                // quiet token costs one atomic load per component.
                if cancel.is_some_and(bpimc_stats::parallel::CancelToken::is_cancelled) {
                    break;
                }
                runs.push((ci, parts[ci].program.run(mac)));
            }
            runs
        });
        let deltas: Vec<u64> = self
            .macros()
            .zip(&starts)
            .map(|(m, &s)| m.activity().total_cycles() - s)
            .collect();
        let mut per_part: Vec<Option<ProgramRun>> = (0..parts.len()).map(|_| None).collect();
        for (i, macro_runs) in results.drain(..).enumerate() {
            // The cost model is asserted over the components that actually
            // ran (all of them, unless the token fired mid-run).
            let mut predicted = 0u64;
            for (ci, run) in macro_runs {
                predicted += costs[ci];
                per_part[ci] = Some(run?);
            }
            assert_eq!(
                deltas[i], predicted,
                "macro {i}: partition cost model diverged from the activity log"
            );
        }
        // A fired token means a cancelled run even when every component
        // happened to finish first (the token can fire after the final
        // component is claimed): the caller asked for the work to stop, so
        // a full result set must not masquerade as an uncancelled run.
        if per_part.iter().any(Option::is_none)
            || cancel.is_some_and(bpimc_stats::parallel::CancelToken::is_cancelled)
        {
            return Err(ProgError::Cancelled);
        }
        let mut outputs: Vec<Vec<u64>> = vec![Vec::new(); prog.read_count()];
        let mut instr_cycles = vec![0u64; prog.instrs().len()];
        for (part, run) in parts.iter().zip(per_part) {
            let run = run.expect("every component was scheduled");
            for (slot, out) in part.read_slots.iter().zip(run.outputs) {
                outputs[*slot] = out;
            }
            for (sub_idx, cycles) in part.submitted.iter().zip(run.instr_cycles) {
                instr_cycles[*sub_idx] = cycles;
            }
        }
        Ok(PartitionedRun {
            outputs,
            instr_cycles,
            total_cycles: deltas.iter().sum(),
            makespan_cycles: deltas.iter().copied().max().unwrap_or(0),
            macros_used: bins.iter().filter(|b| !b.is_empty()).count(),
        })
    }
}

/// Per-run execution bookkeeping shared by [`Program::run`] and
/// [`CompiledProgram::run`]: outputs, per-instruction cycle billing and
/// activity-log spans, and the cost-model assertion at the end.
struct ExecState {
    log_start: usize,
    outputs: Vec<Vec<u64>>,
    instr_cycles: Vec<u64>,
    instr_spans: Vec<Range<usize>>,
}

impl ExecState {
    fn new(mac: &ImcMacro, submitted: usize, reads: usize) -> Self {
        let log_start = mac.activity().total_cycles() as usize;
        Self {
            log_start,
            outputs: Vec::with_capacity(reads),
            instr_cycles: vec![0u64; submitted],
            instr_spans: vec![log_start..log_start; submitted],
        }
    }

    fn step(&mut self, mac: &mut ImcMacro, instr: &Instr, idx: usize) -> Result<(), ProgError> {
        let start = mac.activity().total_cycles() as usize;
        exec_instr(instr, mac, &mut self.outputs)
            .map_err(|source| ProgError::Exec { instr: idx, source })?;
        let end = mac.activity().total_cycles() as usize;
        self.instr_cycles[idx] = (end - start) as u64;
        self.instr_spans[idx] = start..end;
        Ok(())
    }

    /// Like [`ExecState::step`] for a write whose values are bound at run
    /// time (`run_with_inputs`): the caller supplies the macro call so the
    /// bound slice is written without cloning it into an [`Instr`].
    fn step_write(
        &mut self,
        mac: &mut ImcMacro,
        idx: usize,
        write: impl FnOnce(&mut ImcMacro) -> Result<u64, Error>,
    ) -> Result<(), ProgError> {
        let start = mac.activity().total_cycles() as usize;
        write(mac).map_err(|source| ProgError::Exec { instr: idx, source })?;
        let end = mac.activity().total_cycles() as usize;
        self.instr_cycles[idx] = (end - start) as u64;
        self.instr_spans[idx] = start..end;
        Ok(())
    }

    fn finish(self, mac: &ImcMacro, predicted: u64) -> ProgramRun {
        let executed = mac.activity().total_cycles() - self.log_start as u64;
        assert_eq!(
            executed, predicted,
            "static cost model diverged from the activity log"
        );
        ProgramRun {
            outputs: self.outputs,
            instr_cycles: self.instr_cycles,
            instr_spans: self.instr_spans,
        }
    }
}

/// A typed builder allocating virtual registers as it goes.
///
/// Every data-producing method returns the [`Reg`] holding its result;
/// `read`/`read_products` return the index of the output vector the run
/// will produce. Registers can be overwritten (`write_to`,
/// [`ProgramBuilder::push`] with an explicit `dst`) so long loops can
/// recycle a fixed working set instead of exhausting the row budget.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    next_reg: u16,
    reads: usize,
}

impl ProgramBuilder {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh virtual register without writing it (useful as an
    /// explicit destination for [`ProgramBuilder::push`]).
    pub fn alloc(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends a raw instruction. Registers it names must come from
    /// [`ProgramBuilder::alloc`] or earlier builder calls.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        if instr.is_read() {
            self.reads += 1;
        }
        self.instrs.push(instr);
        self
    }

    /// Writes `values` into dense lanes of a fresh register.
    pub fn write(&mut self, precision: Precision, values: Vec<u64>) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Write {
            dst,
            precision,
            values,
        });
        dst
    }

    /// Overwrites an existing register with dense-lane `values`.
    pub fn write_to(&mut self, dst: Reg, precision: Precision, values: Vec<u64>) {
        self.push(Instr::Write {
            dst,
            precision,
            values,
        });
    }

    /// Writes multiplication operands into a fresh register's product
    /// lanes.
    pub fn write_mult(&mut self, precision: Precision, values: Vec<u64>) -> Reg {
        let dst = self.alloc();
        self.push(Instr::WriteMult {
            dst,
            precision,
            values,
        });
        dst
    }

    /// Overwrites an existing register with product-lane operands.
    pub fn write_mult_to(&mut self, dst: Reg, precision: Precision, values: Vec<u64>) {
        self.push(Instr::WriteMult {
            dst,
            precision,
            values,
        });
    }

    /// Reads `n` dense lanes of `src`; returns the output-slot index.
    pub fn read(&mut self, src: Reg, precision: Precision, n: usize) -> usize {
        self.push(Instr::Read { src, precision, n });
        self.reads - 1
    }

    /// Reads `n` products of `src`; returns the output-slot index.
    pub fn read_products(&mut self, src: Reg, precision: Precision, n: usize) -> usize {
        self.push(Instr::ReadProducts { src, precision, n });
        self.reads - 1
    }

    /// Bit-wise logic into a fresh register.
    pub fn logic(&mut self, op: LogicOp, a: Reg, b: Reg) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Logic { op, a, b, dst });
        dst
    }

    /// Bit-wise NOT into a fresh register.
    pub fn not(&mut self, src: Reg) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Not { src, dst });
        dst
    }

    /// Row copy into a fresh register.
    pub fn copy(&mut self, src: Reg) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Copy { src, dst });
        dst
    }

    /// Per-lane left shift by one into a fresh register.
    pub fn shl(&mut self, src: Reg, precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Shl {
            src,
            dst,
            precision,
        });
        dst
    }

    /// Per-lane addition into a fresh register.
    pub fn add(&mut self, a: Reg, b: Reg, precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Add {
            a,
            b,
            dst,
            precision,
        });
        dst
    }

    /// Per-lane add-and-shift into a fresh register.
    pub fn add_shift(&mut self, a: Reg, b: Reg, precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::AddShift {
            a,
            b,
            dst,
            precision,
        });
        dst
    }

    /// Per-lane subtraction into a fresh register.
    pub fn sub(&mut self, a: Reg, b: Reg, precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Sub {
            a,
            b,
            dst,
            precision,
        });
        dst
    }

    /// Per-lane multiplication into a fresh register.
    pub fn mult(&mut self, a: Reg, b: Reg, precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::Mult {
            a,
            b,
            dst,
            precision,
        });
        dst
    }

    /// In-memory reduction of `srcs` into a fresh register.
    pub fn reduce_add(&mut self, srcs: &[Reg], precision: Precision) -> Reg {
        let dst = self.alloc();
        self.push(Instr::ReduceAdd {
            srcs: srcs.to_vec(),
            dst,
            precision,
        });
        dst
    }

    /// Finishes the build. The register file covers both allocated
    /// registers and any named explicitly in pushed instructions.
    pub fn finish(self) -> Program {
        let mut prog = Program::new(self.instrs);
        prog.regs = prog.regs.max(self.next_reg as usize);
        prog
    }
}

impl MacroBank {
    /// Fans a batch of independent programs across the bank
    /// ([`MacroBank::try_run_batch`] underneath): each program validates
    /// and runs with exclusive access to one macro, results return in
    /// program order, and a panicking job is contained to its own slot
    /// ([`ProgError::Panicked`]).
    pub fn run_programs(&mut self, programs: &[Program]) -> Vec<Result<ProgramRun, ProgError>> {
        self.try_run_batch(programs, |mac, prog| prog.run(mac))
            .into_iter()
            .map(|slot| match slot {
                Ok(r) => r,
                Err(panic) => Err(ProgError::Panicked(panic.message)),
            })
            .collect()
    }
}

fn check_values(
    values: &[u64],
    precision: Precision,
    available: usize,
    instr: usize,
) -> Result<(), ProgError> {
    if values.len() > available {
        return Err(ProgError::TooManyWords {
            requested: values.len(),
            available,
            instr,
        });
    }
    if let Some(&v) = values.iter().find(|&&v| v > precision.max_value()) {
        return Err(ProgError::WordTooWide {
            value: v,
            bits: precision.bits(),
            instr,
        });
    }
    Ok(())
}

fn check_product_width(precision: Precision, cols: usize, instr: usize) -> Result<(), ProgError> {
    let needed_bits = 2 * precision.bits();
    if needed_bits > cols {
        return Err(ProgError::PrecisionTooWide {
            needed_bits,
            cols,
            instr,
        });
    }
    Ok(())
}

/// Executes one lowered instruction via the macro's method for it.
fn exec_instr(instr: &Instr, mac: &mut ImcMacro, outputs: &mut Vec<Vec<u64>>) -> Result<(), Error> {
    match instr {
        Instr::Write {
            dst,
            precision,
            values,
        } => {
            mac.write_words(dst.row(), *precision, values)?;
        }
        Instr::WriteMult {
            dst,
            precision,
            values,
        } => {
            mac.write_mult_operands(dst.row(), *precision, values)?;
        }
        Instr::Read { src, precision, n } => {
            outputs.push(mac.read_words(src.row(), *precision, *n)?);
        }
        Instr::ReadProducts { src, precision, n } => {
            outputs.push(mac.read_products(src.row(), *precision, *n)?);
        }
        Instr::Logic { op, a, b, dst } => {
            mac.logic(*op, a.row(), b.row(), dst.row())?;
        }
        Instr::Not { src, dst } => {
            mac.not(src.row(), dst.row())?;
        }
        Instr::Copy { src, dst } => {
            mac.copy(src.row(), dst.row())?;
        }
        Instr::Shl {
            src,
            dst,
            precision,
        } => {
            mac.shl(src.row(), dst.row(), *precision)?;
        }
        Instr::Add {
            a,
            b,
            dst,
            precision,
        } => {
            mac.add(a.row(), b.row(), dst.row(), *precision)?;
        }
        Instr::AddShift {
            a,
            b,
            dst,
            precision,
        } => {
            mac.add_shift(a.row(), b.row(), dst.row(), *precision)?;
        }
        Instr::Sub {
            a,
            b,
            dst,
            precision,
        } => {
            mac.sub(a.row(), b.row(), dst.row(), *precision)?;
        }
        Instr::Mult {
            a,
            b,
            dst,
            precision,
        } => {
            mac.mult(a.row(), b.row(), dst.row(), *precision)?;
        }
        Instr::ReduceAdd {
            srcs,
            dst,
            precision,
        } => {
            let rows: Vec<usize> = srcs.iter().map(|r| r.row()).collect();
            mac.reduce_add(&rows, dst.row(), *precision)?;
        }
    }
    Ok(())
}

/// Appends the exact [`CycleActivity`] records `exec_instr` will make the
/// macro log for `instr` — the cost model's per-cycle half, kept in
/// lock-step with `ImcMacro`'s implementations (property tests in
/// `tests/prop.rs` pin the two together bit for bit).
fn predict_instr_activity(instr: &Instr, cols: usize, sep: bool, out: &mut Vec<CycleActivity>) {
    let full = |kind: CycleKind, dummy: bool, inverting: bool, ff_bits: usize| CycleActivity {
        kind,
        compute_cols: cols,
        logic_cols: if kind == CycleKind::Compute { cols } else { 0 },
        wb_cols: cols,
        wb_to_dummy: dummy,
        wb_shielded: sep && dummy,
        wb_inverting: inverting,
        ff_bits,
    };
    match instr {
        Instr::Write { .. } | Instr::WriteMult { .. } => out.push(CycleActivity {
            kind: CycleKind::WriteOnly,
            compute_cols: 0,
            logic_cols: 0,
            wb_cols: cols,
            wb_to_dummy: false,
            wb_shielded: false,
            wb_inverting: false,
            ff_bits: 0,
        }),
        Instr::Read { .. } | Instr::ReadProducts { .. } => out.push(CycleActivity {
            kind: CycleKind::ReadOnly,
            compute_cols: cols,
            logic_cols: 0,
            wb_cols: 0,
            wb_to_dummy: false,
            wb_shielded: false,
            wb_inverting: false,
            ff_bits: 0,
        }),
        Instr::Logic { .. } | Instr::Add { .. } | Instr::AddShift { .. } => {
            out.push(full(CycleKind::Compute, false, false, 0));
        }
        Instr::Not { .. } => out.push(full(CycleKind::SingleAccess, false, true, 0)),
        Instr::Copy { .. } | Instr::Shl { .. } => {
            out.push(full(CycleKind::SingleAccess, false, false, 0));
        }
        Instr::Sub { .. } => {
            out.push(full(CycleKind::SingleAccess, true, true, 0));
            out.push(full(CycleKind::Compute, false, false, 0));
        }
        Instr::Mult { precision, .. } => {
            let bits = precision.bits();
            let lanes = cols / (2 * bits);
            let lane_cols = lanes * 2 * bits;
            let gated =
                |kind: CycleKind, active: usize, dummy: bool, ff_bits: usize| CycleActivity {
                    kind,
                    compute_cols: active,
                    logic_cols: if kind == CycleKind::Compute {
                        active
                    } else {
                        0
                    },
                    wb_cols: active,
                    wb_to_dummy: dummy,
                    wb_shielded: sep && dummy,
                    wb_inverting: false,
                    ff_bits,
                };
            // Init: zero the accumulator (multiplier into the FF bank),
            // then stage the multiplicand — both into shielded dummy rows.
            out.push(gated(
                CycleKind::SingleAccess,
                lane_cols,
                true,
                lanes * bits,
            ));
            out.push(gated(CycleKind::SingleAccess, lane_cols, true, 0));
            // P add-and-shift steps; the accumulator's valid width grows
            // one bit per step and only those columns clock.
            for step in 0..bits {
                let valid = (bits + step + 1).min(2 * bits);
                let final_step = step == bits - 1;
                out.push(gated(
                    CycleKind::Compute,
                    lanes * valid,
                    !final_step,
                    lanes * bits,
                ));
            }
        }
        Instr::ReduceAdd { srcs, .. } => {
            out.push(full(CycleKind::SingleAccess, true, false, 0));
            let n = srcs.len();
            if n == 1 {
                out.push(full(CycleKind::SingleAccess, false, false, 0));
            } else {
                for i in 1..n {
                    let final_step = i == n - 1;
                    out.push(full(CycleKind::Compute, !final_step, false, 0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MacroConfig {
        MacroConfig::paper_macro()
    }

    fn mac() -> ImcMacro {
        ImcMacro::new(cfg())
    }

    #[test]
    fn builder_pipeline_runs_and_reads() {
        let mut b = ProgramBuilder::new();
        let p = Precision::P8;
        let x = b.write(p, vec![7, 9]);
        let y = b.write(p, vec![5, 250]);
        let s = b.add(x, y, p);
        let d = b.sub(x, y, p);
        let slot_s = b.read(s, p, 2);
        let slot_d = b.read(d, p, 2);
        let prog = b.finish();
        assert_eq!(prog.read_count(), 2);
        let mut m = mac();
        let run = prog.run(&mut m).unwrap();
        assert_eq!(run.outputs[slot_s], vec![12, (9 + 250) & 0xFF]);
        assert_eq!(run.outputs[slot_d], vec![2, 9u64.wrapping_sub(250) & 0xFF]);
        // write + write + add + sub(2) + read + read
        assert_eq!(prog.cycles(), 7);
        assert_eq!(run.total_cycles(), 7);
        assert_eq!(m.activity().total_cycles(), 7);
    }

    #[test]
    fn compiled_program_matches_run_including_fusion_and_accounting() {
        let mut b = ProgramBuilder::new();
        let p = Precision::P8;
        let x = b.write(p, vec![10, 20, 30]);
        let y = b.write(p, vec![1, 2, 3]);
        let s = b.add(x, y, p); // fuses with the shl below
        let d = b.shl(s, p);
        b.read(d, p, 3);
        let prog = b.finish();
        let compiled = prog.compile(&cfg()).unwrap();
        assert_eq!(compiled.cycles(), prog.cycles());
        let mut m1 = mac();
        let mut m2 = mac();
        let via_run = prog.run(&mut m1).unwrap();
        let via_compiled = compiled.run(&mut m2).unwrap();
        assert_eq!(via_run, via_compiled);
        assert_eq!(m1.activity().cycles(), m2.activity().cycles());
        // Repeat runs reuse the compilation and keep exact accounting.
        let again = compiled.run(&mut m2).unwrap();
        assert_eq!(again.outputs, via_run.outputs);
        assert_eq!(again.total_cycles(), prog.cycles());
    }

    #[test]
    fn compiled_program_rejects_a_different_config() {
        let mut b = ProgramBuilder::new();
        let x = b.write(Precision::P8, vec![1]);
        b.read(x, Precision::P8, 1);
        let compiled = b.finish().compile(&cfg()).unwrap();
        let mut other = ImcMacro::new(cfg().with_separator(false));
        assert_eq!(compiled.run(&mut other), Err(ProgError::ConfigMismatch));
    }

    #[test]
    fn compile_forwards_validation_errors() {
        let prog = Program::new(vec![Instr::Add {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(2),
            precision: Precision::P8,
        }]);
        assert!(matches!(
            prog.compile(&cfg()),
            Err(ProgError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn validation_catches_use_before_def() {
        let prog = Program::new(vec![Instr::Add {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(2),
            precision: Precision::P8,
        }]);
        assert_eq!(
            prog.validate(&cfg()),
            Err(ProgError::UseBeforeDef {
                reg: Reg(0),
                instr: 0
            })
        );
    }

    #[test]
    fn validation_catches_register_overflow() {
        let prog = Program::new(vec![Instr::Write {
            dst: Reg(200),
            precision: Precision::P8,
            values: vec![1],
        }]);
        assert_eq!(
            prog.validate(&cfg()),
            Err(ProgError::TooManyRegs {
                needed: 201,
                rows: 128
            })
        );
    }

    #[test]
    fn validation_catches_aliased_operands() {
        let mut b = ProgramBuilder::new();
        let x = b.write(Precision::P8, vec![1]);
        b.push(Instr::Add {
            a: x,
            b: x,
            dst: Reg(1),
            precision: Precision::P8,
        });
        let prog = b.finish();
        assert!(matches!(
            prog.validate(&cfg()),
            Err(ProgError::OperandsAlias { instr: 1, .. })
        ));
    }

    #[test]
    fn validation_catches_width_problems() {
        let mut b = ProgramBuilder::new();
        b.write(Precision::P8, vec![256]);
        assert!(matches!(
            b.clone().finish().validate(&cfg()),
            Err(ProgError::WordTooWide {
                value: 256,
                bits: 8,
                instr: 0
            })
        ));

        let mut b = ProgramBuilder::new();
        b.write(Precision::P8, vec![0; 17]);
        assert!(matches!(
            b.clone().finish().validate(&cfg()),
            Err(ProgError::TooManyWords {
                requested: 17,
                available: 16,
                instr: 0
            })
        ));

        let mut b = ProgramBuilder::new();
        let a = b.write_mult(Precision::P16, vec![1]);
        let c = b.write_mult(Precision::P16, vec![2]);
        b.mult(a, c, Precision::P16);
        let small = MacroConfig::with_cols(16);
        assert!(matches!(
            b.finish().validate(&small),
            Err(ProgError::PrecisionTooWide {
                needed_bits: 32,
                cols: 16,
                instr: 0
            })
        ));
    }

    #[test]
    fn validation_catches_empty_reduce() {
        let mut b = ProgramBuilder::new();
        b.reduce_add(&[], Precision::P8);
        assert_eq!(
            b.finish().validate(&cfg()),
            Err(ProgError::EmptyReduce { instr: 0 })
        );
    }

    #[test]
    fn add_shl_fuses_when_intermediate_is_dead() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![3]);
        let y = b.write(p, vec![5]);
        let s = b.add(x, y, p);
        let d = b.shl(s, p);
        b.read(d, p, 1);
        let prog = b.finish();
        let lowered = prog.lowered();
        assert_eq!(lowered.len(), 4);
        assert!(matches!(lowered[2], Instr::AddShift { .. }));
        assert_eq!(prog.cycles(), 4);
        assert_eq!(prog.instr_cycles(), vec![1, 1, 1, 0, 1]);

        let mut m = mac();
        let run = prog.run(&mut m).unwrap();
        assert_eq!(run.outputs[0], vec![16]);
        assert_eq!(run.instr_cycles, vec![1, 1, 1, 0, 1]);
        assert_eq!(m.activity().total_cycles(), 4);
    }

    #[test]
    fn add_shl_does_not_fuse_when_sum_is_read_later() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![3]);
        let y = b.write(p, vec![5]);
        let s = b.add(x, y, p);
        let d = b.shl(s, p);
        b.read(d, p, 1);
        b.read(s, p, 1); // the sum stays live
        let prog = b.finish();
        assert_eq!(prog.lowered().len(), prog.instrs().len());
        assert_eq!(prog.cycles(), 6);
        let mut m = mac();
        let run = prog.run(&mut m).unwrap();
        assert_eq!(run.outputs, vec![vec![16], vec![8]]);
    }

    #[test]
    fn fusion_matches_explicit_add_shift_bit_for_bit() {
        let p = Precision::P4;
        let build = |explicit: bool| {
            let mut b = ProgramBuilder::new();
            let x = b.write(p, vec![5, 9, 15]);
            let y = b.write(p, vec![3, 7, 1]);
            let d = if explicit {
                b.add_shift(x, y, p)
            } else {
                let s = b.add(x, y, p);
                b.shl(s, p)
            };
            b.read(d, p, 3);
            b.finish()
        };
        let (fused, explicit) = (build(false), build(true));
        assert_eq!(fused.cycles(), explicit.cycles());
        let mut m1 = mac();
        let mut m2 = mac();
        let r1 = fused.run(&mut m1).unwrap();
        let r2 = explicit.run(&mut m2).unwrap();
        assert_eq!(r1.outputs, r2.outputs);
        assert_eq!(m1.activity().cycles(), m2.activity().cycles());
    }

    #[test]
    fn predicted_activity_matches_log_for_every_instr_kind() {
        let p = Precision::P4;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![5, 9]);
        let y = b.write(p, vec![3, 7]);
        let s = b.add(x, y, p);
        b.sub(x, y, p);
        b.logic(LogicOp::Xor, x, y);
        b.not(x);
        let c = b.copy(y);
        b.shl(c, p);
        b.add_shift(x, y, p);
        b.reduce_add(&[x, y, s], p);
        let ma = b.write_mult(p, vec![5, 9]);
        let mb = b.write_mult(p, vec![3, 7]);
        let prod = b.mult(ma, mb, p);
        b.read_products(prod, p, 2);
        b.read(s, p, 2);
        let prog = b.finish();

        let predicted = prog.predicted_activity(&cfg()).unwrap();
        let mut m = mac();
        prog.run(&mut m).unwrap();
        assert_eq!(predicted.as_slice(), m.activity().cycles());
    }

    #[test]
    fn predicted_activity_tracks_separator_config() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let a = b.write_mult(p, vec![5]);
        let c = b.write_mult(p, vec![7]);
        let d = b.mult(a, c, p);
        b.read_products(d, p, 1);
        let prog = b.finish();
        let no_sep = MacroConfig::paper_macro().with_separator(false);
        let predicted = prog.predicted_activity(&no_sep).unwrap();
        let mut m = ImcMacro::new(no_sep);
        prog.run(&mut m).unwrap();
        assert_eq!(predicted.as_slice(), m.activity().cycles());
        assert!(predicted.iter().all(|c| !c.wb_shielded));
    }

    #[test]
    fn run_leaves_macro_untouched_on_invalid_program() {
        let prog = Program::new(vec![Instr::Read {
            src: Reg(0),
            precision: Precision::P8,
            n: 1,
        }]);
        let mut m = mac();
        assert!(prog.run(&mut m).is_err());
        assert_eq!(m.activity().total_cycles(), 0);
    }

    #[test]
    fn bank_fans_programs_and_contains_validation_errors() {
        let p = Precision::P8;
        let mut programs = Vec::new();
        for i in 0..12u64 {
            let mut b = ProgramBuilder::new();
            let x = b.write(p, vec![i]);
            let y = b.write(p, vec![100]);
            let s = b.add(x, y, p);
            b.read(s, p, 1);
            programs.push(b.finish());
        }
        // One invalid program in the middle fails alone.
        programs[5] = Program::new(vec![Instr::Read {
            src: Reg(3),
            precision: p,
            n: 1,
        }]);
        let mut bank = MacroBank::new(3, cfg());
        let results = bank.run_programs(&programs);
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                assert!(matches!(r, Err(ProgError::UseBeforeDef { .. })));
            } else {
                assert_eq!(r.as_ref().unwrap().outputs[0], vec![i as u64 + 100]);
            }
        }
    }

    #[test]
    fn register_reuse_keeps_row_budget_bounded() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.alloc();
        let y = b.alloc();
        let mut expect = Vec::new();
        for k in 0..40u64 {
            b.write_to(x, p, vec![k]);
            b.write_to(y, p, vec![2 * k + 1]);
            let s = b.add(x, y, p);
            b.read(s, p, 1);
            expect.push(vec![3 * k + 1]);
        }
        let prog = b.finish();
        assert!(prog.reg_count() <= 42);
        let mut m = mac();
        let run = prog.run(&mut m).unwrap();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn pushed_instrs_with_unallocated_regs_validate_structurally() {
        // A raw push naming a register never handed out by alloc() must
        // flow through validation (structured errors / success), never
        // panic with an index error.
        let mut b = ProgramBuilder::new();
        b.push(Instr::Write {
            dst: Reg(5),
            precision: Precision::P8,
            values: vec![1],
        });
        let prog = b.finish();
        assert!(prog.reg_count() >= 6);
        assert_eq!(prog.validate(&cfg()), Ok(()));
        let mut m = mac();
        prog.run(&mut m).unwrap();

        let mut b = ProgramBuilder::new();
        b.push(Instr::Read {
            src: Reg(7),
            precision: Precision::P8,
            n: 1,
        });
        assert_eq!(
            b.finish().validate(&cfg()),
            Err(ProgError::UseBeforeDef {
                reg: Reg(7),
                instr: 0
            })
        );
    }

    #[test]
    fn instr_names_round_trip_the_wire_vocabulary() {
        // `name()` is documented as the wire name; every logic function
        // maps to its own op name, not a collective "logic".
        for (op, want) in [
            (LogicOp::And, "and"),
            (LogicOp::Or, "or"),
            (LogicOp::Xor, "xor"),
            (LogicOp::Nand, "nand"),
            (LogicOp::Nor, "nor"),
            (LogicOp::Xnor, "xnor"),
        ] {
            let i = Instr::Logic {
                op,
                a: Reg(0),
                b: Reg(1),
                dst: Reg(2),
            };
            assert_eq!(i.name(), want);
        }
    }

    #[test]
    fn lowering_is_linear_on_long_fusion_heavy_programs() {
        // A wire-sized worst case (every pair a fusion candidate) lowers
        // and runs without quadratic blowup; the host-time bound here is
        // indirect — the test simply finishing fast is the guard — but
        // the fusion count is checked exactly.
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![1]);
        let y = b.write(p, vec![2]);
        let pairs = 20_000;
        for _ in 0..pairs {
            let s = b.add(x, y, p);
            b.shl(s, p);
        }
        let prog = b.finish();
        let lowered = prog.lowered();
        assert_eq!(lowered.len(), 2 + pairs);
        assert_eq!(prog.cycles(), 2 + pairs as u64);
    }

    #[test]
    fn run_with_inputs_rebinds_write_values() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![1, 2, 3]);
        let y = b.write(p, vec![10, 10, 10]);
        let s = b.add(x, y, p);
        b.read(s, p, 3);
        let prog = b.finish();
        let compiled = prog.compile(&cfg()).unwrap();
        assert_eq!(compiled.write_count(), 2);

        let mut m = mac();
        // Baked values.
        let run = compiled.run_with_inputs(&mut m, &[None, None]).unwrap();
        assert_eq!(run.outputs[0], vec![11, 12, 13]);
        // Rebind one operand; the other stays baked.
        let xs = [100u64, 200, 255];
        let run = compiled
            .run_with_inputs(&mut m, &[Some(&xs), None])
            .unwrap();
        assert_eq!(run.outputs[0], vec![110, 210, (255 + 10) & 0xFF]);
        // Rebind both; identical accounting to the compiled run.
        let ys = [1u64, 1, 1];
        let run = compiled
            .run_with_inputs(&mut m, &[Some(&xs), Some(&ys)])
            .unwrap();
        assert_eq!(run.outputs[0], vec![101, 201, 0]);
        assert_eq!(run.total_cycles(), compiled.cycles());
        assert_eq!(run.instr_cycles, prog.instr_cycles());
    }

    #[test]
    fn run_with_inputs_matches_a_freshly_built_program_bit_for_bit() {
        let p = Precision::P4;
        let build = |x: &[u64], w: &[u64]| {
            let mut b = ProgramBuilder::new();
            let rx = b.write_mult(p, x.to_vec());
            let rw = b.write_mult(p, w.to_vec());
            let prod = b.mult(rx, rw, p);
            b.read_products(prod, p, x.len());
            b.finish()
        };
        let compiled = build(&[0, 0, 0], &[0, 0, 0]).compile(&cfg()).unwrap();
        let (x, w) = ([3u64, 7, 15], [5u64, 2, 9]);
        let mut m1 = mac();
        let bound = compiled
            .run_with_inputs(&mut m1, &[Some(&x), Some(&w)])
            .unwrap();
        let mut m2 = mac();
        let fresh = build(&x, &w).run(&mut m2).unwrap();
        assert_eq!(bound, fresh);
        assert_eq!(m1.activity().cycles(), m2.activity().cycles());
    }

    #[test]
    fn run_outputs_matches_run_with_inputs() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write_mult(p, vec![0, 0]);
        let w = b.write_mult(p, vec![7, 9]);
        let prod = b.mult(x, w, p);
        b.read_products(prod, p, 2);
        let s = b.add_shift(x, w, p);
        b.read(s, p, 2);
        let compiled = b.finish().compile(&cfg()).unwrap();
        let xs = [3u64, 5];
        let mut m1 = mac();
        let full = compiled
            .run_with_inputs(&mut m1, &[Some(&xs), None])
            .unwrap();
        let mut m2 = mac();
        let lean = compiled.run_outputs(&mut m2, &[Some(&xs), None]).unwrap();
        assert_eq!(lean, full.outputs);
        assert_eq!(m1.activity().cycles(), m2.activity().cycles());
        // Same structured errors without touching the macro.
        let mut m3 = mac();
        assert_eq!(
            compiled.run_outputs(&mut m3, &[]),
            Err(ProgError::InputCount {
                expected: 2,
                got: 0
            })
        );
        assert_eq!(m3.activity().total_cycles(), 0);
    }

    #[test]
    fn run_with_inputs_rejects_bad_bindings_before_touching_the_macro() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![1, 2]);
        b.read(x, p, 2);
        let compiled = b.finish().compile(&cfg()).unwrap();
        let mut m = mac();
        assert_eq!(
            compiled.run_with_inputs(&mut m, &[]),
            Err(ProgError::InputCount {
                expected: 1,
                got: 0
            })
        );
        let short = [9u64];
        assert_eq!(
            compiled.run_with_inputs(&mut m, &[Some(&short)]),
            Err(ProgError::InputLen {
                instr: 0,
                expected: 2,
                got: 1
            })
        );
        let wide = [300u64, 1];
        assert_eq!(
            compiled.run_with_inputs(&mut m, &[Some(&wide)]),
            Err(ProgError::WordTooWide {
                value: 300,
                bits: 8,
                instr: 0
            })
        );
        // Nothing ran, nothing was billed.
        assert_eq!(m.activity().total_cycles(), 0);
        let mut other = ImcMacro::new(cfg().with_separator(false));
        assert_eq!(
            compiled.run_with_inputs(&mut other, &[None]),
            Err(ProgError::ConfigMismatch)
        );
    }

    #[test]
    fn partition_splits_recycled_register_chunks_into_components() {
        // A classify-shaped program: three working registers recycled
        // across four independent write/write/mult/read chains. Reaching
        // definitions (not raw register indices) must split them apart.
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let rx = b.alloc();
        let rw = b.alloc();
        let rp = b.alloc();
        for k in 0..4u64 {
            b.write_mult_to(rx, p, vec![k + 1, k + 2]);
            b.write_mult_to(rw, p, vec![10, 20]);
            b.push(Instr::Mult {
                a: rx,
                b: rw,
                dst: rp,
                precision: p,
            });
            b.read_products(rp, p, 2);
        }
        let prog = b.finish();
        let parts = prog.partition();
        assert_eq!(parts.len(), 4);
        for (c, part) in parts.iter().enumerate() {
            assert_eq!(part.program.instrs().len(), 4);
            assert_eq!(part.read_slots, vec![c]);
            assert_eq!(
                part.submitted,
                (4 * c..4 * c + 4).collect::<Vec<_>>(),
                "component {c} instruction mapping"
            );
        }
        // Component cycles sum to the whole program's cycles.
        let sum: u64 = parts.iter().map(|s| s.program.cycles()).sum();
        assert_eq!(sum, prog.cycles());
        // With enough macros the makespan is one chain; with one macro it
        // is the full program.
        assert_eq!(prog.predicted_makespan(4), parts[0].program.cycles());
        assert_eq!(prog.predicted_makespan(1), prog.cycles());
    }

    #[test]
    fn partition_keeps_dependent_chains_together_and_preserves_fusion() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let x = b.write(p, vec![3]);
        let y = b.write(p, vec![5]);
        let s = b.add(x, y, p);
        let d = b.shl(s, p); // fuses
        b.read(d, p, 1);
        let prog = b.finish();
        let parts = prog.partition();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].program.cycles(), prog.cycles());
        assert_eq!(prog.predicted_makespan(8), prog.cycles());
    }

    #[test]
    fn run_partitioned_matches_single_macro_execution() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        let rx = b.alloc();
        let rw = b.alloc();
        let rp = b.alloc();
        let mut expect = Vec::new();
        for k in 0..5u64 {
            let xs: Vec<u64> = (0..4).map(|i| (k * 13 + i * 7) % 256).collect();
            let ws: Vec<u64> = (0..4).map(|i| (k * 29 + i + 1) % 256).collect();
            expect.push(xs.iter().zip(&ws).map(|(a, c)| a * c).collect::<Vec<_>>());
            b.write_mult_to(rx, p, xs);
            b.write_mult_to(rw, p, ws);
            b.push(Instr::Mult {
                a: rx,
                b: rw,
                dst: rp,
                precision: p,
            });
            b.read_products(rp, p, 4);
        }
        let prog = b.finish();

        let mut single = mac();
        let single_run = prog.run(&mut single).unwrap();

        let mut bank = MacroBank::new(3, cfg());
        let part_run = bank.run_partitioned(&prog).unwrap();
        assert_eq!(part_run.outputs, expect);
        assert_eq!(part_run.outputs, single_run.outputs);
        assert_eq!(part_run.instr_cycles, single_run.instr_cycles);
        assert_eq!(part_run.total_cycles, single.activity().total_cycles());
        assert_eq!(part_run.total_cycles, bank.total_cycles());
        assert!(part_run.makespan_cycles < part_run.total_cycles);
        assert_eq!(part_run.makespan_cycles, prog.predicted_makespan(3));
        assert_eq!(part_run.macros_used, 3);
    }

    #[test]
    fn run_partitioned_cancellable_completes_when_the_token_is_quiet() {
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        for k in 0..4u64 {
            let x = b.write(p, vec![k + 1]);
            let y = b.write(p, vec![10 * (k + 1)]);
            let s = b.add(x, y, p);
            b.read(s, p, 1);
        }
        let prog = b.finish();
        let mut bank = MacroBank::new(2, cfg());
        let token = bpimc_stats::parallel::CancelToken::new();
        let run = bank.run_partitioned_cancellable(&prog, &token).unwrap();
        assert_eq!(
            run.outputs,
            vec![vec![11], vec![22], vec![33], vec![44]],
            "a quiet token changes nothing"
        );
        assert_eq!(run.total_cycles, bank.total_cycles());
    }

    #[test]
    fn run_partitioned_cancelled_abandons_remaining_components() {
        // Many independent components; a pre-fired token means no macro
        // claims any component: the run reports Cancelled and the activity
        // logs stay empty (partial work is real, invented work never is).
        let p = Precision::P8;
        let mut b = ProgramBuilder::new();
        for k in 0..6u64 {
            let x = b.write(p, vec![k + 1]);
            let y = b.write(p, vec![2 * (k + 1)]);
            let s = b.add(x, y, p);
            b.read(s, p, 1);
        }
        let prog = b.finish();
        let mut bank = MacroBank::new(2, cfg());
        let token = bpimc_stats::parallel::CancelToken::new();
        token.cancel();
        assert!(matches!(
            bank.run_partitioned_cancellable(&prog, &token),
            Err(ProgError::Cancelled)
        ));
        assert_eq!(bank.total_cycles(), 0, "no component may have executed");
        // The bank still serves: the same program completes afterwards.
        let ok = bank.run_partitioned(&prog).unwrap();
        assert_eq!(ok.outputs.len(), 6);
    }

    #[test]
    fn token_fired_after_the_last_component_still_reports_cancelled() {
        // Regression: a token that fires only once every component is
        // already claimed fills every result slot, and the run used to
        // return Ok from that complete result set. The deterministic
        // distillation of "every slot filled + token fired": a component
        // set that is complete from the start (no components at all) with a
        // fired token. The old code returned a full (empty) Ok run here;
        // the end-of-run token check must report Cancelled instead.
        let prog = ProgramBuilder::new().finish();
        let mut bank = MacroBank::new(1, cfg());
        let quiet = bpimc_stats::parallel::CancelToken::new();
        assert!(
            bank.run_partitioned_cancellable(&prog, &quiet).is_ok(),
            "a quiet token leaves the degenerate run alone"
        );
        let fired = bpimc_stats::parallel::CancelToken::new();
        fired.cancel();
        let run = bank.run_partitioned_cancellable(&prog, &fired);
        assert!(
            matches!(run, Err(ProgError::Cancelled)),
            "a fired token must mark the run cancelled even though every \
             component slot is filled, got {run:?}"
        );
    }

    #[test]
    fn run_partitioned_validates_before_touching_the_bank() {
        let prog = Program::new(vec![Instr::Read {
            src: Reg(0),
            precision: Precision::P8,
            n: 1,
        }]);
        let mut bank = MacroBank::new(2, cfg());
        assert!(matches!(
            bank.run_partitioned(&prog),
            Err(ProgError::UseBeforeDef { .. })
        ));
        assert_eq!(bank.total_cycles(), 0);
    }

    #[test]
    fn errors_display_their_instruction() {
        let e = ProgError::UseBeforeDef {
            reg: Reg(7),
            instr: 3,
        };
        assert!(e.to_string().contains("instr 3"));
        assert!(e.to_string().contains("r7"));
    }
}
