//! The operation vocabulary of the macro (the paper's Table I).

use bpimc_periph::{LogicOp, Precision};
use std::fmt;

/// Kinds of operation the macro executes, for logging and cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A bit-wise logic operation between two rows.
    Logic(LogicOp),
    /// Bit-wise inversion of a row.
    Not,
    /// Row copy.
    Copy,
    /// Per-lane logical left shift by one.
    Shl,
    /// Per-lane addition.
    Add,
    /// Per-lane add-and-shift (`(A+B) << 1`).
    AddShift,
    /// Per-lane subtraction (two's complement).
    Sub,
    /// Per-lane multiplication.
    Mult,
    /// Plain memory read.
    Read,
    /// Plain memory write.
    Write,
}

impl OpKind {
    /// The cycle count of this operation at a given precision — the paper's
    /// Table I ("N represents the data bit-width").
    pub fn cycles(&self, precision: Precision) -> u64 {
        match self {
            OpKind::Logic(_) | OpKind::Not | OpKind::Copy | OpKind::Shl => 1,
            OpKind::Add | OpKind::AddShift => 1,
            OpKind::Sub => 2,
            OpKind::Mult => precision.bits() as u64 + 2,
            OpKind::Read | OpKind::Write => 1,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Logic(op) => write!(f, "{op}"),
            OpKind::Not => write!(f, "NOT"),
            OpKind::Copy => write!(f, "COPY"),
            OpKind::Shl => write!(f, "SHIFT"),
            OpKind::Add => write!(f, "ADD"),
            OpKind::AddShift => write!(f, "ADD-SHIFT"),
            OpKind::Sub => write!(f, "SUB"),
            OpKind::Mult => write!(f, "MULT"),
            OpKind::Read => write!(f, "READ"),
            OpKind::Write => write!(f, "WRITE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cycle_counts() {
        let p8 = Precision::P8;
        assert_eq!(OpKind::Logic(LogicOp::Xor).cycles(p8), 1);
        assert_eq!(OpKind::Not.cycles(p8), 1);
        assert_eq!(OpKind::Shl.cycles(p8), 1);
        assert_eq!(OpKind::Add.cycles(p8), 1);
        assert_eq!(OpKind::AddShift.cycles(p8), 1);
        assert_eq!(OpKind::Sub.cycles(p8), 2);
        assert_eq!(OpKind::Mult.cycles(p8), 10);
        assert_eq!(OpKind::Mult.cycles(Precision::P4), 6);
        assert_eq!(OpKind::Mult.cycles(Precision::P2), 4);
        assert_eq!(OpKind::Mult.cycles(Precision::P16), 18);
    }

    #[test]
    fn display_names() {
        assert_eq!(OpKind::Mult.to_string(), "MULT");
        assert_eq!(OpKind::Logic(LogicOp::Nand).to_string(), "NAND");
    }
}
