//! The multi-bank chip: the paper's 128 KB organisation.
//!
//! Operations are issued to all macros in lock-step (each macro has its own
//! column peripherals), so a chip-wide op takes the same cycle count as a
//! single macro while processing `banks x macros x lanes` words.

use crate::config::ChipConfig;
use crate::error::Error;
use crate::macroblock::ImcMacro;
use bpimc_periph::Precision;

/// A chip of `banks x macros_per_bank` macros operating in lock-step.
///
/// # Examples
///
/// ```
/// use bpimc_core::{bank::Chip, config::ChipConfig, Precision};
///
/// # fn main() -> Result<(), bpimc_core::Error> {
/// let mut chip = Chip::new(ChipConfig::paper_chip());
/// assert_eq!(chip.macro_count(), 64);
/// // One broadcast ADD processes every lane of every macro in 1 cycle.
/// let cycles = chip.add_all(0, 1, 2, Precision::P8)?;
/// assert_eq!(cycles, 1);
/// assert_eq!(chip.words_per_op(Precision::P8), 64 * 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    config: ChipConfig,
    macros: Vec<ImcMacro>,
}

impl Chip {
    /// Creates a zeroed chip.
    pub fn new(config: ChipConfig) -> Self {
        let n = config.banks * config.macros_per_bank;
        Self {
            config,
            macros: (0..n).map(|_| ImcMacro::new(config.macro_config)).collect(),
        }
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Total number of macros.
    pub fn macro_count(&self) -> usize {
        self.macros.len()
    }

    /// Access one macro (bank-major order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn macro_at(&mut self, i: usize) -> &mut ImcMacro {
        &mut self.macros[i]
    }

    /// Words processed by one broadcast op at a precision (dense lanes).
    pub fn words_per_op(&self, precision: Precision) -> usize {
        self.macro_count() * precision.lanes(self.config.macro_config.geometry.cols)
    }

    /// Products computed by one broadcast MULT at a precision.
    pub fn products_per_op(&self, precision: Precision) -> usize {
        self.macro_count() * precision.product_lanes(self.config.macro_config.geometry.cols)
    }

    /// Broadcast per-lane addition on every macro. Returns the lock-step
    /// cycle count (that of a single macro).
    ///
    /// # Errors
    ///
    /// Returns the first macro error encountered.
    pub fn add_all(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        self.broadcast(|m| m.add(a, b, dst, precision))
    }

    /// Broadcast per-lane subtraction.
    ///
    /// # Errors
    ///
    /// Returns the first macro error encountered.
    pub fn sub_all(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        self.broadcast(|m| m.sub(a, b, dst, precision))
    }

    /// Broadcast per-lane multiplication (product-lane layout).
    ///
    /// # Errors
    ///
    /// Returns the first macro error encountered.
    pub fn mult_all(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        self.broadcast(|m| m.mult(a, b, dst, precision))
    }

    /// Runs `f` on every macro and checks they report identical cycle
    /// counts (they must: the chip is lock-step).
    fn broadcast<F: FnMut(&mut ImcMacro) -> Result<u64, Error>>(
        &mut self,
        mut f: F,
    ) -> Result<u64, Error> {
        let mut cycles = None;
        for m in &mut self.macros {
            let c = f(m)?;
            match cycles {
                None => cycles = Some(c),
                Some(prev) => debug_assert_eq!(prev, c, "macros must stay in lock-step"),
            }
        }
        Ok(cycles.unwrap_or(0))
    }

    /// Total cycles recorded across the chip's lifetime (max over macros,
    /// since they run in lock-step).
    pub fn total_cycles(&self) -> u64 {
        self.macros
            .iter()
            .map(|m| m.activity().total_cycles())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MacroConfig;

    fn small_chip() -> Chip {
        Chip::new(ChipConfig {
            banks: 2,
            macros_per_bank: 2,
            macro_config: MacroConfig::paper_macro(),
        })
    }

    #[test]
    fn broadcast_add_runs_everywhere() {
        let mut chip = small_chip();
        for i in 0..chip.macro_count() {
            let base = (i as u64 + 1) * 3;
            chip.macro_at(i)
                .write_words(0, Precision::P8, &[base])
                .unwrap();
            chip.macro_at(i)
                .write_words(1, Precision::P8, &[10])
                .unwrap();
        }
        let cycles = chip.add_all(0, 1, 2, Precision::P8).unwrap();
        assert_eq!(cycles, 1);
        for i in 0..chip.macro_count() {
            let got = chip.macro_at(i).read_words(2, Precision::P8, 1).unwrap()[0];
            assert_eq!(got, (i as u64 + 1) * 3 + 10);
        }
    }

    #[test]
    fn throughput_accounting() {
        let chip = Chip::new(ChipConfig::paper_chip());
        assert_eq!(chip.words_per_op(Precision::P8), 64 * 16);
        assert_eq!(chip.products_per_op(Precision::P8), 64 * 8);
        assert_eq!(chip.words_per_op(Precision::P2), 64 * 64);
    }

    #[test]
    fn mult_broadcast_cycles() {
        let mut chip = small_chip();
        for i in 0..chip.macro_count() {
            chip.macro_at(i)
                .write_mult_operands(0, Precision::P4, &[7])
                .unwrap();
            chip.macro_at(i)
                .write_mult_operands(1, Precision::P4, &[9])
                .unwrap();
        }
        let cycles = chip.mult_all(0, 1, 2, Precision::P4).unwrap();
        assert_eq!(cycles, 6);
        assert_eq!(
            chip.macro_at(3).read_products(2, Precision::P4, 1).unwrap()[0],
            63
        );
    }
}
