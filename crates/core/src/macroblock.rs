//! The in-memory-computing macro executor.

use crate::activity::{ActivityLog, CycleActivity};
use crate::config::MacroConfig;
use crate::error::Error;
use crate::isa::OpKind;
use crate::words;
use bpimc_array::{BitRow, BlSeparator, CycleKind, RowAddr, SramArray};
use bpimc_periph::{CarryChain, FfBank, LogicOp, Precision};

/// One 128 x 128 in-memory-computing macro (array + dummy rows + column
/// peripherals), executing the paper's Table I operation set cycle by cycle.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct ImcMacro {
    config: MacroConfig,
    array: SramArray,
    separator: BlSeparator,
    log: ActivityLog,
    /// Memoized carry chains by segment width: the lane masks are pure
    /// functions of `(cols, segment_bits)`, and rebuilding them on every
    /// single-cycle op would rival the limb arithmetic itself. `Arc` so a
    /// handle can be held across a multi-step op without borrowing `self`.
    chains: Vec<(usize, std::sync::Arc<CarryChain>)>,
}

impl PartialEq for ImcMacro {
    fn eq(&self, other: &Self) -> bool {
        // The chain cache is a memo, not state: two macros with identical
        // contents are equal regardless of which ops warmed their caches.
        self.config == other.config
            && self.array == other.array
            && self.separator == other.separator
            && self.log == other.log
    }
}

impl ImcMacro {
    /// Creates a zeroed macro.
    pub fn new(config: MacroConfig) -> Self {
        Self {
            config,
            array: SramArray::new(config.geometry),
            separator: BlSeparator::new(config.separator_enabled),
            log: ActivityLog::new(),
            chains: Vec::new(),
        }
    }

    /// The configuration this macro was built with.
    pub fn config(&self) -> &MacroConfig {
        &self.config
    }

    /// Column count (row width).
    pub fn cols(&self) -> usize {
        self.config.geometry.cols
    }

    /// The activity log accumulated so far.
    pub fn activity(&self) -> &ActivityLog {
        &self.log
    }

    /// Clears the activity log (the array contents are untouched).
    pub fn clear_activity(&mut self) {
        self.log.clear();
    }

    /// The memoized carry chain for `segment_bits`-wide lanes.
    fn chain(&mut self, segment_bits: usize) -> std::sync::Arc<CarryChain> {
        if let Some(pos) = self.chains.iter().position(|(s, _)| *s == segment_bits) {
            self.chains[pos].1.clone()
        } else {
            let c = std::sync::Arc::new(CarryChain::with_segment_bits(self.cols(), segment_bits));
            self.chains.push((segment_bits, c.clone()));
            c
        }
    }

    /// BL separator accounting (shielded vs exposed write-backs).
    pub fn separator(&self) -> &BlSeparator {
        &self.separator
    }

    /// Non-logging row inspection (for tests and debugging; a real data-out
    /// read is [`ImcMacro::read_row`]).
    pub fn peek_row(&self, row: usize) -> Result<BitRow, Error> {
        Ok(self.array.read(RowAddr::Main(row))?)
    }

    // ------------------------------------------------------------------
    // Plain memory access
    // ------------------------------------------------------------------

    /// Writes a full row. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid row or mismatched width.
    pub fn write_row(&mut self, row: usize, value: &BitRow) -> Result<u64, Error> {
        self.array.write(RowAddr::Main(row), value)?;
        self.push_write_cycle(RowAddr::Main(row), value.width(), 0);
        self.log.push_op(OpKind::Write, Precision::P8, 1);
        Ok(1)
    }

    /// Reads a full row out of the macro. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid row.
    pub fn read_row(&mut self, row: usize) -> Result<BitRow, Error> {
        let v = self.array.read(RowAddr::Main(row))?;
        self.log.push_cycle(CycleActivity {
            kind: CycleKind::ReadOnly,
            compute_cols: self.cols(),
            logic_cols: 0,
            wb_cols: 0,
            wb_to_dummy: false,
            wb_shielded: false,
            wb_inverting: false,
            ff_bits: 0,
        });
        self.log.push_op(OpKind::Read, Precision::P8, 1);
        Ok(v)
    }

    /// Packs `words` into dense `precision` lanes and writes them to `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when the words do not fit the row or the precision.
    pub fn write_words(
        &mut self,
        row: usize,
        precision: Precision,
        values: &[u64],
    ) -> Result<u64, Error> {
        let packed = words::pack_words(values, precision, self.cols())?;
        self.write_row(row, &packed)
    }

    /// Reads the first `n` dense `precision` lanes of `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` exceeds the lane count or `row` is invalid.
    pub fn read_words(
        &mut self,
        row: usize,
        precision: Precision,
        n: usize,
    ) -> Result<Vec<u64>, Error> {
        let r = self.read_row(row)?;
        words::unpack_words(&r, precision, n)
    }

    /// Writes multiplication operands into the low half of each `2P`-wide
    /// product lane of `row` (the Fig. 6 layout).
    ///
    /// # Errors
    ///
    /// Returns an error when the operands do not fit.
    pub fn write_mult_operands(
        &mut self,
        row: usize,
        precision: Precision,
        values: &[u64],
    ) -> Result<u64, Error> {
        let packed = words::pack_mult_operands(values, precision, self.cols())?;
        self.write_row(row, &packed)
    }

    /// Reads the first `n` products (each `2P` bits) from `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` exceeds the product lane count.
    pub fn read_products(
        &mut self,
        row: usize,
        precision: Precision,
        n: usize,
    ) -> Result<Vec<u64>, Error> {
        let r = self.read_row(row)?;
        words::unpack_products(&r, precision, n)
    }

    // ------------------------------------------------------------------
    // Single-cycle operations
    // ------------------------------------------------------------------

    /// Bit-wise logic between rows `a` and `b` into `dst`. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows (including `a == b`).
    pub fn logic(&mut self, op: LogicOp, a: usize, b: usize, dst: usize) -> Result<u64, Error> {
        let readout = self.array.bl_compute(RowAddr::Main(a), RowAddr::Main(b))?;
        let result = op.eval(&readout);
        self.writeback(RowAddr::Main(dst), &result, CycleKind::Compute, 0)?;
        self.log.push_op(OpKind::Logic(op), Precision::P8, 1);
        Ok(1)
    }

    /// Bit-wise NOT of `src` into `dst`. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn not(&mut self, src: usize, dst: usize) -> Result<u64, Error> {
        let r = self.array.single_read(RowAddr::Main(src))?;
        let v = r.not_a;
        let cols = self.cols();
        self.writeback_gated(
            RowAddr::Main(dst),
            &v,
            CycleKind::SingleAccess,
            0,
            cols,
            true,
        )?;
        self.log.push_op(OpKind::Not, Precision::P8, 1);
        Ok(1)
    }

    /// Copies row `src` to `dst`. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn copy(&mut self, src: usize, dst: usize) -> Result<u64, Error> {
        let r = self.array.single_read(RowAddr::Main(src))?;
        let v = r.a;
        self.writeback(RowAddr::Main(dst), &v, CycleKind::SingleAccess, 0)?;
        self.log.push_op(OpKind::Copy, Precision::P8, 1);
        Ok(1)
    }

    /// Per-lane logical left shift of `src` by one into `dst`. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn shl(&mut self, src: usize, dst: usize, precision: Precision) -> Result<u64, Error> {
        let r = self.array.single_read(RowAddr::Main(src))?;
        let v = self.chain(precision.bits()).shift_row(&r.a);
        self.writeback(RowAddr::Main(dst), &v, CycleKind::SingleAccess, 0)?;
        self.log.push_op(OpKind::Shl, precision, 1);
        Ok(1)
    }

    /// Per-lane addition `dst = a + b` (wrapping at the lane width). One
    /// cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn add(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        let readout = self.array.bl_compute(RowAddr::Main(a), RowAddr::Main(b))?;
        let sum = self.chain(precision.bits()).add(&readout, false).sum;
        self.writeback(RowAddr::Main(dst), &sum, CycleKind::Compute, 0)?;
        self.log.push_op(OpKind::Add, precision, 1);
        Ok(1)
    }

    /// Per-lane add-and-shift `dst = (a + b) << 1`. One cycle.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn add_shift(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        let readout = self.array.bl_compute(RowAddr::Main(a), RowAddr::Main(b))?;
        let v = self.chain(precision.bits()).add_shift(&readout);
        self.writeback(RowAddr::Main(dst), &v, CycleKind::Compute, 0)?;
        self.log.push_op(OpKind::AddShift, precision, 1);
        Ok(1)
    }

    // ------------------------------------------------------------------
    // Multi-cycle operations
    // ------------------------------------------------------------------

    /// Per-lane subtraction `dst = a - b` (two's complement, wrapping). Two
    /// cycles: NOT(b) into a dummy row, then ADD with carry-in 1.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows.
    pub fn sub(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        // Cycle 1: invert B into dummy row 0 (shielded by the separator).
        let rb = self.array.single_read(RowAddr::Main(b))?;
        let nb = rb.not_a;
        let cols = self.cols();
        self.writeback_gated(
            RowAddr::Dummy(0),
            &nb,
            CycleKind::SingleAccess,
            0,
            cols,
            true,
        )?;
        // Cycle 2: A + ~B + 1.
        let readout = self.array.bl_compute(RowAddr::Main(a), RowAddr::Dummy(0))?;
        let diff = self.chain(precision.bits()).add(&readout, true).sum;
        self.writeback(RowAddr::Main(dst), &diff, CycleKind::Compute, 0)?;
        self.log.push_op(OpKind::Sub, precision, 2);
        Ok(2)
    }

    /// Per-lane multiplication of the product-lane operands in rows `a`
    /// (multiplicand) and `b` (multiplier): `dst`'s `2P`-wide lanes receive
    /// the full products. Takes `P + 2` cycles (Table I): two initialisation
    /// cycles, then `P` add-and-shift steps (the last one a plain ADD).
    ///
    /// Operands must be stored with [`ImcMacro::write_mult_operands`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::PrecisionTooWide`] when `2P` exceeds the row width,
    /// or an array error for invalid rows.
    pub fn mult(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        let bits = precision.bits();
        let cols = self.cols();
        if 2 * bits > cols {
            return Err(Error::PrecisionTooWide {
                needed_bits: 2 * bits,
                cols,
            });
        }
        let chain = self.chain(2 * bits);
        let lanes = chain.lane_count();

        // Init cycle 1: zeros into dummy row 0 (the accumulator) while the
        // multiplier row is read into the FF bank, reversed.
        let rb = self.array.single_read(RowAddr::Main(b))?;
        let mut bank = FfBank::new(precision, lanes);
        for lane in 0..lanes {
            bank.load(lane, rb.a.get_field(lane * 2 * bits, bits));
        }
        let zeros = BitRow::zeros(cols);
        let lane_cols = lanes * 2 * bits;
        self.writeback_gated(
            RowAddr::Dummy(0),
            &zeros,
            CycleKind::SingleAccess,
            lanes * bits,
            lane_cols,
            false,
        )?;

        // Init cycle 2: copy the multiplicand into dummy row 1.
        let ra = self.array.single_read(RowAddr::Main(a))?;
        let multiplicand = ra.a;
        self.writeback_gated(
            RowAddr::Dummy(1),
            &multiplicand,
            CycleKind::SingleAccess,
            0,
            lane_cols,
            false,
        )?;

        // P add-and-shift steps, accumulator ping-ponging between dummy rows
        // 0 and 2 (the paper's "second and third rows"); the final step is a
        // plain ADD written to the destination.
        let mut acc_src = RowAddr::Dummy(0);
        let mut acc_dst = RowAddr::Dummy(2);
        for step in 0..bits {
            let final_step = step == bits - 1;
            let readout = self.array.bl_compute(acc_src, RowAddr::Dummy(1))?;
            // The Y-path FFs hold the previously written accumulator value
            // for the pass-through (FF bit = 0) case.
            let acc_latch = self.array.read(acc_src)?;
            let ff = bank.fronts();
            let next = chain.mult_step(&readout, &acc_latch, &ff, final_step);
            let target = if final_step {
                RowAddr::Main(dst)
            } else {
                acc_dst
            };
            // Only the valid low bits of each product lane have switched so
            // far; the rest are clock-gated (accumulator width grows by one
            // bit per step).
            let valid = (bits + step + 1).min(2 * bits);
            self.writeback_gated(
                target,
                &next,
                CycleKind::Compute,
                lanes * bits,
                lanes * valid,
                false,
            )?;
            bank.shift();
            std::mem::swap(&mut acc_src, &mut acc_dst);
        }

        let cycles = bits as u64 + 2;
        self.log.push_op(OpKind::Mult, precision, cycles as usize);
        Ok(cycles)
    }

    /// In-memory reduction: sums the rows `srcs` pairwise with a tree of
    /// bit-parallel ADDs into `dst` (per-lane, wrapping at the precision).
    /// Intermediate partial sums cycle through dummy rows 0 and 2, so no
    /// main-array rows beyond `dst` are clobbered.
    ///
    /// Takes `ceil(log2(n)) * levels` single-cycle ADDs — `n-1` adds total —
    /// the accumulation pattern a dot-product workload uses after its
    /// multiplies.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid rows or when `srcs` is empty.
    pub fn reduce_add(
        &mut self,
        srcs: &[usize],
        dst: usize,
        precision: Precision,
    ) -> Result<u64, Error> {
        let first = *srcs.first().ok_or(Error::TooManyWords {
            requested: 0,
            available: 0,
        })?;
        // Running partial sum lives in dummy rows (ping-pong) to avoid
        // clobbering main rows; start by copying the first source.
        let r = self.array.single_read(RowAddr::Main(first))?;
        let v = r.a;
        self.writeback(RowAddr::Dummy(0), &v, CycleKind::SingleAccess, 0)?;
        let mut cycles = 1u64;
        let mut acc = RowAddr::Dummy(0);
        let mut spare = RowAddr::Dummy(2);
        let chain = self.chain(precision.bits());
        for (i, &s) in srcs.iter().enumerate().skip(1) {
            let readout = self.array.bl_compute(acc, RowAddr::Main(s))?;
            let sum = chain.add(&readout, false).sum;
            let target = if i == srcs.len() - 1 {
                RowAddr::Main(dst)
            } else {
                spare
            };
            self.writeback(target, &sum, CycleKind::Compute, 0)?;
            cycles += 1;
            std::mem::swap(&mut acc, &mut spare);
        }
        if srcs.len() == 1 {
            // Single source: the "reduction" is a copy to dst.
            let r = self.array.read(RowAddr::Dummy(0))?;
            self.writeback(RowAddr::Main(dst), &r, CycleKind::SingleAccess, 0)?;
            cycles += 1;
        }
        self.log.push_op(OpKind::Add, precision, cycles as usize);
        Ok(cycles)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Commits a write-back and logs its cycle with full-row activity.
    fn writeback(
        &mut self,
        target: RowAddr,
        value: &BitRow,
        kind: CycleKind,
        ff_bits: usize,
    ) -> Result<(), Error> {
        let cols = self.cols();
        self.writeback_gated(target, value, kind, ff_bits, cols, false)
    }

    /// Commits a write-back whose compute/write activity covers only
    /// `active_cols` columns (clock-gated lanes, e.g. the not-yet-valid
    /// upper product bits during multiplication).
    fn writeback_gated(
        &mut self,
        target: RowAddr,
        value: &BitRow,
        kind: CycleKind,
        ff_bits: usize,
        active_cols: usize,
        inverting: bool,
    ) -> Result<(), Error> {
        self.array.write(target, value)?;
        let shielded = self.separator.record_writeback(target.is_dummy());
        self.log.push_cycle(CycleActivity {
            kind,
            compute_cols: active_cols,
            logic_cols: if kind == CycleKind::Compute {
                active_cols
            } else {
                0
            },
            wb_cols: active_cols,
            wb_to_dummy: target.is_dummy(),
            wb_shielded: shielded,
            wb_inverting: inverting,
            ff_bits,
        });
        Ok(())
    }

    /// Logs a plain write cycle (no compute phase).
    fn push_write_cycle(&mut self, target: RowAddr, wb_cols: usize, ff_bits: usize) {
        let shielded = self.separator.record_writeback(target.is_dummy());
        self.log.push_cycle(CycleActivity {
            kind: CycleKind::WriteOnly,
            compute_cols: 0,
            logic_cols: 0,
            wb_cols,
            wb_to_dummy: target.is_dummy(),
            wb_shielded: shielded,
            wb_inverting: false,
            ff_bits,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mac() -> ImcMacro {
        ImcMacro::new(MacroConfig::paper_macro())
    }

    #[test]
    fn word_round_trip() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[1, 2, 3, 255]).unwrap();
        assert_eq!(
            m.read_words(0, Precision::P8, 4).unwrap(),
            vec![1, 2, 3, 255]
        );
    }

    #[test]
    fn logic_ops_all_lanes() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[0xF0; 16]).unwrap();
        m.write_words(1, Precision::P8, &[0x3C; 16]).unwrap();
        let c = m.logic(LogicOp::Xor, 0, 1, 2).unwrap();
        assert_eq!(c, 1);
        assert_eq!(m.read_words(2, Precision::P8, 16).unwrap(), vec![0xCC; 16]);
    }

    #[test]
    fn add_sub_cycles_and_values() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[200, 15]).unwrap();
        m.write_words(1, Precision::P8, &[100, 20]).unwrap();
        assert_eq!(m.add(0, 1, 2, Precision::P8).unwrap(), 1);
        assert_eq!(
            m.read_words(2, Precision::P8, 2).unwrap(),
            vec![(200 + 100) & 0xFF, 35]
        );
        assert_eq!(m.sub(0, 1, 3, Precision::P8).unwrap(), 2);
        assert_eq!(
            m.read_words(3, Precision::P8, 2).unwrap(),
            vec![100, (15u64.wrapping_sub(20)) & 0xFF]
        );
    }

    #[test]
    fn shl_and_add_shift() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[0b0100_0001]).unwrap();
        m.write_words(1, Precision::P8, &[3]).unwrap();
        m.shl(0, 2, Precision::P8).unwrap();
        assert_eq!(
            m.read_words(2, Precision::P8, 1).unwrap(),
            vec![0b1000_0010]
        );
        m.add_shift(0, 1, 3, Precision::P8).unwrap();
        assert_eq!(
            m.read_words(3, Precision::P8, 1).unwrap(),
            vec![((0b0100_0001 + 3) << 1) & 0xFF]
        );
    }

    #[test]
    fn paper_worked_example_mult() {
        // Fig. 5: 1010 x 1011 = 1101110.
        let mut m = mac();
        m.write_mult_operands(0, Precision::P4, &[0b1010]).unwrap();
        m.write_mult_operands(1, Precision::P4, &[0b1011]).unwrap();
        let cycles = m.mult(0, 1, 2, Precision::P4).unwrap();
        assert_eq!(cycles, 6); // N + 2 with N = 4
        assert_eq!(
            m.read_products(2, Precision::P4, 1).unwrap(),
            vec![0b0110_1110]
        );
    }

    #[test]
    fn mult_exhaustive_2bit_and_4bit() {
        for p in [Precision::P2, Precision::P4] {
            let n = 1u64 << p.bits();
            for a in 0..n {
                for b in 0..n {
                    let mut m = mac();
                    m.write_mult_operands(0, p, &[a]).unwrap();
                    m.write_mult_operands(1, p, &[b]).unwrap();
                    m.mult(0, 1, 2, p).unwrap();
                    let got = m.read_products(2, p, 1).unwrap()[0];
                    assert_eq!(got, a * b, "{a} x {b} at {p}");
                }
            }
        }
    }

    #[test]
    fn mult_all_lanes_in_parallel() {
        let mut m = mac();
        let a: Vec<u64> = (0..8).map(|i| 17 * i + 3).collect();
        let b: Vec<u64> = (0..8).map(|i| 31 * i + 1).collect();
        m.write_mult_operands(0, Precision::P8, &a).unwrap();
        m.write_mult_operands(1, Precision::P8, &b).unwrap();
        let cycles = m.mult(0, 1, 2, Precision::P8).unwrap();
        assert_eq!(cycles, 10);
        let got = m.read_products(2, Precision::P8, 8).unwrap();
        let expect: Vec<u64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x & 0xFF) * (y & 0xFF))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn separator_accounting_during_mult() {
        let mut m = mac();
        m.write_mult_operands(0, Precision::P8, &[5]).unwrap();
        m.write_mult_operands(1, Precision::P8, &[7]).unwrap();
        let before = m.separator().shielded();
        m.mult(0, 1, 2, Precision::P8).unwrap();
        // 2 init write-backs + 7 intermediate add-shift write-backs target
        // dummy rows; the final ADD writes the main array.
        assert_eq!(m.separator().shielded() - before, 9);
    }

    #[test]
    fn separator_disabled_shields_nothing() {
        let mut m = ImcMacro::new(MacroConfig::paper_macro().with_separator(false));
        m.write_mult_operands(0, Precision::P8, &[5]).unwrap();
        m.write_mult_operands(1, Precision::P8, &[7]).unwrap();
        m.mult(0, 1, 2, Precision::P8).unwrap();
        assert_eq!(m.separator().shielded(), 0);
    }

    #[test]
    fn activity_log_records_ops_and_cycles() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[1]).unwrap();
        m.write_words(1, Precision::P8, &[2]).unwrap();
        m.clear_activity();
        m.add(0, 1, 2, Precision::P8).unwrap();
        m.sub(0, 1, 3, Precision::P8).unwrap();
        assert_eq!(m.activity().total_cycles(), 3);
        let ops = m.activity().ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, OpKind::Add);
        assert_eq!(ops[1].cycle_count, 2);
        // SUB's first cycle writes a dummy row and is shielded.
        let sub_cycles = m.activity().cycles_of(&ops[1]);
        assert!(sub_cycles[0].wb_to_dummy && sub_cycles[0].wb_shielded);
        assert!(!sub_cycles[1].wb_to_dummy);
    }

    #[test]
    fn reduce_add_sums_many_rows() {
        let mut m = mac();
        let rows = [3usize, 4, 5, 6, 7];
        for (k, &r) in rows.iter().enumerate() {
            let vals: Vec<u64> = (0..16).map(|i| (i + k as u64 * 7) & 0xFF).collect();
            m.write_words(r, Precision::P8, &vals).unwrap();
        }
        let cycles = m.reduce_add(&rows, 10, Precision::P8).unwrap();
        assert_eq!(cycles, rows.len() as u64); // 1 copy + n-1 adds
        let got = m.read_words(10, Precision::P8, 16).unwrap();
        for i in 0..16u64 {
            let expect: u64 = (0..5).map(|k| (i + k * 7) & 0xFF).sum::<u64>() & 0xFF;
            assert_eq!(got[i as usize], expect, "lane {i}");
        }
    }

    #[test]
    fn reduce_add_single_source_is_copy() {
        let mut m = mac();
        m.write_words(0, Precision::P8, &[42, 17]).unwrap();
        m.reduce_add(&[0], 5, Precision::P8).unwrap();
        assert_eq!(m.read_words(5, Precision::P8, 2).unwrap(), vec![42, 17]);
    }

    #[test]
    fn reduce_add_empty_is_an_error() {
        let mut m = mac();
        assert!(m.reduce_add(&[], 5, Precision::P8).is_err());
    }

    #[test]
    fn mult_too_wide_for_row_is_rejected() {
        let mut m = ImcMacro::new(MacroConfig::with_cols(16));
        assert!(matches!(
            m.mult(0, 1, 2, Precision::P16),
            Err(Error::PrecisionTooWide {
                needed_bits: 32,
                cols: 16
            })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// 8-bit lane arithmetic matches wrapping reference arithmetic for
        /// all 16 lanes at once.
        #[test]
        fn add_sub_match_reference(a in prop::collection::vec(0u64..256, 16),
                                   b in prop::collection::vec(0u64..256, 16)) {
            let mut m = mac();
            m.write_words(0, Precision::P8, &a).unwrap();
            m.write_words(1, Precision::P8, &b).unwrap();
            m.add(0, 1, 2, Precision::P8).unwrap();
            m.sub(0, 1, 3, Precision::P8).unwrap();
            let sum = m.read_words(2, Precision::P8, 16).unwrap();
            let diff = m.read_words(3, Precision::P8, 16).unwrap();
            for i in 0..16 {
                prop_assert_eq!(sum[i], (a[i] + b[i]) & 0xFF);
                prop_assert_eq!(diff[i], a[i].wrapping_sub(b[i]) & 0xFF);
            }
        }

        /// Random 8-bit multiplications across all product lanes.
        #[test]
        fn mult_matches_reference(a in prop::collection::vec(0u64..256, 8),
                                  b in prop::collection::vec(0u64..256, 8)) {
            let mut m = mac();
            m.write_mult_operands(0, Precision::P8, &a).unwrap();
            m.write_mult_operands(1, Precision::P8, &b).unwrap();
            m.mult(0, 1, 2, Precision::P8).unwrap();
            let got = m.read_products(2, Precision::P8, 8).unwrap();
            for i in 0..8 {
                prop_assert_eq!(got[i], a[i] * b[i]);
            }
        }

        /// 16-bit extension precision works the same way.
        #[test]
        fn mult_16bit_extension(a in 0u64..65536, b in 0u64..65536) {
            let mut m = mac();
            m.write_mult_operands(0, Precision::P16, &[a]).unwrap();
            m.write_mult_operands(1, Precision::P16, &[b]).unwrap();
            let cycles = m.mult(0, 1, 2, Precision::P16).unwrap();
            prop_assert_eq!(cycles, 18);
            prop_assert_eq!(m.read_products(2, Precision::P16, 1).unwrap()[0], a * b);
        }
    }
}
