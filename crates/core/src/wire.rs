//! The line-delimited JSON wire protocol of the compute service.
//!
//! Every request and response is exactly one JSON object on one line. The
//! vocabulary maps directly onto the macro's ISA (the paper's Table I) plus
//! the session-level verbs a multi-client service needs.
//!
//! # Requests
//!
//! | `op` | fields | meaning |
//! |---|---|---|
//! | `ping` | — | liveness probe |
//! | `dot` | `precision`, `x`, `w` | in-memory dot product `Σ x[i]·w[i]` |
//! | `add` / `sub` / `mult` | `precision`, `a`, `b` | lane-wise arithmetic |
//! | `and` / `or` / `xor` / `nand` / `nor` / `xnor` | `precision`, `a`, `b` | lane-wise logic |
//! | `load_model` | `precision`, `prototypes` | store quantized class prototypes in the session |
//! | `classify` | `x` | nearest-prototype class of a quantized sample |
//! | `stats` | — | the session's activity account so far |
//! | `inject_panic` | — | fault injection (only if the server enables it) |
//! | `shutdown` | — | ask the server to drain and stop |
//!
//! `precision` is the lane width in bits (2/4/8/16/32); vectors are arrays
//! of non-negative integers that must fit the precision (`mult` operands
//! occupy `2P`-bit product lanes and results may use all 64 bits at P32).
//! Every request carries a client-chosen `id` echoed in its response.
//!
//! # Responses
//!
//! `{"id":N,"ok":true,"kind":K,"result":…}` on success, with `kind` one of
//! `pong`, `scalar`, `words`, `class`, `ok`, `stats`;
//! `{"id":N,"ok":false,"error":"…"}` on failure. A response's `id` matches
//! its request; per connection, responses arrive in request order.
//!
//! # Examples
//!
//! ```
//! use bpimc_core::wire::{Request, RequestBody, Response, ResponseBody};
//! use bpimc_core::Precision;
//!
//! let req = Request {
//!     id: 7,
//!     body: RequestBody::Dot {
//!         precision: Precision::P8,
//!         x: vec![1, 2, 3],
//!         w: vec![4, 5, 6],
//!     },
//! };
//! let line = req.to_json_line();
//! assert_eq!(Request::parse(&line).unwrap(), req);
//!
//! let resp = Response {
//!     id: 7,
//!     body: ResponseBody::Scalar(32),
//! };
//! assert_eq!(Response::parse(&resp.to_json_line()).unwrap(), resp);
//! ```

use crate::activity::SessionActivity;
use crate::json::Json;
use bpimc_periph::{LogicOp, Precision};
use std::fmt;

/// Lane-wise operations addressable over the wire (a subset of the ISA's
/// [`OpKind`](crate::OpKind) that takes two packed operand vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOp {
    /// Lane-wise addition (wrapping at the lane width).
    Add,
    /// Lane-wise subtraction (two's complement, wrapping).
    Sub,
    /// Lane-wise multiplication into `2P`-bit product lanes.
    Mult,
    /// Lane-wise bitwise logic.
    Logic(LogicOp),
}

impl LaneOp {
    /// The wire name of this op.
    pub fn name(&self) -> &'static str {
        match self {
            LaneOp::Add => "add",
            LaneOp::Sub => "sub",
            LaneOp::Mult => "mult",
            LaneOp::Logic(LogicOp::And) => "and",
            LaneOp::Logic(LogicOp::Or) => "or",
            LaneOp::Logic(LogicOp::Xor) => "xor",
            LaneOp::Logic(LogicOp::Nand) => "nand",
            LaneOp::Logic(LogicOp::Nor) => "nor",
            LaneOp::Logic(LogicOp::Xnor) => "xnor",
        }
    }

    /// The op for a wire name, if any.
    pub fn from_name(name: &str) -> Option<LaneOp> {
        Some(match name {
            "add" => LaneOp::Add,
            "sub" => LaneOp::Sub,
            "mult" => LaneOp::Mult,
            "and" => LaneOp::Logic(LogicOp::And),
            "or" => LaneOp::Logic(LogicOp::Or),
            "xor" => LaneOp::Logic(LogicOp::Xor),
            "nand" => LaneOp::Logic(LogicOp::Nand),
            "nor" => LaneOp::Logic(LogicOp::Nor),
            "xnor" => LaneOp::Logic(LogicOp::Xnor),
            _ => return None,
        })
    }
}

/// What a request asks the service to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// In-memory dot product of two equal-length quantized vectors.
    Dot {
        /// Lane width of the operands.
        precision: Precision,
        /// First vector.
        x: Vec<u64>,
        /// Second vector.
        w: Vec<u64>,
    },
    /// A lane-wise two-operand op over packed vectors.
    Lanes {
        /// Which op.
        op: LaneOp,
        /// Lane width.
        precision: Precision,
        /// First operand vector.
        a: Vec<u64>,
        /// Second operand vector.
        b: Vec<u64>,
    },
    /// Stores quantized class prototypes in the session for `classify`.
    LoadModel {
        /// Lane width the prototypes are quantized to.
        precision: Precision,
        /// One quantized weight vector per class.
        prototypes: Vec<Vec<u64>>,
    },
    /// Classifies one quantized sample against the session's model.
    Classify {
        /// The quantized sample.
        x: Vec<u64>,
    },
    /// The session's activity account (state *before* this request).
    Stats,
    /// Deliberately panics the executing job (fault injection; the server
    /// only honours it when started with fault injection enabled).
    InjectPanic,
    /// Asks the server to finish queued work and shut down.
    Shutdown,
}

/// One request: a client-chosen id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// What to do.
    pub body: RequestBody,
}

/// What a successful request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `ping` reply.
    Pong,
    /// A scalar result (`dot`).
    Scalar(u64),
    /// A vector result (lane-wise ops).
    Words(Vec<u64>),
    /// A predicted class index (`classify`).
    Class(usize),
    /// Acknowledgement with no payload (`load_model`, `shutdown`).
    Ok,
    /// The session's account (`stats`).
    Stats(SessionActivity),
    /// The request failed; human-readable reason.
    Error(String),
}

/// One response, tagged with the request's id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// Result or error.
    pub body: ResponseBody,
}

/// A malformed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed message: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| wire_err(format!("missing field '{key}'")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field '{key}' must be a non-negative integer")))
}

fn words_field(v: &Json, key: &str) -> Result<Vec<u64>, WireError> {
    field(v, key)?
        .as_u64_array()
        .ok_or_else(|| wire_err(format!("field '{key}' must be an array of integers")))
}

fn precision_field(v: &Json) -> Result<Precision, WireError> {
    let bits = u64_field(v, "precision")?;
    Precision::try_from_bits(bits as usize)
        .map_err(|_| wire_err(format!("unsupported precision {bits} (use 2/4/8/16/32)")))
}

fn words_json(words: &[u64]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::UInt(w)).collect())
}

impl Request {
    /// Extracts just the `id` of a line, for error responses to requests
    /// that do not parse fully. Returns 0 when even the id is unreadable.
    pub fn peek_id(line: &str) -> u64 {
        Json::parse(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_u64))
            .unwrap_or(0)
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (bad JSON, missing or
    /// ill-typed field, unknown op).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let op = field(&v, "op")?
            .as_str()
            .ok_or_else(|| wire_err("field 'op' must be a string"))?;
        let body = match op {
            "ping" => RequestBody::Ping,
            "dot" => RequestBody::Dot {
                precision: precision_field(&v)?,
                x: words_field(&v, "x")?,
                w: words_field(&v, "w")?,
            },
            "load_model" => {
                let protos = field(&v, "prototypes")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'prototypes' must be an array"))?;
                let prototypes = protos
                    .iter()
                    .map(|p| {
                        p.as_u64_array()
                            .ok_or_else(|| wire_err("each prototype must be an array of integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                RequestBody::LoadModel {
                    precision: precision_field(&v)?,
                    prototypes,
                }
            }
            "classify" => RequestBody::Classify {
                x: words_field(&v, "x")?,
            },
            "stats" => RequestBody::Stats,
            "inject_panic" => RequestBody::InjectPanic,
            "shutdown" => RequestBody::Shutdown,
            other => match LaneOp::from_name(other) {
                Some(op) => RequestBody::Lanes {
                    op,
                    precision: precision_field(&v)?,
                    a: words_field(&v, "a")?,
                    b: words_field(&v, "b")?,
                },
                None => return Err(wire_err(format!("unknown op '{other}'"))),
            },
        };
        Ok(Request { id, body })
    }

    /// Serializes the request to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            RequestBody::Ping => push("op", Json::Str("ping".into())),
            RequestBody::Dot { precision, x, w } => {
                push("op", Json::Str("dot".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("x", words_json(x));
                push("w", words_json(w));
            }
            RequestBody::Lanes {
                op,
                precision,
                a,
                b,
            } => {
                push("op", Json::Str(op.name().into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("a", words_json(a));
                push("b", words_json(b));
            }
            RequestBody::LoadModel {
                precision,
                prototypes,
            } => {
                push("op", Json::Str("load_model".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push(
                    "prototypes",
                    Json::Arr(prototypes.iter().map(|p| words_json(p)).collect()),
                );
            }
            RequestBody::Classify { x } => {
                push("op", Json::Str("classify".into()));
                push("x", words_json(x));
            }
            RequestBody::Stats => push("op", Json::Str("stats".into())),
            RequestBody::InjectPanic => push("op", Json::Str("inject_panic".into())),
            RequestBody::Shutdown => push("op", Json::Str("shutdown".into())),
        }
        Json::Obj(fields).to_string()
    }
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn parse(line: &str) -> Result<Response, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let ok = field(&v, "ok")?
            .as_bool()
            .ok_or_else(|| wire_err("field 'ok' must be a bool"))?;
        if !ok {
            let msg = field(&v, "error")?
                .as_str()
                .ok_or_else(|| wire_err("field 'error' must be a string"))?;
            return Ok(Response {
                id,
                body: ResponseBody::Error(msg.to_string()),
            });
        }
        let kind = field(&v, "kind")?
            .as_str()
            .ok_or_else(|| wire_err("field 'kind' must be a string"))?;
        let body = match kind {
            "pong" => ResponseBody::Pong,
            "ok" => ResponseBody::Ok,
            "scalar" => ResponseBody::Scalar(u64_field(&v, "result")?),
            "words" => ResponseBody::Words(words_field(&v, "result")?),
            "class" => ResponseBody::Class(
                u64_field(&v, "result")?
                    .try_into()
                    .map_err(|_| wire_err("class index out of range"))?,
            ),
            "stats" => {
                let r = field(&v, "result")?;
                ResponseBody::Stats(SessionActivity {
                    requests: u64_field(r, "requests")?,
                    errors: u64_field(r, "errors")?,
                    cycles: u64_field(r, "cycles")?,
                    energy_fj: field(r, "energy_fj")?
                        .as_f64()
                        .ok_or_else(|| wire_err("field 'energy_fj' must be a number"))?,
                })
            }
            other => return Err(wire_err(format!("unknown response kind '{other}'"))),
        };
        Ok(Response { id, body })
    }

    /// Serializes the response to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            ResponseBody::Error(msg) => {
                push("ok", Json::Bool(false));
                push("error", Json::Str(msg.clone()));
            }
            body => {
                push("ok", Json::Bool(true));
                let (kind, result) = match body {
                    ResponseBody::Pong => ("pong", None),
                    ResponseBody::Ok => ("ok", None),
                    ResponseBody::Scalar(n) => ("scalar", Some(Json::UInt(*n))),
                    ResponseBody::Words(ws) => ("words", Some(words_json(ws))),
                    ResponseBody::Class(c) => ("class", Some(Json::UInt(*c as u64))),
                    ResponseBody::Stats(s) => (
                        "stats",
                        Some(Json::Obj(vec![
                            ("requests".to_string(), Json::UInt(s.requests)),
                            ("errors".to_string(), Json::UInt(s.errors)),
                            ("cycles".to_string(), Json::UInt(s.cycles)),
                            ("energy_fj".to_string(), Json::Float(s.energy_fj)),
                        ])),
                    ),
                    ResponseBody::Error(_) => unreachable!("handled above"),
                };
                push("kind", Json::Str(kind.into()));
                if let Some(r) = result {
                    push("result", r);
                }
            }
        }
        Json::Obj(fields).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        assert_eq!(Request::peek_id(&line), req.id);
    }

    fn round_trip_response(resp: Response) {
        let line = resp.to_json_line();
        assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request {
            id: 1,
            body: RequestBody::Ping,
        });
        round_trip_request(Request {
            id: 2,
            body: RequestBody::Dot {
                precision: Precision::P8,
                x: vec![1, 2, 3],
                w: vec![4, 5, 6],
            },
        });
        for op in [
            LaneOp::Add,
            LaneOp::Sub,
            LaneOp::Mult,
            LaneOp::Logic(LogicOp::And),
            LaneOp::Logic(LogicOp::Or),
            LaneOp::Logic(LogicOp::Xor),
            LaneOp::Logic(LogicOp::Nand),
            LaneOp::Logic(LogicOp::Nor),
            LaneOp::Logic(LogicOp::Xnor),
        ] {
            round_trip_request(Request {
                id: 3,
                body: RequestBody::Lanes {
                    op,
                    precision: Precision::P4,
                    a: vec![1, 15],
                    b: vec![3, 9],
                },
            });
        }
        round_trip_request(Request {
            id: 4,
            body: RequestBody::LoadModel {
                precision: Precision::P2,
                prototypes: vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]],
            },
        });
        round_trip_request(Request {
            id: 5,
            body: RequestBody::Classify { x: vec![1, 2] },
        });
        round_trip_request(Request {
            id: 6,
            body: RequestBody::Stats,
        });
        round_trip_request(Request {
            id: 7,
            body: RequestBody::InjectPanic,
        });
        round_trip_request(Request {
            id: 8,
            body: RequestBody::Shutdown,
        });
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response {
            id: 1,
            body: ResponseBody::Pong,
        });
        round_trip_response(Response {
            id: 2,
            body: ResponseBody::Scalar(u64::MAX),
        });
        round_trip_response(Response {
            id: 3,
            body: ResponseBody::Words(vec![0, 255, 1 << 40]),
        });
        round_trip_response(Response {
            id: 4,
            body: ResponseBody::Class(3),
        });
        round_trip_response(Response {
            id: 5,
            body: ResponseBody::Ok,
        });
        round_trip_response(Response {
            id: 6,
            body: ResponseBody::Stats(SessionActivity {
                requests: 12,
                errors: 1,
                cycles: 3456,
                energy_fj: 789.25,
            }),
        });
        round_trip_response(Response {
            id: 7,
            body: ResponseBody::Error("no model loaded".into()),
        });
    }

    #[test]
    fn malformed_requests_report_the_problem() {
        for (line, needle) in [
            ("not json", "malformed"),
            ("{\"id\":1}", "op"),
            ("{\"id\":1,\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\"}", "id"),
            ("{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[1]}", "'w'"),
            (
                "{\"id\":1,\"op\":\"add\",\"precision\":3,\"a\":[],\"b\":[]}",
                "precision",
            ),
            (
                "{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[-1],\"w\":[1]}",
                "'x'",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line} -> {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn peek_id_survives_garbage() {
        assert_eq!(Request::peek_id("garbage"), 0);
        assert_eq!(Request::peek_id("{\"id\":42,\"op\":\"frobnicate\"}"), 42);
    }
}
