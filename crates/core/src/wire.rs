//! The line-delimited JSON wire protocol of the compute service.
//!
//! Every request and response is exactly one JSON object on one line. The
//! vocabulary maps directly onto the macro's ISA (the paper's Table I) plus
//! the session-level verbs a multi-client service needs.
//!
//! # Requests
//!
//! | `op` | fields | meaning |
//! |---|---|---|
//! | `ping` | — | liveness probe |
//! | `dot` | `precision`, `x`, `w` | in-memory dot product `Σ x[i]·w[i]` |
//! | `add` / `sub` / `mult` | `precision`, `a`, `b` | lane-wise arithmetic |
//! | `and` / `or` / `xor` / `nand` / `nor` / `xnor` | `precision`, `a`, `b` | lane-wise logic |
//! | `load_model` | `precision`, `prototypes` | store quantized class prototypes in the session |
//! | `classify` | `x` | nearest-prototype class of a quantized sample |
//! | `exec_program` | `instrs` | run a whole [`Program`](crate::prog::Program) in one round trip |
//! | `store_program` | `instrs`, `name?` | validate + compile once into the session's stored-program registry |
//! | `run_stored` | `pid`\|`name`, `inputs?` | run a stored program, optionally binding fresh write values |
//! | `list_programs` | — | the session's stored-program registry with per-entry run history |
//! | `delete_program` | `pid`\|`name` | drop one stored program from the registry |
//! | `lint_program` | `instrs` | static analysis only: answer the program's [`Diagnostic`]s without executing |
//! | `open_session` | — | mint a durable session keyed by an unguessable token |
//! | `resume_session` | `token` | re-attach a later connection to a durable session |
//! | `stats` | — | the session's activity account so far |
//! | `inject_panic` | — | fault injection (only if the server enables it) |
//! | `shutdown` | — | ask the server to drain and stop |
//!
//! `precision` is the lane width in bits (2/4/8/16/32); vectors are arrays
//! of non-negative integers that must fit the precision (`mult` operands
//! occupy `2P`-bit product lanes and results may use all 64 bits at P32).
//! Every request carries a client-chosen `id` echoed in its response.
//!
//! An `exec_program` request carries one JSON object per instruction, each
//! tagged with its name under `"i"` and naming virtual row registers by
//! index (see [`crate::prog`]):
//!
//! ```text
//! {"i":"write","dst":0,"precision":8,"values":[1,2]}
//! {"i":"write_mult","dst":1,"precision":8,"values":[3,4]}
//! {"i":"read","src":0,"precision":8,"n":2}
//! {"i":"read_products","src":2,"precision":8,"n":2}
//! {"i":"and","a":0,"b":1,"dst":2}          (or/xor/nand/nor/xnor)
//! {"i":"not","src":0,"dst":1}              (copy likewise)
//! {"i":"shl","src":0,"dst":1,"precision":8}
//! {"i":"add","a":0,"b":1,"dst":2,"precision":8}   (sub/add_shift/mult likewise)
//! {"i":"reduce_add","srcs":[0,1,2],"dst":3,"precision":8}
//! ```
//!
//! # Responses
//!
//! `{"id":N,"ok":true,"kind":K,"result":…}` on success, with `kind` one of
//! `pong`, `scalar`, `words`, `class`, `ok`, `stats`, `program`, `stored`,
//! `diagnostics`, `session`, `programs`; `{"id":N,"ok":false,"error":"…"}`
//! on failure. A
//! response's `id` matches its request; per connection, responses arrive
//! in request order.
//!
//! A failure may carry a machine-readable class beyond the human-readable
//! `error` string ([`ErrorBody`]): `"kind"` is one of `limit_exceeded`
//! (plus `"limit"` naming which per-session limit — `cycle_rate`,
//! `energy_rate`, `inflight`, `program_length`, `stored_programs`),
//! `overloaded` (the server is shedding load), `deadline_exceeded`
//! (the request's `timeout_ms` expired in queue or mid-execution),
//! `invalid_program` (a submitted instruction stream failed validation;
//! `"code"` carries the stable [`ProgError`] code such as `E002` and
//! `"index"` the offending instruction's position when one is known),
//! `session_expired` (the presented session token was valid once but its
//! session has been garbage-collected past the server's TTL), or
//! `bad_token` (the presented token never named a session here — forged,
//! truncated, or from another server). `limit_exceeded` and `overloaded`
//! errors may add `"retry_after_ms"`, a hint for how long to back off
//! before retrying. A failure without a `"kind"` field is a generic
//! request error (bad argument, ISA error, unknown stored id, …) —
//! retrying it unchanged will fail again.
//!
//! Any request may carry an optional `timeout_ms` field: a deadline,
//! relative to the server reading the line, after which the server may
//! answer `deadline_exceeded` instead of executing.
//!
//! # Sessions, tokens and idempotent retries
//!
//! By default a connection is an *ephemeral* session: its state dies with
//! the socket. `open_session` upgrades it to a durable one, answering
//! `{"kind":"session","result":{"token":T,…}}` with an unguessable token.
//! After a disconnect, a new connection presents the token via
//! `resume_session` and gets the whole session back — model, stored
//! programs, accounting totals, in-window rate budgets. At most one
//! connection is attached to a token at a time; a second `resume_session`
//! of a live token is refused (generic error with a `retry_after_ms`
//! hint) until the holder detaches. Detached sessions linger for the
//! server's TTL, then are swept; resuming after that answers
//! `session_expired`, while a token the server never minted answers
//! `bad_token`.
//!
//! Requests on a durable session may carry a `seq` field — a strictly
//! increasing per-session sequence number. The server remembers the last
//! `seq` it executed (plus a bounded window of recent responses), so a
//! client that resends a request after a mid-request drop gets the
//! original response replayed instead of a second execution: seq-stamped
//! ops are retry-safe end to end, never double-executed or double-billed.
//!
//! A `program` result reports the outputs of the program's read
//! instructions plus exact per-instruction accounting:
//! `{"outputs":[[…]…],"cycles":[…],"energy_fj":[…]}` (one `cycles` /
//! `energy_fj` entry per submitted instruction; an instruction fused away
//! by the lowering pass bills 0).
//!
//! A `store_program` request validates, lowers and compiles its
//! instruction stream **once** against the server's macro configuration
//! and answers `{"kind":"stored","result":{"pid":P,"cycles":C,"writes":W}}`
//! with a session-local id. When the linter has something to say the
//! result adds a `"diagnostics"` array (one
//! `{"code","severity","start","end","message"}` object per finding, see
//! [`Diagnostic`]); a `lint_program` request answers the same array under
//! `{"kind":"diagnostics","result":[…]}` without storing or executing
//! anything. Subsequent `run_stored` requests
//! (`{"op":"run_stored","pid":P,"inputs":[[…],null,…]}`) skip parsing the
//! instruction stream, validation and lowering entirely and answer with
//! the same `program` result shape; `inputs` optionally rebinds the
//! program's write values — one entry per `write`/`write_mult` in
//! submitted order, `null` keeping the stored values, each bound vector
//! exactly as long as the stored one. Stored ids are private to their
//! session; on an ephemeral session they die with the connection, on a
//! durable one they survive reconnects until deleted or the session is
//! swept.
//!
//! `store_program` may also carry a `"name"`: a session-unique registry
//! name under which `run_stored` and `delete_program` can address the
//! entry instead of by pid. `list_programs` answers the registry under
//! `{"kind":"programs","result":[…]}`, one object per entry with its
//! compile-time facts plus run history: `{"pid","name"?,"cycles",
//! "writes","runs","errors","total_cycles","total_energy_fj",
//! "last_status"?,"last_error"?}` (`last_status` is `"success"` or
//! `"error"`, absent until the first run).
//!
//! # Examples
//!
//! ```
//! use bpimc_core::wire::{Request, RequestBody, Response, ResponseBody};
//! use bpimc_core::Precision;
//!
//! let req = Request {
//!     id: 7,
//!     timeout_ms: None,
//!     seq: None,
//!     body: RequestBody::Dot {
//!         precision: Precision::P8,
//!         x: vec![1, 2, 3],
//!         w: vec![4, 5, 6],
//!     },
//! };
//! let line = req.to_json_line();
//! assert_eq!(Request::parse(&line).unwrap(), req);
//!
//! let resp = Response {
//!     id: 7,
//!     body: ResponseBody::Scalar(32),
//! };
//! assert_eq!(Response::parse(&resp.to_json_line()).unwrap(), resp);
//! ```

use crate::activity::SessionActivity;
use crate::json::Json;
use crate::prog::analysis::{Diagnostic, Severity};
use crate::prog::{Instr, ProgError, Reg};
use bpimc_periph::{LogicOp, Precision};
use std::fmt;

/// Lane-wise operations addressable over the wire (a subset of the ISA's
/// [`OpKind`](crate::OpKind) that takes two packed operand vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOp {
    /// Lane-wise addition (wrapping at the lane width).
    Add,
    /// Lane-wise subtraction (two's complement, wrapping).
    Sub,
    /// Lane-wise multiplication into `2P`-bit product lanes.
    Mult,
    /// Lane-wise bitwise logic.
    Logic(LogicOp),
}

impl LaneOp {
    /// The wire name of this op.
    pub fn name(&self) -> &'static str {
        match self {
            LaneOp::Add => "add",
            LaneOp::Sub => "sub",
            LaneOp::Mult => "mult",
            LaneOp::Logic(LogicOp::And) => "and",
            LaneOp::Logic(LogicOp::Or) => "or",
            LaneOp::Logic(LogicOp::Xor) => "xor",
            LaneOp::Logic(LogicOp::Nand) => "nand",
            LaneOp::Logic(LogicOp::Nor) => "nor",
            LaneOp::Logic(LogicOp::Xnor) => "xnor",
        }
    }

    /// The op for a wire name, if any.
    pub fn from_name(name: &str) -> Option<LaneOp> {
        Some(match name {
            "add" => LaneOp::Add,
            "sub" => LaneOp::Sub,
            "mult" => LaneOp::Mult,
            "and" => LaneOp::Logic(LogicOp::And),
            "or" => LaneOp::Logic(LogicOp::Or),
            "xor" => LaneOp::Logic(LogicOp::Xor),
            "nand" => LaneOp::Logic(LogicOp::Nand),
            "nor" => LaneOp::Logic(LogicOp::Nor),
            "xnor" => LaneOp::Logic(LogicOp::Xnor),
            _ => return None,
        })
    }
}

/// How `run_stored` / `delete_program` address a stored program: by the
/// session-local id `store_program` returned, or by the registry name it
/// was stored under. On the wire exactly one of `"pid"` / `"name"` is
/// present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredTarget {
    /// The id `store_program` returned.
    Pid(u64),
    /// The registry name the program was stored under.
    Name(String),
}

impl fmt::Display for StoredTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoredTarget::Pid(pid) => write!(f, "stored program {pid}"),
            StoredTarget::Name(name) => write!(f, "stored program '{name}'"),
        }
    }
}

/// What a request asks the service to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// In-memory dot product of two equal-length quantized vectors.
    Dot {
        /// Lane width of the operands.
        precision: Precision,
        /// First vector.
        x: Vec<u64>,
        /// Second vector.
        w: Vec<u64>,
    },
    /// A lane-wise two-operand op over packed vectors.
    Lanes {
        /// Which op.
        op: LaneOp,
        /// Lane width.
        precision: Precision,
        /// First operand vector.
        a: Vec<u64>,
        /// Second operand vector.
        b: Vec<u64>,
    },
    /// Stores quantized class prototypes in the session for `classify`.
    LoadModel {
        /// Lane width the prototypes are quantized to.
        precision: Precision,
        /// One quantized weight vector per class.
        prototypes: Vec<Vec<u64>>,
    },
    /// Classifies one quantized sample against the session's model.
    Classify {
        /// The quantized sample.
        x: Vec<u64>,
    },
    /// Runs a whole typed instruction stream ([`crate::prog::Program`])
    /// in one round trip.
    ExecProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
    },
    /// Validates and compiles a program into the session's stored-program
    /// registry — the validate-once half of the stored-program fast path.
    StoreProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
        /// Optional session-unique registry name; `run_stored` and
        /// `delete_program` can then address the entry by name.
        name: Option<String>,
    },
    /// Runs a stored program by id or registry name, optionally binding
    /// fresh values to its `write`/`write_mult` instructions.
    RunStored {
        /// Which stored program to run.
        target: StoredTarget,
        /// One entry per write instruction in submitted order (`None` /
        /// JSON `null` keeps the stored values); empty runs all-stored.
        inputs: Vec<Option<Vec<u64>>>,
    },
    /// Lists the session's stored-program registry, one [`ProgramEntry`]
    /// per stored program with compile-time facts and run history.
    ListPrograms,
    /// Deletes one stored program from the session's registry.
    DeleteProgram {
        /// Which stored program to delete.
        target: StoredTarget,
    },
    /// Mints a durable session keyed by an unguessable token; the reply
    /// is `kind:"session"` carrying the token to present on resume.
    OpenSession,
    /// Re-attaches this connection to the durable session a token names,
    /// restoring its model, stored programs, accounting and rate budgets.
    ResumeSession {
        /// The token `open_session` returned.
        token: String,
    },
    /// Statically analyzes a program — validation plus lint — and answers
    /// its diagnostics without storing or executing anything.
    LintProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
    },
    /// The session's activity account (state *before* this request).
    Stats,
    /// Deliberately panics the executing job (fault injection; the server
    /// only honours it when started with fault injection enabled).
    InjectPanic,
    /// Asks the server to finish queued work and shut down.
    Shutdown,
}

/// One request: a client-chosen id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// Optional deadline, milliseconds from the server reading the line.
    /// Past it the server may answer `deadline_exceeded` instead of
    /// executing.
    pub timeout_ms: Option<u64>,
    /// Optional per-session sequence number (strictly increasing). On a
    /// durable session the server executes each `seq` at most once and
    /// replays the recorded response for a resent one, making the request
    /// retry-safe across reconnects. Ignored on ephemeral sessions.
    pub seq: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// What a successful request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `ping` reply.
    Pong,
    /// A scalar result (`dot`).
    Scalar(u64),
    /// A vector result (lane-wise ops).
    Words(Vec<u64>),
    /// A predicted class index (`classify`).
    Class(usize),
    /// Acknowledgement with no payload (`load_model`, `shutdown`).
    Ok,
    /// The session's account (`stats`).
    Stats(SessionActivity),
    /// An executed program's outputs and per-instruction accounting
    /// (`exec_program`).
    Program(ProgramReport),
    /// A stored program's id and compile-time facts (`store_program`).
    Stored(StoredMeta),
    /// A linted program's findings (`lint_program`).
    Diagnostics(Vec<Diagnostic>),
    /// A durable session's token and restored state facts
    /// (`open_session`, `resume_session`).
    Session(SessionInfo),
    /// The session's stored-program registry (`list_programs`).
    Programs(Vec<ProgramEntry>),
    /// The request failed; message plus optional machine-readable class.
    Error(ErrorBody),
}

/// What `open_session` / `resume_session` return: the durable session's
/// token plus a snapshot of the state the token now commands.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// The unguessable token that names the session; present it via
    /// `resume_session` on a later connection to get the session back.
    pub token: String,
    /// The session's accounting totals at this moment — fresh zeros from
    /// `open_session`, the restored account from `resume_session`.
    pub stats: SessionActivity,
    /// How many compiled programs the session's registry holds.
    pub stored_programs: u64,
    /// The highest request `seq` the session has executed, if any — a
    /// resuming client continues its idempotency sequence from the next
    /// value.
    pub last_seq: Option<u64>,
}

/// Outcome of a stored program's most recent run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// The last run completed and was billed.
    Success,
    /// The last run failed; the message says why.
    Error {
        /// The error message of the failed run.
        message: String,
    },
}

impl RunStatus {
    /// Whether the last run succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, RunStatus::Success)
    }
}

/// One stored program in the session's registry (`list_programs`):
/// compile-time facts plus cumulative run history.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramEntry {
    /// Session-local stored-program id.
    pub pid: u64,
    /// Registry name, when the program was stored with one.
    pub name: Option<String>,
    /// Predicted hardware cycles of one run (the static cost model).
    pub cycles: u64,
    /// Input slots a `run_stored` binding covers.
    pub writes: u64,
    /// Completed `run_stored` executions of this entry.
    pub runs: u64,
    /// Failed `run_stored` attempts at this entry.
    pub errors: u64,
    /// Hardware cycles billed across every run of this entry.
    pub total_cycles: u64,
    /// Energy billed across every run of this entry, femtojoules.
    pub total_energy_fj: f64,
    /// Outcome of the most recent run (`None` until the first).
    pub last_status: Option<RunStatus>,
}

/// Machine-readable class of a failed request.
///
/// `Generic` failures (bad argument, ISA error, unknown stored id, …)
/// carry no `"kind"` field on the wire; retrying them unchanged fails
/// again. The other kinds are transient conditions a client can react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// A request error with no more specific class.
    #[default]
    Generic,
    /// A per-session limit was exceeded; [`ErrorBody::limit`] says which
    /// and [`ErrorBody::retry_after_ms`] hints when the budget refills.
    LimitExceeded,
    /// The server is shedding load; back off and retry.
    Overloaded,
    /// The request's `timeout_ms` expired in queue or mid-execution.
    DeadlineExceeded,
    /// A submitted instruction stream failed validation;
    /// [`ErrorBody::code`] carries the stable [`ProgError`] code and
    /// [`ErrorBody::index`] the offending instruction when known.
    InvalidProgram,
    /// The presented token once named a session, but it sat detached past
    /// the server's TTL and was garbage-collected. The state is gone;
    /// open a fresh session.
    SessionExpired,
    /// The presented token never named a session on this server —
    /// forged, truncated, or minted elsewhere.
    BadToken,
}

impl ErrorKind {
    /// The wire name of this kind (`None` for `Generic`, which is encoded
    /// by omitting the field).
    pub fn name(&self) -> Option<&'static str> {
        match self {
            ErrorKind::Generic => None,
            ErrorKind::LimitExceeded => Some("limit_exceeded"),
            ErrorKind::Overloaded => Some("overloaded"),
            ErrorKind::DeadlineExceeded => Some("deadline_exceeded"),
            ErrorKind::InvalidProgram => Some("invalid_program"),
            ErrorKind::SessionExpired => Some("session_expired"),
            ErrorKind::BadToken => Some("bad_token"),
        }
    }

    /// The kind for a wire name, if any.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "limit_exceeded" => ErrorKind::LimitExceeded,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "invalid_program" => ErrorKind::InvalidProgram,
            "session_expired" => ErrorKind::SessionExpired,
            "bad_token" => ErrorKind::BadToken,
            _ => return None,
        })
    }
}

/// Which per-session limit a `limit_exceeded` error tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// The session's hardware-cycles-per-second budget.
    CycleRate,
    /// The session's energy-per-second budget.
    EnergyRate,
    /// Too many requests in flight on the connection at once.
    Inflight,
    /// A submitted program has more instructions than allowed.
    ProgramLength,
    /// The session's stored-program cache is full.
    StoredPrograms,
    /// The server's durable-session registry is full.
    Sessions,
    /// The server-wide cap on stored programs across every durable
    /// session (orphans included) is full.
    RegistryPrograms,
}

impl LimitKind {
    /// The wire name of this limit.
    pub fn name(&self) -> &'static str {
        match self {
            LimitKind::CycleRate => "cycle_rate",
            LimitKind::EnergyRate => "energy_rate",
            LimitKind::Inflight => "inflight",
            LimitKind::ProgramLength => "program_length",
            LimitKind::StoredPrograms => "stored_programs",
            LimitKind::Sessions => "sessions",
            LimitKind::RegistryPrograms => "registry_programs",
        }
    }

    /// The limit for a wire name, if any.
    pub fn from_name(name: &str) -> Option<LimitKind> {
        Some(match name {
            "cycle_rate" => LimitKind::CycleRate,
            "energy_rate" => LimitKind::EnergyRate,
            "inflight" => LimitKind::Inflight,
            "program_length" => LimitKind::ProgramLength,
            "stored_programs" => LimitKind::StoredPrograms,
            "sessions" => LimitKind::Sessions,
            "registry_programs" => LimitKind::RegistryPrograms,
            _ => return None,
        })
    }
}

/// A failed request: human-readable message plus optional machine class.
///
/// On the wire: `{"id":N,"ok":false,"error":MSG}` with `"kind"`,
/// `"limit"`, `"retry_after_ms"`, `"code"` and `"index"` added only when
/// set.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Machine-readable class (`Generic` is encoded by omission).
    pub kind: ErrorKind,
    /// Which limit tripped, for `LimitExceeded` errors.
    pub limit: Option<LimitKind>,
    /// Back-off hint in milliseconds, for transient errors.
    pub retry_after_ms: Option<u64>,
    /// Stable [`ProgError`] code (`E001`…), for `InvalidProgram` errors.
    pub code: Option<String>,
    /// Offending instruction index, for `InvalidProgram` errors that
    /// implicate one instruction.
    pub index: Option<u64>,
    /// Human-readable reason.
    pub message: String,
}

impl ErrorBody {
    /// A plain request error with no machine-readable class.
    pub fn generic(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::Generic,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `limit_exceeded` error naming the limit that tripped.
    pub fn limit(
        limit: LimitKind,
        retry_after_ms: Option<u64>,
        message: impl Into<String>,
    ) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::LimitExceeded,
            limit: Some(limit),
            retry_after_ms,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// An `overloaded` shed with a back-off hint.
    pub fn overloaded(retry_after_ms: Option<u64>, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::Overloaded,
            limit: None,
            retry_after_ms,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `deadline_exceeded` error.
    pub fn deadline(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::DeadlineExceeded,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `session_expired` error: the token was real but its session sat
    /// detached past the TTL and was garbage-collected.
    pub fn session_expired(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::SessionExpired,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `bad_token` error: the token never named a session here.
    pub fn bad_token(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::BadToken,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// An `invalid_program` error carrying the stable [`ProgError`] code
    /// and, when one instruction is implicated, its index.
    pub fn invalid_program(
        code: impl Into<String>,
        index: Option<u64>,
        message: impl Into<String>,
    ) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::InvalidProgram,
            limit: None,
            retry_after_ms: None,
            code: Some(code.into()),
            index,
            message: message.into(),
        }
    }
}

impl From<&ProgError> for ErrorBody {
    fn from(e: &ProgError) -> ErrorBody {
        ErrorBody::invalid_program(e.code(), e.instr().map(|i| i as u64), e.to_string())
    }
}

impl From<String> for ErrorBody {
    fn from(message: String) -> ErrorBody {
        ErrorBody::generic(message)
    }
}

impl From<&str> for ErrorBody {
    fn from(message: &str) -> ErrorBody {
        ErrorBody::generic(message)
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// What `store_program` returns: the session-local id to pass to
/// `run_stored`, plus the compiled program's static facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMeta {
    /// Session-local stored-program id.
    pub pid: u64,
    /// Predicted hardware cycles of one run (the static cost model).
    pub cycles: u64,
    /// `write`/`write_mult` instructions — the input slots a `run_stored`
    /// binding covers, in submitted order.
    pub writes: u64,
    /// Lint findings for the submitted stream (empty when the linter is
    /// silent; omitted from the wire encoding then).
    pub diagnostics: Vec<Diagnostic>,
}

/// One response, tagged with the request's id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// Result or error.
    pub body: ResponseBody,
}

/// What `exec_program` returns: read outputs plus exact per-instruction
/// accounting, aligned with the submitted instruction list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramReport {
    /// One vector per `read`/`read_products` instruction, in order.
    pub outputs: Vec<Vec<u64>>,
    /// Hardware cycles billed to each submitted instruction (an
    /// instruction fused away by the lowering pass bills 0).
    pub cycles: Vec<u64>,
    /// Energy billed to each submitted instruction, femtojoules.
    pub energy_fj: Vec<f64>,
}

impl ProgramReport {
    /// Total hardware cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total energy of the run, femtojoules.
    pub fn total_energy_fj(&self) -> f64 {
        self.energy_fj.iter().sum()
    }
}

/// A malformed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed message: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| wire_err(format!("missing field '{key}'")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field '{key}' must be a non-negative integer")))
}

fn words_field(v: &Json, key: &str) -> Result<Vec<u64>, WireError> {
    field(v, key)?
        .as_u64_array()
        .ok_or_else(|| wire_err(format!("field '{key}' must be an array of integers")))
}

fn precision_field(v: &Json) -> Result<Precision, WireError> {
    let bits = u64_field(v, "precision")?;
    Precision::try_from_bits(bits as usize)
        .map_err(|_| wire_err(format!("unsupported precision {bits} (use 2/4/8/16/32)")))
}

fn words_json(words: &[u64]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::UInt(w)).collect())
}

fn reg_field(v: &Json, key: &str) -> Result<Reg, WireError> {
    let n = u64_field(v, key)?;
    u16::try_from(n)
        .map(Reg)
        .map_err(|_| wire_err(format!("register '{key}' out of range")))
}

fn regs_field(v: &Json, key: &str) -> Result<Vec<Reg>, WireError> {
    words_field(v, key)?
        .into_iter()
        .map(|n| {
            u16::try_from(n)
                .map(Reg)
                .map_err(|_| wire_err(format!("register in '{key}' out of range")))
        })
        .collect()
}

fn usize_field(v: &Json, key: &str) -> Result<usize, WireError> {
    usize::try_from(u64_field(v, key)?).map_err(|_| wire_err(format!("field '{key}' out of range")))
}

fn reg_json(r: Reg) -> Json {
    Json::UInt(r.0 as u64)
}

/// Serializes one program instruction to its wire object (see the module
/// docs for the vocabulary). Public so the server's persistence layer can
/// journal submitted instruction streams in the exact wire vocabulary —
/// one representation, one parser, whether a program arrives over TCP or
/// out of a recovery journal.
pub fn instr_to_json(instr: &Instr) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match instr {
        Instr::Write {
            dst,
            precision,
            values,
        }
        | Instr::WriteMult {
            dst,
            precision,
            values,
        } => {
            push("i", Json::Str(instr.name().into()));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
            push("values", words_json(values));
        }
        Instr::Read { src, precision, n } | Instr::ReadProducts { src, precision, n } => {
            push("i", Json::Str(instr.name().into()));
            push("src", reg_json(*src));
            push("precision", Json::UInt(precision.bits() as u64));
            push("n", Json::UInt(*n as u64));
        }
        Instr::Logic { a, b, dst, .. } => {
            push("i", Json::Str(instr.name().into()));
            push("a", reg_json(*a));
            push("b", reg_json(*b));
            push("dst", reg_json(*dst));
        }
        Instr::Not { src, dst } | Instr::Copy { src, dst } => {
            push("i", Json::Str(instr.name().into()));
            push("src", reg_json(*src));
            push("dst", reg_json(*dst));
        }
        Instr::Shl {
            src,
            dst,
            precision,
        } => {
            push("i", Json::Str("shl".into()));
            push("src", reg_json(*src));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
        Instr::Add {
            a,
            b,
            dst,
            precision,
        }
        | Instr::AddShift {
            a,
            b,
            dst,
            precision,
        }
        | Instr::Sub {
            a,
            b,
            dst,
            precision,
        }
        | Instr::Mult {
            a,
            b,
            dst,
            precision,
        } => {
            push("i", Json::Str(instr.name().into()));
            push("a", reg_json(*a));
            push("b", reg_json(*b));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
        Instr::ReduceAdd {
            srcs,
            dst,
            precision,
        } => {
            push("i", Json::Str("reduce_add".into()));
            push(
                "srcs",
                Json::Arr(srcs.iter().map(|&r| reg_json(r)).collect()),
            );
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
    }
    Json::Obj(fields)
}

/// Parses one program instruction from its wire object — the inverse of
/// [`instr_to_json`], shared by the request parser and the server's
/// recovery path.
///
/// # Errors
///
/// Returns a [`WireError`] naming the missing or malformed field.
pub fn instr_from_json(v: &Json) -> Result<Instr, WireError> {
    let name = field(v, "i")?
        .as_str()
        .ok_or_else(|| wire_err("instruction field 'i' must be a string"))?;
    Ok(match name {
        "write" => Instr::Write {
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
            values: words_field(v, "values")?,
        },
        "write_mult" => Instr::WriteMult {
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
            values: words_field(v, "values")?,
        },
        "read" => Instr::Read {
            src: reg_field(v, "src")?,
            precision: precision_field(v)?,
            n: usize_field(v, "n")?,
        },
        "read_products" => Instr::ReadProducts {
            src: reg_field(v, "src")?,
            precision: precision_field(v)?,
            n: usize_field(v, "n")?,
        },
        "not" => Instr::Not {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
        },
        "copy" => Instr::Copy {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
        },
        "shl" => Instr::Shl {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "add" => Instr::Add {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "add_shift" => Instr::AddShift {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "sub" => Instr::Sub {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "mult" => Instr::Mult {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "reduce_add" => Instr::ReduceAdd {
            srcs: regs_field(v, "srcs")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        other => match LaneOp::from_name(other) {
            Some(LaneOp::Logic(op)) => Instr::Logic {
                op,
                a: reg_field(v, "a")?,
                b: reg_field(v, "b")?,
                dst: reg_field(v, "dst")?,
            },
            _ => return Err(wire_err(format!("unknown instruction '{other}'"))),
        },
    })
}

/// Parses the `pid`-or-`name` address shared by `run_stored` and
/// `delete_program` (exactly one must be present).
fn stored_target_field(v: &Json) -> Result<StoredTarget, WireError> {
    match (v.get("pid"), v.get("name")) {
        (Some(p), None) => p
            .as_u64()
            .map(StoredTarget::Pid)
            .ok_or_else(|| wire_err("field 'pid' must be a non-negative integer")),
        (None, Some(n)) => n
            .as_str()
            .map(|s| StoredTarget::Name(s.to_string()))
            .ok_or_else(|| wire_err("field 'name' must be a string")),
        _ => Err(wire_err(
            "exactly one of 'pid' or 'name' must address the stored program",
        )),
    }
}

fn stored_target_json(target: &StoredTarget, push: &mut impl FnMut(&str, Json)) {
    match target {
        StoredTarget::Pid(pid) => push("pid", Json::UInt(*pid)),
        StoredTarget::Name(name) => push("name", Json::Str(name.clone())),
    }
}

/// Parses the `instrs` array shared by `exec_program`, `store_program`
/// and `lint_program`.
fn instrs_field(v: &Json) -> Result<Vec<Instr>, WireError> {
    field(v, "instrs")?
        .as_array()
        .ok_or_else(|| wire_err("field 'instrs' must be an array"))?
        .iter()
        .map(instr_from_json)
        .collect()
}

/// Serializes one lint diagnostic to its wire object.
fn diag_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Str(d.code.clone())),
        ("severity".to_string(), Json::Str(d.severity.name().into())),
        ("start".to_string(), Json::UInt(d.span.start as u64)),
        ("end".to_string(), Json::UInt(d.span.end as u64)),
        ("message".to_string(), Json::Str(d.message.clone())),
    ])
}

/// Parses one lint diagnostic from its wire object.
fn diag_from_json(v: &Json) -> Result<Diagnostic, WireError> {
    let severity = field(v, "severity")?
        .as_str()
        .and_then(Severity::from_name)
        .ok_or_else(|| wire_err("diagnostic field 'severity' must be error/warn/perf"))?;
    Ok(Diagnostic {
        code: field(v, "code")?
            .as_str()
            .ok_or_else(|| wire_err("diagnostic field 'code' must be a string"))?
            .to_string(),
        severity,
        span: usize_field(v, "start")?..usize_field(v, "end")?,
        message: field(v, "message")?
            .as_str()
            .ok_or_else(|| wire_err("diagnostic field 'message' must be a string"))?
            .to_string(),
    })
}

fn diags_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(diags.iter().map(diag_to_json).collect())
}

fn diags_from_json(v: &Json, what: &str) -> Result<Vec<Diagnostic>, WireError> {
    v.as_array()
        .ok_or_else(|| wire_err(format!("{what} must be an array")))?
        .iter()
        .map(diag_from_json)
        .collect()
}

/// Parses the flat `requests`/`errors`/`cycles`/`energy_fj` account shape
/// shared by `stats` and `session` results.
fn activity_from_json(r: &Json) -> Result<SessionActivity, WireError> {
    Ok(SessionActivity {
        requests: u64_field(r, "requests")?,
        errors: u64_field(r, "errors")?,
        cycles: u64_field(r, "cycles")?,
        energy_fj: field(r, "energy_fj")?
            .as_f64()
            .ok_or_else(|| wire_err("field 'energy_fj' must be a number"))?,
    })
}

fn activity_json_fields(s: &SessionActivity, fields: &mut Vec<(String, Json)>) {
    fields.push(("requests".to_string(), Json::UInt(s.requests)));
    fields.push(("errors".to_string(), Json::UInt(s.errors)));
    fields.push(("cycles".to_string(), Json::UInt(s.cycles)));
    fields.push(("energy_fj".to_string(), Json::Float(s.energy_fj)));
}

/// Serializes one registry entry to its wire object.
fn program_entry_to_json(e: &ProgramEntry) -> Json {
    let mut fields = vec![("pid".to_string(), Json::UInt(e.pid))];
    if let Some(name) = &e.name {
        fields.push(("name".to_string(), Json::Str(name.clone())));
    }
    fields.push(("cycles".to_string(), Json::UInt(e.cycles)));
    fields.push(("writes".to_string(), Json::UInt(e.writes)));
    fields.push(("runs".to_string(), Json::UInt(e.runs)));
    fields.push(("errors".to_string(), Json::UInt(e.errors)));
    fields.push(("total_cycles".to_string(), Json::UInt(e.total_cycles)));
    fields.push((
        "total_energy_fj".to_string(),
        Json::Float(e.total_energy_fj),
    ));
    match &e.last_status {
        None => {}
        Some(RunStatus::Success) => {
            fields.push(("last_status".to_string(), Json::Str("success".into())));
        }
        Some(RunStatus::Error { message }) => {
            fields.push(("last_status".to_string(), Json::Str("error".into())));
            fields.push(("last_error".to_string(), Json::Str(message.clone())));
        }
    }
    Json::Obj(fields)
}

/// Parses one registry entry from its wire object.
fn program_entry_from_json(v: &Json) -> Result<ProgramEntry, WireError> {
    let last_status = match v.get("last_status") {
        None | Some(Json::Null) => None,
        Some(s) => match s.as_str() {
            Some("success") => Some(RunStatus::Success),
            Some("error") => Some(RunStatus::Error {
                message: v
                    .get("last_error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            _ => return Err(wire_err("field 'last_status' must be success or error")),
        },
    };
    Ok(ProgramEntry {
        pid: u64_field(v, "pid")?,
        name: v.get("name").and_then(Json::as_str).map(|s| s.to_string()),
        cycles: u64_field(v, "cycles")?,
        writes: u64_field(v, "writes")?,
        runs: u64_field(v, "runs")?,
        errors: u64_field(v, "errors")?,
        total_cycles: u64_field(v, "total_cycles")?,
        total_energy_fj: field(v, "total_energy_fj")?
            .as_f64()
            .ok_or_else(|| wire_err("field 'total_energy_fj' must be a number"))?,
        last_status,
    })
}

impl Request {
    /// Extracts just the `id` of a line, for error responses to requests
    /// that do not parse fully. Returns `None` when the line has no
    /// readable non-negative integer `id` (bad JSON, missing field, wrong
    /// type) — the server answers such lines with the documented sentinel
    /// id 0, since the protocol has no way to address a reply otherwise.
    pub fn peek_id(line: &str) -> Option<u64> {
        Json::parse(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_u64))
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (bad JSON, missing or
    /// ill-typed field, unknown op).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let timeout_ms = match v.get("timeout_ms") {
            None | Some(Json::Null) => None,
            Some(t) => Some(
                t.as_u64()
                    .ok_or_else(|| wire_err("field 'timeout_ms' must be a non-negative integer"))?,
            ),
        };
        let seq = match v.get("seq") {
            None | Some(Json::Null) => None,
            Some(s) => Some(
                s.as_u64()
                    .ok_or_else(|| wire_err("field 'seq' must be a non-negative integer"))?,
            ),
        };
        let op = field(&v, "op")?
            .as_str()
            .ok_or_else(|| wire_err("field 'op' must be a string"))?;
        let body = match op {
            "ping" => RequestBody::Ping,
            "dot" => RequestBody::Dot {
                precision: precision_field(&v)?,
                x: words_field(&v, "x")?,
                w: words_field(&v, "w")?,
            },
            "load_model" => {
                let protos = field(&v, "prototypes")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'prototypes' must be an array"))?;
                let prototypes = protos
                    .iter()
                    .map(|p| {
                        p.as_u64_array()
                            .ok_or_else(|| wire_err("each prototype must be an array of integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                RequestBody::LoadModel {
                    precision: precision_field(&v)?,
                    prototypes,
                }
            }
            "classify" => RequestBody::Classify {
                x: words_field(&v, "x")?,
            },
            "exec_program" => RequestBody::ExecProgram {
                instrs: instrs_field(&v)?,
            },
            "store_program" => RequestBody::StoreProgram {
                instrs: instrs_field(&v)?,
                name: match v.get("name") {
                    None | Some(Json::Null) => None,
                    Some(n) => Some(
                        n.as_str()
                            .ok_or_else(|| wire_err("field 'name' must be a string"))?
                            .to_string(),
                    ),
                },
            },
            "lint_program" => RequestBody::LintProgram {
                instrs: instrs_field(&v)?,
            },
            "run_stored" => {
                let inputs = match v.get("inputs") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(arr) => arr
                        .as_array()
                        .ok_or_else(|| wire_err("field 'inputs' must be an array"))?
                        .iter()
                        .map(|e| match e {
                            Json::Null => Ok(None),
                            other => other.as_u64_array().map(Some).ok_or_else(|| {
                                wire_err("each input must be an array of integers or null")
                            }),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                RequestBody::RunStored {
                    target: stored_target_field(&v)?,
                    inputs,
                }
            }
            "list_programs" => RequestBody::ListPrograms,
            "delete_program" => RequestBody::DeleteProgram {
                target: stored_target_field(&v)?,
            },
            "open_session" => RequestBody::OpenSession,
            "resume_session" => RequestBody::ResumeSession {
                token: field(&v, "token")?
                    .as_str()
                    .ok_or_else(|| wire_err("field 'token' must be a string"))?
                    .to_string(),
            },
            "stats" => RequestBody::Stats,
            "inject_panic" => RequestBody::InjectPanic,
            "shutdown" => RequestBody::Shutdown,
            other => match LaneOp::from_name(other) {
                Some(op) => RequestBody::Lanes {
                    op,
                    precision: precision_field(&v)?,
                    a: words_field(&v, "a")?,
                    b: words_field(&v, "b")?,
                },
                None => return Err(wire_err(format!("unknown op '{other}'"))),
            },
        };
        Ok(Request {
            id,
            timeout_ms,
            seq,
            body,
        })
    }

    /// Serializes the request to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        if let Some(t) = self.timeout_ms {
            fields.push(("timeout_ms".to_string(), Json::UInt(t)));
        }
        if let Some(s) = self.seq {
            fields.push(("seq".to_string(), Json::UInt(s)));
        }
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            RequestBody::Ping => push("op", Json::Str("ping".into())),
            RequestBody::Dot { precision, x, w } => {
                push("op", Json::Str("dot".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("x", words_json(x));
                push("w", words_json(w));
            }
            RequestBody::Lanes {
                op,
                precision,
                a,
                b,
            } => {
                push("op", Json::Str(op.name().into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("a", words_json(a));
                push("b", words_json(b));
            }
            RequestBody::LoadModel {
                precision,
                prototypes,
            } => {
                push("op", Json::Str("load_model".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push(
                    "prototypes",
                    Json::Arr(prototypes.iter().map(|p| words_json(p)).collect()),
                );
            }
            RequestBody::Classify { x } => {
                push("op", Json::Str("classify".into()));
                push("x", words_json(x));
            }
            RequestBody::ExecProgram { instrs } => {
                push("op", Json::Str("exec_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
            }
            RequestBody::StoreProgram { instrs, name } => {
                push("op", Json::Str("store_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
                if let Some(name) = name {
                    push("name", Json::Str(name.clone()));
                }
            }
            RequestBody::LintProgram { instrs } => {
                push("op", Json::Str("lint_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
            }
            RequestBody::RunStored { target, inputs } => {
                push("op", Json::Str("run_stored".into()));
                stored_target_json(target, &mut push);
                if !inputs.is_empty() {
                    push(
                        "inputs",
                        Json::Arr(
                            inputs
                                .iter()
                                .map(|e| match e {
                                    None => Json::Null,
                                    Some(ws) => words_json(ws),
                                })
                                .collect(),
                        ),
                    );
                }
            }
            RequestBody::ListPrograms => push("op", Json::Str("list_programs".into())),
            RequestBody::DeleteProgram { target } => {
                push("op", Json::Str("delete_program".into()));
                stored_target_json(target, &mut push);
            }
            RequestBody::OpenSession => push("op", Json::Str("open_session".into())),
            RequestBody::ResumeSession { token } => {
                push("op", Json::Str("resume_session".into()));
                push("token", Json::Str(token.clone()));
            }
            RequestBody::Stats => push("op", Json::Str("stats".into())),
            RequestBody::InjectPanic => push("op", Json::Str("inject_panic".into())),
            RequestBody::Shutdown => push("op", Json::Str("shutdown".into())),
        }
        Json::Obj(fields).to_string()
    }
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn parse(line: &str) -> Result<Response, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let ok = field(&v, "ok")?
            .as_bool()
            .ok_or_else(|| wire_err("field 'ok' must be a bool"))?;
        if !ok {
            let msg = field(&v, "error")?
                .as_str()
                .ok_or_else(|| wire_err("field 'error' must be a string"))?;
            // Unknown kinds/limits from a newer server degrade to generic
            // rather than failing the parse.
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_name)
                .unwrap_or_default();
            let limit = v
                .get("limit")
                .and_then(Json::as_str)
                .and_then(LimitKind::from_name);
            let retry_after_ms = v.get("retry_after_ms").and_then(Json::as_u64);
            let code = v.get("code").and_then(Json::as_str).map(|s| s.to_string());
            let index = v.get("index").and_then(Json::as_u64);
            return Ok(Response {
                id,
                body: ResponseBody::Error(ErrorBody {
                    kind,
                    limit,
                    retry_after_ms,
                    code,
                    index,
                    message: msg.to_string(),
                }),
            });
        }
        let kind = field(&v, "kind")?
            .as_str()
            .ok_or_else(|| wire_err("field 'kind' must be a string"))?;
        let body = match kind {
            "pong" => ResponseBody::Pong,
            "ok" => ResponseBody::Ok,
            "scalar" => ResponseBody::Scalar(u64_field(&v, "result")?),
            "words" => ResponseBody::Words(words_field(&v, "result")?),
            "class" => ResponseBody::Class(
                u64_field(&v, "result")?
                    .try_into()
                    .map_err(|_| wire_err("class index out of range"))?,
            ),
            "program" => {
                let r = field(&v, "result")?;
                let outputs = field(r, "outputs")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'outputs' must be an array"))?
                    .iter()
                    .map(|o| {
                        o.as_u64_array()
                            .ok_or_else(|| wire_err("each output must be an array of integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let energy_fj = field(r, "energy_fj")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'energy_fj' must be an array"))?
                    .iter()
                    .map(|e| {
                        e.as_f64()
                            .ok_or_else(|| wire_err("each energy entry must be a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Program(ProgramReport {
                    outputs,
                    cycles: words_field(r, "cycles")?,
                    energy_fj,
                })
            }
            "stored" => {
                let r = field(&v, "result")?;
                ResponseBody::Stored(StoredMeta {
                    pid: u64_field(r, "pid")?,
                    cycles: u64_field(r, "cycles")?,
                    writes: u64_field(r, "writes")?,
                    diagnostics: match r.get("diagnostics") {
                        None | Some(Json::Null) => Vec::new(),
                        Some(d) => diags_from_json(d, "field 'diagnostics'")?,
                    },
                })
            }
            "diagnostics" => {
                ResponseBody::Diagnostics(diags_from_json(field(&v, "result")?, "field 'result'")?)
            }
            "stats" => ResponseBody::Stats(activity_from_json(field(&v, "result")?)?),
            "session" => {
                let r = field(&v, "result")?;
                ResponseBody::Session(SessionInfo {
                    token: field(r, "token")?
                        .as_str()
                        .ok_or_else(|| wire_err("field 'token' must be a string"))?
                        .to_string(),
                    stats: activity_from_json(r)?,
                    stored_programs: u64_field(r, "stored_programs")?,
                    last_seq: match r.get("last_seq") {
                        None | Some(Json::Null) => None,
                        Some(s) => Some(
                            s.as_u64()
                                .ok_or_else(|| wire_err("field 'last_seq' must be a u64"))?,
                        ),
                    },
                })
            }
            "programs" => ResponseBody::Programs(
                field(&v, "result")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'result' must be an array"))?
                    .iter()
                    .map(program_entry_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            other => return Err(wire_err(format!("unknown response kind '{other}'"))),
        };
        Ok(Response { id, body })
    }

    /// Serializes the response to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            ResponseBody::Error(e) => {
                push("ok", Json::Bool(false));
                push("error", Json::Str(e.message.clone()));
                if let Some(kind) = e.kind.name() {
                    push("kind", Json::Str(kind.into()));
                }
                if let Some(limit) = e.limit {
                    push("limit", Json::Str(limit.name().into()));
                }
                if let Some(ms) = e.retry_after_ms {
                    push("retry_after_ms", Json::UInt(ms));
                }
                if let Some(code) = &e.code {
                    push("code", Json::Str(code.clone()));
                }
                if let Some(index) = e.index {
                    push("index", Json::UInt(index));
                }
            }
            body => {
                push("ok", Json::Bool(true));
                let (kind, result) = match body {
                    ResponseBody::Pong => ("pong", None),
                    ResponseBody::Ok => ("ok", None),
                    ResponseBody::Scalar(n) => ("scalar", Some(Json::UInt(*n))),
                    ResponseBody::Words(ws) => ("words", Some(words_json(ws))),
                    ResponseBody::Class(c) => ("class", Some(Json::UInt(*c as u64))),
                    ResponseBody::Program(r) => (
                        "program",
                        Some(Json::Obj(vec![
                            (
                                "outputs".to_string(),
                                Json::Arr(r.outputs.iter().map(|o| words_json(o)).collect()),
                            ),
                            ("cycles".to_string(), words_json(&r.cycles)),
                            (
                                "energy_fj".to_string(),
                                Json::Arr(r.energy_fj.iter().map(|&e| Json::Float(e)).collect()),
                            ),
                        ])),
                    ),
                    ResponseBody::Stored(s) => {
                        let mut fields = vec![
                            ("pid".to_string(), Json::UInt(s.pid)),
                            ("cycles".to_string(), Json::UInt(s.cycles)),
                            ("writes".to_string(), Json::UInt(s.writes)),
                        ];
                        if !s.diagnostics.is_empty() {
                            fields.push(("diagnostics".to_string(), diags_json(&s.diagnostics)));
                        }
                        ("stored", Some(Json::Obj(fields)))
                    }
                    ResponseBody::Diagnostics(ds) => ("diagnostics", Some(diags_json(ds))),
                    ResponseBody::Stats(s) => {
                        let mut fields = Vec::new();
                        activity_json_fields(s, &mut fields);
                        ("stats", Some(Json::Obj(fields)))
                    }
                    ResponseBody::Session(info) => {
                        let mut fields = vec![("token".to_string(), Json::Str(info.token.clone()))];
                        activity_json_fields(&info.stats, &mut fields);
                        fields.push((
                            "stored_programs".to_string(),
                            Json::UInt(info.stored_programs),
                        ));
                        if let Some(seq) = info.last_seq {
                            fields.push(("last_seq".to_string(), Json::UInt(seq)));
                        }
                        ("session", Some(Json::Obj(fields)))
                    }
                    ResponseBody::Programs(entries) => (
                        "programs",
                        Some(Json::Arr(
                            entries.iter().map(program_entry_to_json).collect(),
                        )),
                    ),
                    ResponseBody::Error(_) => unreachable!("handled above"),
                };
                push("kind", Json::Str(kind.into()));
                if let Some(r) = result {
                    push("result", r);
                }
            }
        }
        Json::Obj(fields).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        assert_eq!(Request::peek_id(&line), Some(req.id));
    }

    fn round_trip_response(resp: Response) {
        let line = resp.to_json_line();
        assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request {
            id: 1,
            timeout_ms: None,
            seq: None,
            body: RequestBody::Ping,
        });
        round_trip_request(Request {
            id: 2,
            timeout_ms: None,
            seq: None,
            body: RequestBody::Dot {
                precision: Precision::P8,
                x: vec![1, 2, 3],
                w: vec![4, 5, 6],
            },
        });
        for op in [
            LaneOp::Add,
            LaneOp::Sub,
            LaneOp::Mult,
            LaneOp::Logic(LogicOp::And),
            LaneOp::Logic(LogicOp::Or),
            LaneOp::Logic(LogicOp::Xor),
            LaneOp::Logic(LogicOp::Nand),
            LaneOp::Logic(LogicOp::Nor),
            LaneOp::Logic(LogicOp::Xnor),
        ] {
            round_trip_request(Request {
                id: 3,
                timeout_ms: None,
                seq: None,
                body: RequestBody::Lanes {
                    op,
                    precision: Precision::P4,
                    a: vec![1, 15],
                    b: vec![3, 9],
                },
            });
        }
        round_trip_request(Request {
            id: 4,
            timeout_ms: None,
            seq: None,
            body: RequestBody::LoadModel {
                precision: Precision::P2,
                prototypes: vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]],
            },
        });
        round_trip_request(Request {
            id: 5,
            timeout_ms: None,
            seq: None,
            body: RequestBody::Classify { x: vec![1, 2] },
        });
        round_trip_request(Request {
            id: 9,
            timeout_ms: None,
            seq: None,
            body: RequestBody::ExecProgram {
                instrs: every_instr_kind(),
            },
        });
        round_trip_request(Request {
            id: 10,
            timeout_ms: None,
            seq: None,
            body: RequestBody::StoreProgram {
                instrs: every_instr_kind(),
                name: None,
            },
        });
        round_trip_request(Request {
            id: 14,
            timeout_ms: None,
            seq: Some(3),
            body: RequestBody::StoreProgram {
                instrs: every_instr_kind(),
                name: Some("conv3x3".into()),
            },
        });
        round_trip_request(Request {
            id: 13,
            timeout_ms: None,
            seq: None,
            body: RequestBody::LintProgram {
                instrs: every_instr_kind(),
            },
        });
        round_trip_request(Request {
            id: 11,
            timeout_ms: None,
            seq: None,
            body: RequestBody::RunStored {
                target: StoredTarget::Pid(3),
                inputs: vec![],
            },
        });
        round_trip_request(Request {
            id: 12,
            timeout_ms: None,
            seq: None,
            body: RequestBody::RunStored {
                target: StoredTarget::Pid(7),
                inputs: vec![Some(vec![1, 2, 3]), None, Some(vec![]), Some(vec![255])],
            },
        });
        round_trip_request(Request {
            id: 15,
            timeout_ms: None,
            seq: Some(9),
            body: RequestBody::RunStored {
                target: StoredTarget::Name("conv3x3".into()),
                inputs: vec![None, Some(vec![4])],
            },
        });
        round_trip_request(Request {
            id: 16,
            timeout_ms: None,
            seq: None,
            body: RequestBody::ListPrograms,
        });
        round_trip_request(Request {
            id: 17,
            timeout_ms: None,
            seq: Some(1),
            body: RequestBody::DeleteProgram {
                target: StoredTarget::Name("conv3x3".into()),
            },
        });
        round_trip_request(Request {
            id: 18,
            timeout_ms: None,
            seq: None,
            body: RequestBody::DeleteProgram {
                target: StoredTarget::Pid(2),
            },
        });
        round_trip_request(Request {
            id: 19,
            timeout_ms: None,
            seq: None,
            body: RequestBody::OpenSession,
        });
        round_trip_request(Request {
            id: 20,
            timeout_ms: None,
            seq: None,
            body: RequestBody::ResumeSession {
                token: "a1b2c3d4e5f60718293a4b5c6d7e8f90".into(),
            },
        });
        round_trip_request(Request {
            id: 6,
            timeout_ms: None,
            seq: None,
            body: RequestBody::Stats,
        });
        round_trip_request(Request {
            id: 7,
            timeout_ms: None,
            seq: None,
            body: RequestBody::InjectPanic,
        });
        round_trip_request(Request {
            id: 8,
            timeout_ms: None,
            seq: None,
            body: RequestBody::Shutdown,
        });
    }

    /// One of each instruction kind (all six logic functions included),
    /// with distinct registers so round-trip mix-ups cannot cancel out.
    fn every_instr_kind() -> Vec<Instr> {
        let p = Precision::P8;
        let mut instrs = vec![
            Instr::Write {
                dst: Reg(0),
                precision: p,
                values: vec![1, 2, 3],
            },
            Instr::WriteMult {
                dst: Reg(1),
                precision: p,
                values: vec![4, 5],
            },
            Instr::Not {
                src: Reg(0),
                dst: Reg(2),
            },
            Instr::Copy {
                src: Reg(2),
                dst: Reg(3),
            },
            Instr::Shl {
                src: Reg(3),
                dst: Reg(4),
                precision: p,
            },
            Instr::Add {
                a: Reg(0),
                b: Reg(2),
                dst: Reg(5),
                precision: p,
            },
            Instr::AddShift {
                a: Reg(0),
                b: Reg(5),
                dst: Reg(6),
                precision: Precision::P4,
            },
            Instr::Sub {
                a: Reg(5),
                b: Reg(0),
                dst: Reg(7),
                precision: p,
            },
            Instr::Mult {
                a: Reg(1),
                b: Reg(1),
                dst: Reg(8),
                precision: p,
            },
            Instr::ReduceAdd {
                srcs: vec![Reg(0), Reg(2), Reg(5)],
                dst: Reg(9),
                precision: p,
            },
            Instr::Read {
                src: Reg(9),
                precision: p,
                n: 3,
            },
            Instr::ReadProducts {
                src: Reg(8),
                precision: p,
                n: 2,
            },
        ];
        for op in [
            LogicOp::And,
            LogicOp::Or,
            LogicOp::Xor,
            LogicOp::Nand,
            LogicOp::Nor,
            LogicOp::Xnor,
        ] {
            instrs.push(Instr::Logic {
                op,
                a: Reg(0),
                b: Reg(2),
                dst: Reg(10),
            });
        }
        instrs
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response {
            id: 1,
            body: ResponseBody::Pong,
        });
        round_trip_response(Response {
            id: 2,
            body: ResponseBody::Scalar(u64::MAX),
        });
        round_trip_response(Response {
            id: 3,
            body: ResponseBody::Words(vec![0, 255, 1 << 40]),
        });
        round_trip_response(Response {
            id: 4,
            body: ResponseBody::Class(3),
        });
        round_trip_response(Response {
            id: 5,
            body: ResponseBody::Ok,
        });
        round_trip_response(Response {
            id: 6,
            body: ResponseBody::Stats(SessionActivity {
                requests: 12,
                errors: 1,
                cycles: 3456,
                energy_fj: 789.25,
            }),
        });
        round_trip_response(Response {
            id: 7,
            body: ResponseBody::Error("no model loaded".into()),
        });
        round_trip_response(Response {
            id: 9,
            body: ResponseBody::Stored(StoredMeta {
                pid: 12,
                cycles: 345,
                writes: 6,
                diagnostics: Vec::new(),
            }),
        });
        round_trip_response(Response {
            id: 10,
            body: ResponseBody::Stored(StoredMeta {
                pid: 13,
                cycles: 7,
                writes: 2,
                diagnostics: vec![Diagnostic {
                    code: "L001".into(),
                    severity: Severity::Warn,
                    span: 1..2,
                    message: "dead store".into(),
                }],
            }),
        });
        round_trip_response(Response {
            id: 11,
            body: ResponseBody::Diagnostics(vec![
                Diagnostic {
                    code: "L004".into(),
                    severity: Severity::Perf,
                    span: 2..4,
                    message: "missed fusion".into(),
                },
                Diagnostic {
                    code: "E002".into(),
                    severity: Severity::Error,
                    span: 0..1,
                    message: "use before def".into(),
                },
            ]),
        });
        round_trip_response(Response {
            id: 12,
            body: ResponseBody::Diagnostics(Vec::new()),
        });
        round_trip_response(Response {
            id: 13,
            body: ResponseBody::Session(SessionInfo {
                token: "00ff00ff00ff00ff00ff00ff00ff00ff".into(),
                stats: SessionActivity {
                    requests: 40,
                    errors: 2,
                    cycles: 999,
                    energy_fj: 1.5,
                },
                stored_programs: 3,
                last_seq: Some(39),
            }),
        });
        round_trip_response(Response {
            id: 13,
            body: ResponseBody::Session(SessionInfo {
                token: "aa".repeat(16),
                stats: SessionActivity::new(),
                stored_programs: 0,
                last_seq: None,
            }),
        });
        round_trip_response(Response {
            id: 14,
            body: ResponseBody::Programs(vec![
                ProgramEntry {
                    pid: 0,
                    name: Some("conv3x3".into()),
                    cycles: 120,
                    writes: 2,
                    runs: 7,
                    errors: 1,
                    total_cycles: 840,
                    total_energy_fj: 123.25,
                    last_status: Some(RunStatus::Error {
                        message: "input 0 must have 9 values".into(),
                    }),
                },
                ProgramEntry {
                    pid: 1,
                    name: None,
                    cycles: 3,
                    writes: 0,
                    runs: 2,
                    errors: 0,
                    total_cycles: 6,
                    total_energy_fj: 0.5,
                    last_status: Some(RunStatus::Success),
                },
                ProgramEntry {
                    pid: 2,
                    name: Some("idle".into()),
                    cycles: 1,
                    writes: 1,
                    runs: 0,
                    errors: 0,
                    total_cycles: 0,
                    total_energy_fj: 0.0,
                    last_status: None,
                },
            ]),
        });
        round_trip_response(Response {
            id: 15,
            body: ResponseBody::Programs(Vec::new()),
        });
        round_trip_response(Response {
            id: 8,
            body: ResponseBody::Program(ProgramReport {
                outputs: vec![vec![1, 2], vec![3]],
                cycles: vec![1, 1, 10, 0, 1],
                energy_fj: vec![100.5, 100.5, 2040.25, 0.0, 33.0],
            }),
        });
    }

    #[test]
    fn malformed_requests_report_the_problem() {
        for (line, needle) in [
            ("not json", "malformed"),
            ("{\"id\":1}", "op"),
            ("{\"id\":1,\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\"}", "id"),
            ("{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[1]}", "'w'"),
            (
                "{\"id\":1,\"op\":\"add\",\"precision\":3,\"a\":[],\"b\":[]}",
                "precision",
            ),
            (
                "{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[-1],\"w\":[1]}",
                "'x'",
            ),
            ("{\"id\":1,\"op\":\"exec_program\"}", "'instrs'"),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"frobnicate\"}]}",
                "unknown instruction",
            ),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"add\",\"a\":0,\"b\":1,\"dst\":99999,\"precision\":8}]}",
                "register 'dst' out of range",
            ),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"write\",\"dst\":0,\"precision\":5,\"values\":[]}]}",
                "precision",
            ),
            ("{\"id\":1,\"op\":\"store_program\"}", "'instrs'"),
            ("{\"id\":1,\"op\":\"run_stored\"}", "'pid'"),
            (
                "{\"id\":1,\"op\":\"run_stored\",\"pid\":1,\"inputs\":7}",
                "'inputs' must be an array",
            ),
            (
                "{\"id\":1,\"op\":\"run_stored\",\"pid\":1,\"inputs\":[\"x\"]}",
                "array of integers or null",
            ),
            (
                "{\"id\":1,\"op\":\"run_stored\",\"pid\":1,\"name\":\"x\"}",
                "exactly one of 'pid' or 'name'",
            ),
            ("{\"id\":1,\"op\":\"delete_program\"}", "'pid' or 'name'"),
            (
                "{\"id\":1,\"op\":\"resume_session\"}",
                "missing field 'token'",
            ),
            (
                "{\"id\":1,\"op\":\"resume_session\",\"token\":7}",
                "'token' must be a string",
            ),
            (
                "{\"id\":1,\"op\":\"store_program\",\"instrs\":[],\"name\":7}",
                "'name' must be a string",
            ),
            (
                "{\"id\":1,\"seq\":\"x\",\"op\":\"ping\"}",
                "'seq' must be a non-negative integer",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line} -> {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn structured_errors_round_trip() {
        round_trip_response(Response {
            id: 20,
            body: ResponseBody::Error(ErrorBody::limit(
                LimitKind::CycleRate,
                Some(750),
                "session cycle budget exhausted",
            )),
        });
        round_trip_response(Response {
            id: 21,
            body: ResponseBody::Error(ErrorBody::limit(
                LimitKind::ProgramLength,
                None,
                "program too long",
            )),
        });
        round_trip_response(Response {
            id: 22,
            body: ResponseBody::Error(ErrorBody::overloaded(Some(50), "server overloaded")),
        });
        round_trip_response(Response {
            id: 23,
            body: ResponseBody::Error(ErrorBody::deadline("deadline expired in queue")),
        });
        round_trip_response(Response {
            id: 24,
            body: ResponseBody::Error(ErrorBody::invalid_program(
                "E002",
                Some(3),
                "instruction 3 reads register r1 before any write",
            )),
        });
        round_trip_response(Response {
            id: 25,
            body: ResponseBody::Error(ErrorBody::invalid_program(
                "E001",
                None,
                "program needs 200 registers but the macro has 125 rows",
            )),
        });
        round_trip_response(Response {
            id: 26,
            body: ResponseBody::Error(ErrorBody::session_expired(
                "session expired 31s ago; open a fresh one",
            )),
        });
        round_trip_response(Response {
            id: 27,
            body: ResponseBody::Error(ErrorBody::bad_token("unknown session token")),
        });
        for limit in [
            LimitKind::CycleRate,
            LimitKind::EnergyRate,
            LimitKind::Inflight,
            LimitKind::ProgramLength,
            LimitKind::StoredPrograms,
            LimitKind::Sessions,
            LimitKind::RegistryPrograms,
        ] {
            assert_eq!(LimitKind::from_name(limit.name()), Some(limit));
        }
        for kind in [ErrorKind::SessionExpired, ErrorKind::BadToken] {
            assert_eq!(ErrorKind::from_name(kind.name().unwrap()), Some(kind));
        }
    }

    #[test]
    fn generic_errors_stay_wire_compatible() {
        // A generic error serializes exactly as before this protocol grew
        // machine-readable kinds, and unknown kinds degrade to generic.
        let line = Response {
            id: 7,
            body: ResponseBody::Error("no model loaded".into()),
        }
        .to_json_line();
        assert_eq!(
            line,
            "{\"id\":7,\"ok\":false,\"error\":\"no model loaded\"}"
        );
        let parsed =
            Response::parse("{\"id\":3,\"ok\":false,\"error\":\"boom\",\"kind\":\"brand_new\"}")
                .unwrap();
        assert_eq!(parsed.body, ResponseBody::Error(ErrorBody::generic("boom")));
    }

    #[test]
    fn timeout_ms_rides_any_request() {
        let req = Request {
            id: 31,
            timeout_ms: Some(250),
            seq: None,
            body: RequestBody::Ping,
        };
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
        // Absent and null both mean "no deadline".
        let bare = Request::parse("{\"id\":1,\"op\":\"ping\"}").unwrap();
        assert_eq!(bare.timeout_ms, None);
        let null = Request::parse("{\"id\":1,\"timeout_ms\":null,\"op\":\"ping\"}").unwrap();
        assert_eq!(null.timeout_ms, None);
        let err = Request::parse("{\"id\":1,\"timeout_ms\":\"soon\",\"op\":\"ping\"}").unwrap_err();
        assert!(err.to_string().contains("timeout_ms"));
    }

    #[test]
    fn seq_rides_any_request() {
        let req = Request {
            id: 32,
            timeout_ms: Some(100),
            seq: Some(17),
            body: RequestBody::Dot {
                precision: Precision::P8,
                x: vec![1],
                w: vec![2],
            },
        };
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
        // Absent and null both mean "not seq-guarded".
        let bare = Request::parse("{\"id\":1,\"op\":\"ping\"}").unwrap();
        assert_eq!(bare.seq, None);
        let null = Request::parse("{\"id\":1,\"seq\":null,\"op\":\"ping\"}").unwrap();
        assert_eq!(null.seq, None);
    }

    #[test]
    fn peek_id_is_explicit_about_missing_ids() {
        // A line with no readable id yields None — not a silent 0 that
        // could be confused with a client actually using id 0.
        assert_eq!(Request::peek_id("garbage"), None);
        assert_eq!(Request::peek_id("{\"op\":\"ping\"}"), None);
        assert_eq!(Request::peek_id("{\"id\":-3,\"op\":\"ping\"}"), None);
        assert_eq!(Request::peek_id("{\"id\":\"seven\",\"op\":\"ping\"}"), None);
        assert_eq!(
            Request::peek_id("{\"id\":42,\"op\":\"frobnicate\"}"),
            Some(42)
        );
        assert_eq!(Request::peek_id("{\"id\":0,\"op\":\"ping\"}"), Some(0));
    }
}
