//! The line-delimited JSON wire protocol of the compute service.
//!
//! Every request and response is exactly one JSON object on one line. The
//! vocabulary maps directly onto the macro's ISA (the paper's Table I) plus
//! the session-level verbs a multi-client service needs.
//!
//! # Requests
//!
//! | `op` | fields | meaning |
//! |---|---|---|
//! | `ping` | — | liveness probe |
//! | `dot` | `precision`, `x`, `w` | in-memory dot product `Σ x[i]·w[i]` |
//! | `add` / `sub` / `mult` | `precision`, `a`, `b` | lane-wise arithmetic |
//! | `and` / `or` / `xor` / `nand` / `nor` / `xnor` | `precision`, `a`, `b` | lane-wise logic |
//! | `load_model` | `precision`, `prototypes` | store quantized class prototypes in the session |
//! | `classify` | `x` | nearest-prototype class of a quantized sample |
//! | `exec_program` | `instrs` | run a whole [`Program`](crate::prog::Program) in one round trip |
//! | `store_program` | `instrs` | validate + compile once into the session's stored-program cache |
//! | `run_stored` | `pid`, `inputs?` | run a stored program, optionally binding fresh write values |
//! | `lint_program` | `instrs` | static analysis only: answer the program's [`Diagnostic`]s without executing |
//! | `stats` | — | the session's activity account so far |
//! | `inject_panic` | — | fault injection (only if the server enables it) |
//! | `shutdown` | — | ask the server to drain and stop |
//!
//! `precision` is the lane width in bits (2/4/8/16/32); vectors are arrays
//! of non-negative integers that must fit the precision (`mult` operands
//! occupy `2P`-bit product lanes and results may use all 64 bits at P32).
//! Every request carries a client-chosen `id` echoed in its response.
//!
//! An `exec_program` request carries one JSON object per instruction, each
//! tagged with its name under `"i"` and naming virtual row registers by
//! index (see [`crate::prog`]):
//!
//! ```text
//! {"i":"write","dst":0,"precision":8,"values":[1,2]}
//! {"i":"write_mult","dst":1,"precision":8,"values":[3,4]}
//! {"i":"read","src":0,"precision":8,"n":2}
//! {"i":"read_products","src":2,"precision":8,"n":2}
//! {"i":"and","a":0,"b":1,"dst":2}          (or/xor/nand/nor/xnor)
//! {"i":"not","src":0,"dst":1}              (copy likewise)
//! {"i":"shl","src":0,"dst":1,"precision":8}
//! {"i":"add","a":0,"b":1,"dst":2,"precision":8}   (sub/add_shift/mult likewise)
//! {"i":"reduce_add","srcs":[0,1,2],"dst":3,"precision":8}
//! ```
//!
//! # Responses
//!
//! `{"id":N,"ok":true,"kind":K,"result":…}` on success, with `kind` one of
//! `pong`, `scalar`, `words`, `class`, `ok`, `stats`, `program`, `stored`,
//! `diagnostics`; `{"id":N,"ok":false,"error":"…"}` on failure. A
//! response's `id` matches its request; per connection, responses arrive
//! in request order.
//!
//! A failure may carry a machine-readable class beyond the human-readable
//! `error` string ([`ErrorBody`]): `"kind"` is one of `limit_exceeded`
//! (plus `"limit"` naming which per-session limit — `cycle_rate`,
//! `energy_rate`, `inflight`, `program_length`, `stored_programs`),
//! `overloaded` (the server is shedding load), `deadline_exceeded`
//! (the request's `timeout_ms` expired in queue or mid-execution), or
//! `invalid_program` (a submitted instruction stream failed validation;
//! `"code"` carries the stable [`ProgError`] code such as `E002` and
//! `"index"` the offending instruction's position when one is known).
//! `limit_exceeded` and `overloaded` errors may add `"retry_after_ms"`,
//! a hint for how long to back off before retrying. A failure without a
//! `"kind"` field is a generic request error (bad argument, ISA error,
//! unknown stored id, …) — retrying it unchanged will fail again.
//!
//! Any request may carry an optional `timeout_ms` field: a deadline,
//! relative to the server reading the line, after which the server may
//! answer `deadline_exceeded` instead of executing.
//!
//! A `program` result reports the outputs of the program's read
//! instructions plus exact per-instruction accounting:
//! `{"outputs":[[…]…],"cycles":[…],"energy_fj":[…]}` (one `cycles` /
//! `energy_fj` entry per submitted instruction; an instruction fused away
//! by the lowering pass bills 0).
//!
//! A `store_program` request validates, lowers and compiles its
//! instruction stream **once** against the server's macro configuration
//! and answers `{"kind":"stored","result":{"pid":P,"cycles":C,"writes":W}}`
//! with a session-local id. When the linter has something to say the
//! result adds a `"diagnostics"` array (one
//! `{"code","severity","start","end","message"}` object per finding, see
//! [`Diagnostic`]); a `lint_program` request answers the same array under
//! `{"kind":"diagnostics","result":[…]}` without storing or executing
//! anything. Subsequent `run_stored` requests
//! (`{"op":"run_stored","pid":P,"inputs":[[…],null,…]}`) skip parsing the
//! instruction stream, validation and lowering entirely and answer with
//! the same `program` result shape; `inputs` optionally rebinds the
//! program's write values — one entry per `write`/`write_mult` in
//! submitted order, `null` keeping the stored values, each bound vector
//! exactly as long as the stored one. Stored ids are private to their
//! session and die with the connection.
//!
//! # Examples
//!
//! ```
//! use bpimc_core::wire::{Request, RequestBody, Response, ResponseBody};
//! use bpimc_core::Precision;
//!
//! let req = Request {
//!     id: 7,
//!     timeout_ms: None,
//!     body: RequestBody::Dot {
//!         precision: Precision::P8,
//!         x: vec![1, 2, 3],
//!         w: vec![4, 5, 6],
//!     },
//! };
//! let line = req.to_json_line();
//! assert_eq!(Request::parse(&line).unwrap(), req);
//!
//! let resp = Response {
//!     id: 7,
//!     body: ResponseBody::Scalar(32),
//! };
//! assert_eq!(Response::parse(&resp.to_json_line()).unwrap(), resp);
//! ```

use crate::activity::SessionActivity;
use crate::json::Json;
use crate::prog::analysis::{Diagnostic, Severity};
use crate::prog::{Instr, ProgError, Reg};
use bpimc_periph::{LogicOp, Precision};
use std::fmt;

/// Lane-wise operations addressable over the wire (a subset of the ISA's
/// [`OpKind`](crate::OpKind) that takes two packed operand vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOp {
    /// Lane-wise addition (wrapping at the lane width).
    Add,
    /// Lane-wise subtraction (two's complement, wrapping).
    Sub,
    /// Lane-wise multiplication into `2P`-bit product lanes.
    Mult,
    /// Lane-wise bitwise logic.
    Logic(LogicOp),
}

impl LaneOp {
    /// The wire name of this op.
    pub fn name(&self) -> &'static str {
        match self {
            LaneOp::Add => "add",
            LaneOp::Sub => "sub",
            LaneOp::Mult => "mult",
            LaneOp::Logic(LogicOp::And) => "and",
            LaneOp::Logic(LogicOp::Or) => "or",
            LaneOp::Logic(LogicOp::Xor) => "xor",
            LaneOp::Logic(LogicOp::Nand) => "nand",
            LaneOp::Logic(LogicOp::Nor) => "nor",
            LaneOp::Logic(LogicOp::Xnor) => "xnor",
        }
    }

    /// The op for a wire name, if any.
    pub fn from_name(name: &str) -> Option<LaneOp> {
        Some(match name {
            "add" => LaneOp::Add,
            "sub" => LaneOp::Sub,
            "mult" => LaneOp::Mult,
            "and" => LaneOp::Logic(LogicOp::And),
            "or" => LaneOp::Logic(LogicOp::Or),
            "xor" => LaneOp::Logic(LogicOp::Xor),
            "nand" => LaneOp::Logic(LogicOp::Nand),
            "nor" => LaneOp::Logic(LogicOp::Nor),
            "xnor" => LaneOp::Logic(LogicOp::Xnor),
            _ => return None,
        })
    }
}

/// What a request asks the service to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Liveness probe.
    Ping,
    /// In-memory dot product of two equal-length quantized vectors.
    Dot {
        /// Lane width of the operands.
        precision: Precision,
        /// First vector.
        x: Vec<u64>,
        /// Second vector.
        w: Vec<u64>,
    },
    /// A lane-wise two-operand op over packed vectors.
    Lanes {
        /// Which op.
        op: LaneOp,
        /// Lane width.
        precision: Precision,
        /// First operand vector.
        a: Vec<u64>,
        /// Second operand vector.
        b: Vec<u64>,
    },
    /// Stores quantized class prototypes in the session for `classify`.
    LoadModel {
        /// Lane width the prototypes are quantized to.
        precision: Precision,
        /// One quantized weight vector per class.
        prototypes: Vec<Vec<u64>>,
    },
    /// Classifies one quantized sample against the session's model.
    Classify {
        /// The quantized sample.
        x: Vec<u64>,
    },
    /// Runs a whole typed instruction stream ([`crate::prog::Program`])
    /// in one round trip.
    ExecProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
    },
    /// Validates and compiles a program into the session's stored-program
    /// cache — the validate-once half of the stored-program fast path.
    StoreProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
    },
    /// Runs a stored program by its session-local id, optionally binding
    /// fresh values to its `write`/`write_mult` instructions.
    RunStored {
        /// The id `store_program` returned.
        pid: u64,
        /// One entry per write instruction in submitted order (`None` /
        /// JSON `null` keeps the stored values); empty runs all-stored.
        inputs: Vec<Option<Vec<u64>>>,
    },
    /// Statically analyzes a program — validation plus lint — and answers
    /// its diagnostics without storing or executing anything.
    LintProgram {
        /// The program's instructions, in order.
        instrs: Vec<Instr>,
    },
    /// The session's activity account (state *before* this request).
    Stats,
    /// Deliberately panics the executing job (fault injection; the server
    /// only honours it when started with fault injection enabled).
    InjectPanic,
    /// Asks the server to finish queued work and shut down.
    Shutdown,
}

/// One request: a client-chosen id plus the body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub id: u64,
    /// Optional deadline, milliseconds from the server reading the line.
    /// Past it the server may answer `deadline_exceeded` instead of
    /// executing.
    pub timeout_ms: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// What a successful request returns.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// `ping` reply.
    Pong,
    /// A scalar result (`dot`).
    Scalar(u64),
    /// A vector result (lane-wise ops).
    Words(Vec<u64>),
    /// A predicted class index (`classify`).
    Class(usize),
    /// Acknowledgement with no payload (`load_model`, `shutdown`).
    Ok,
    /// The session's account (`stats`).
    Stats(SessionActivity),
    /// An executed program's outputs and per-instruction accounting
    /// (`exec_program`).
    Program(ProgramReport),
    /// A stored program's id and compile-time facts (`store_program`).
    Stored(StoredMeta),
    /// A linted program's findings (`lint_program`).
    Diagnostics(Vec<Diagnostic>),
    /// The request failed; message plus optional machine-readable class.
    Error(ErrorBody),
}

/// Machine-readable class of a failed request.
///
/// `Generic` failures (bad argument, ISA error, unknown stored id, …)
/// carry no `"kind"` field on the wire; retrying them unchanged fails
/// again. The other kinds are transient conditions a client can react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// A request error with no more specific class.
    #[default]
    Generic,
    /// A per-session limit was exceeded; [`ErrorBody::limit`] says which
    /// and [`ErrorBody::retry_after_ms`] hints when the budget refills.
    LimitExceeded,
    /// The server is shedding load; back off and retry.
    Overloaded,
    /// The request's `timeout_ms` expired in queue or mid-execution.
    DeadlineExceeded,
    /// A submitted instruction stream failed validation;
    /// [`ErrorBody::code`] carries the stable [`ProgError`] code and
    /// [`ErrorBody::index`] the offending instruction when known.
    InvalidProgram,
}

impl ErrorKind {
    /// The wire name of this kind (`None` for `Generic`, which is encoded
    /// by omitting the field).
    pub fn name(&self) -> Option<&'static str> {
        match self {
            ErrorKind::Generic => None,
            ErrorKind::LimitExceeded => Some("limit_exceeded"),
            ErrorKind::Overloaded => Some("overloaded"),
            ErrorKind::DeadlineExceeded => Some("deadline_exceeded"),
            ErrorKind::InvalidProgram => Some("invalid_program"),
        }
    }

    /// The kind for a wire name, if any.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "limit_exceeded" => ErrorKind::LimitExceeded,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "invalid_program" => ErrorKind::InvalidProgram,
            _ => return None,
        })
    }
}

/// Which per-session limit a `limit_exceeded` error tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// The session's hardware-cycles-per-second budget.
    CycleRate,
    /// The session's energy-per-second budget.
    EnergyRate,
    /// Too many requests in flight on the connection at once.
    Inflight,
    /// A submitted program has more instructions than allowed.
    ProgramLength,
    /// The session's stored-program cache is full.
    StoredPrograms,
}

impl LimitKind {
    /// The wire name of this limit.
    pub fn name(&self) -> &'static str {
        match self {
            LimitKind::CycleRate => "cycle_rate",
            LimitKind::EnergyRate => "energy_rate",
            LimitKind::Inflight => "inflight",
            LimitKind::ProgramLength => "program_length",
            LimitKind::StoredPrograms => "stored_programs",
        }
    }

    /// The limit for a wire name, if any.
    pub fn from_name(name: &str) -> Option<LimitKind> {
        Some(match name {
            "cycle_rate" => LimitKind::CycleRate,
            "energy_rate" => LimitKind::EnergyRate,
            "inflight" => LimitKind::Inflight,
            "program_length" => LimitKind::ProgramLength,
            "stored_programs" => LimitKind::StoredPrograms,
            _ => return None,
        })
    }
}

/// A failed request: human-readable message plus optional machine class.
///
/// On the wire: `{"id":N,"ok":false,"error":MSG}` with `"kind"`,
/// `"limit"`, `"retry_after_ms"`, `"code"` and `"index"` added only when
/// set.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Machine-readable class (`Generic` is encoded by omission).
    pub kind: ErrorKind,
    /// Which limit tripped, for `LimitExceeded` errors.
    pub limit: Option<LimitKind>,
    /// Back-off hint in milliseconds, for transient errors.
    pub retry_after_ms: Option<u64>,
    /// Stable [`ProgError`] code (`E001`…), for `InvalidProgram` errors.
    pub code: Option<String>,
    /// Offending instruction index, for `InvalidProgram` errors that
    /// implicate one instruction.
    pub index: Option<u64>,
    /// Human-readable reason.
    pub message: String,
}

impl ErrorBody {
    /// A plain request error with no machine-readable class.
    pub fn generic(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::Generic,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `limit_exceeded` error naming the limit that tripped.
    pub fn limit(
        limit: LimitKind,
        retry_after_ms: Option<u64>,
        message: impl Into<String>,
    ) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::LimitExceeded,
            limit: Some(limit),
            retry_after_ms,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// An `overloaded` shed with a back-off hint.
    pub fn overloaded(retry_after_ms: Option<u64>, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::Overloaded,
            limit: None,
            retry_after_ms,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// A `deadline_exceeded` error.
    pub fn deadline(message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::DeadlineExceeded,
            limit: None,
            retry_after_ms: None,
            code: None,
            index: None,
            message: message.into(),
        }
    }

    /// An `invalid_program` error carrying the stable [`ProgError`] code
    /// and, when one instruction is implicated, its index.
    pub fn invalid_program(
        code: impl Into<String>,
        index: Option<u64>,
        message: impl Into<String>,
    ) -> ErrorBody {
        ErrorBody {
            kind: ErrorKind::InvalidProgram,
            limit: None,
            retry_after_ms: None,
            code: Some(code.into()),
            index,
            message: message.into(),
        }
    }
}

impl From<&ProgError> for ErrorBody {
    fn from(e: &ProgError) -> ErrorBody {
        ErrorBody::invalid_program(e.code(), e.instr().map(|i| i as u64), e.to_string())
    }
}

impl From<String> for ErrorBody {
    fn from(message: String) -> ErrorBody {
        ErrorBody::generic(message)
    }
}

impl From<&str> for ErrorBody {
    fn from(message: &str) -> ErrorBody {
        ErrorBody::generic(message)
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// What `store_program` returns: the session-local id to pass to
/// `run_stored`, plus the compiled program's static facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMeta {
    /// Session-local stored-program id.
    pub pid: u64,
    /// Predicted hardware cycles of one run (the static cost model).
    pub cycles: u64,
    /// `write`/`write_mult` instructions — the input slots a `run_stored`
    /// binding covers, in submitted order.
    pub writes: u64,
    /// Lint findings for the submitted stream (empty when the linter is
    /// silent; omitted from the wire encoding then).
    pub diagnostics: Vec<Diagnostic>,
}

/// One response, tagged with the request's id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// Result or error.
    pub body: ResponseBody,
}

/// What `exec_program` returns: read outputs plus exact per-instruction
/// accounting, aligned with the submitted instruction list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramReport {
    /// One vector per `read`/`read_products` instruction, in order.
    pub outputs: Vec<Vec<u64>>,
    /// Hardware cycles billed to each submitted instruction (an
    /// instruction fused away by the lowering pass bills 0).
    pub cycles: Vec<u64>,
    /// Energy billed to each submitted instruction, femtojoules.
    pub energy_fj: Vec<f64>,
}

impl ProgramReport {
    /// Total hardware cycles of the run.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total energy of the run, femtojoules.
    pub fn total_energy_fj(&self) -> f64 {
        self.energy_fj.iter().sum()
    }
}

/// A malformed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed message: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    v.get(key)
        .ok_or_else(|| wire_err(format!("missing field '{key}'")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, WireError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field '{key}' must be a non-negative integer")))
}

fn words_field(v: &Json, key: &str) -> Result<Vec<u64>, WireError> {
    field(v, key)?
        .as_u64_array()
        .ok_or_else(|| wire_err(format!("field '{key}' must be an array of integers")))
}

fn precision_field(v: &Json) -> Result<Precision, WireError> {
    let bits = u64_field(v, "precision")?;
    Precision::try_from_bits(bits as usize)
        .map_err(|_| wire_err(format!("unsupported precision {bits} (use 2/4/8/16/32)")))
}

fn words_json(words: &[u64]) -> Json {
    Json::Arr(words.iter().map(|&w| Json::UInt(w)).collect())
}

fn reg_field(v: &Json, key: &str) -> Result<Reg, WireError> {
    let n = u64_field(v, key)?;
    u16::try_from(n)
        .map(Reg)
        .map_err(|_| wire_err(format!("register '{key}' out of range")))
}

fn regs_field(v: &Json, key: &str) -> Result<Vec<Reg>, WireError> {
    words_field(v, key)?
        .into_iter()
        .map(|n| {
            u16::try_from(n)
                .map(Reg)
                .map_err(|_| wire_err(format!("register in '{key}' out of range")))
        })
        .collect()
}

fn usize_field(v: &Json, key: &str) -> Result<usize, WireError> {
    usize::try_from(u64_field(v, key)?).map_err(|_| wire_err(format!("field '{key}' out of range")))
}

fn reg_json(r: Reg) -> Json {
    Json::UInt(r.0 as u64)
}

/// Serializes one program instruction to its wire object (see the module
/// docs for the vocabulary).
fn instr_to_json(instr: &Instr) -> Json {
    let mut fields: Vec<(String, Json)> = Vec::new();
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match instr {
        Instr::Write {
            dst,
            precision,
            values,
        }
        | Instr::WriteMult {
            dst,
            precision,
            values,
        } => {
            push("i", Json::Str(instr.name().into()));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
            push("values", words_json(values));
        }
        Instr::Read { src, precision, n } | Instr::ReadProducts { src, precision, n } => {
            push("i", Json::Str(instr.name().into()));
            push("src", reg_json(*src));
            push("precision", Json::UInt(precision.bits() as u64));
            push("n", Json::UInt(*n as u64));
        }
        Instr::Logic { a, b, dst, .. } => {
            push("i", Json::Str(instr.name().into()));
            push("a", reg_json(*a));
            push("b", reg_json(*b));
            push("dst", reg_json(*dst));
        }
        Instr::Not { src, dst } | Instr::Copy { src, dst } => {
            push("i", Json::Str(instr.name().into()));
            push("src", reg_json(*src));
            push("dst", reg_json(*dst));
        }
        Instr::Shl {
            src,
            dst,
            precision,
        } => {
            push("i", Json::Str("shl".into()));
            push("src", reg_json(*src));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
        Instr::Add {
            a,
            b,
            dst,
            precision,
        }
        | Instr::AddShift {
            a,
            b,
            dst,
            precision,
        }
        | Instr::Sub {
            a,
            b,
            dst,
            precision,
        }
        | Instr::Mult {
            a,
            b,
            dst,
            precision,
        } => {
            push("i", Json::Str(instr.name().into()));
            push("a", reg_json(*a));
            push("b", reg_json(*b));
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
        Instr::ReduceAdd {
            srcs,
            dst,
            precision,
        } => {
            push("i", Json::Str("reduce_add".into()));
            push(
                "srcs",
                Json::Arr(srcs.iter().map(|&r| reg_json(r)).collect()),
            );
            push("dst", reg_json(*dst));
            push("precision", Json::UInt(precision.bits() as u64));
        }
    }
    Json::Obj(fields)
}

/// Parses one program instruction from its wire object.
fn instr_from_json(v: &Json) -> Result<Instr, WireError> {
    let name = field(v, "i")?
        .as_str()
        .ok_or_else(|| wire_err("instruction field 'i' must be a string"))?;
    Ok(match name {
        "write" => Instr::Write {
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
            values: words_field(v, "values")?,
        },
        "write_mult" => Instr::WriteMult {
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
            values: words_field(v, "values")?,
        },
        "read" => Instr::Read {
            src: reg_field(v, "src")?,
            precision: precision_field(v)?,
            n: usize_field(v, "n")?,
        },
        "read_products" => Instr::ReadProducts {
            src: reg_field(v, "src")?,
            precision: precision_field(v)?,
            n: usize_field(v, "n")?,
        },
        "not" => Instr::Not {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
        },
        "copy" => Instr::Copy {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
        },
        "shl" => Instr::Shl {
            src: reg_field(v, "src")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "add" => Instr::Add {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "add_shift" => Instr::AddShift {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "sub" => Instr::Sub {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "mult" => Instr::Mult {
            a: reg_field(v, "a")?,
            b: reg_field(v, "b")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        "reduce_add" => Instr::ReduceAdd {
            srcs: regs_field(v, "srcs")?,
            dst: reg_field(v, "dst")?,
            precision: precision_field(v)?,
        },
        other => match LaneOp::from_name(other) {
            Some(LaneOp::Logic(op)) => Instr::Logic {
                op,
                a: reg_field(v, "a")?,
                b: reg_field(v, "b")?,
                dst: reg_field(v, "dst")?,
            },
            _ => return Err(wire_err(format!("unknown instruction '{other}'"))),
        },
    })
}

/// Parses the `instrs` array shared by `exec_program`, `store_program`
/// and `lint_program`.
fn instrs_field(v: &Json) -> Result<Vec<Instr>, WireError> {
    field(v, "instrs")?
        .as_array()
        .ok_or_else(|| wire_err("field 'instrs' must be an array"))?
        .iter()
        .map(instr_from_json)
        .collect()
}

/// Serializes one lint diagnostic to its wire object.
fn diag_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Str(d.code.clone())),
        ("severity".to_string(), Json::Str(d.severity.name().into())),
        ("start".to_string(), Json::UInt(d.span.start as u64)),
        ("end".to_string(), Json::UInt(d.span.end as u64)),
        ("message".to_string(), Json::Str(d.message.clone())),
    ])
}

/// Parses one lint diagnostic from its wire object.
fn diag_from_json(v: &Json) -> Result<Diagnostic, WireError> {
    let severity = field(v, "severity")?
        .as_str()
        .and_then(Severity::from_name)
        .ok_or_else(|| wire_err("diagnostic field 'severity' must be error/warn/perf"))?;
    Ok(Diagnostic {
        code: field(v, "code")?
            .as_str()
            .ok_or_else(|| wire_err("diagnostic field 'code' must be a string"))?
            .to_string(),
        severity,
        span: usize_field(v, "start")?..usize_field(v, "end")?,
        message: field(v, "message")?
            .as_str()
            .ok_or_else(|| wire_err("diagnostic field 'message' must be a string"))?
            .to_string(),
    })
}

fn diags_json(diags: &[Diagnostic]) -> Json {
    Json::Arr(diags.iter().map(diag_to_json).collect())
}

fn diags_from_json(v: &Json, what: &str) -> Result<Vec<Diagnostic>, WireError> {
    v.as_array()
        .ok_or_else(|| wire_err(format!("{what} must be an array")))?
        .iter()
        .map(diag_from_json)
        .collect()
}

impl Request {
    /// Extracts just the `id` of a line, for error responses to requests
    /// that do not parse fully. Returns `None` when the line has no
    /// readable non-negative integer `id` (bad JSON, missing field, wrong
    /// type) — the server answers such lines with the documented sentinel
    /// id 0, since the protocol has no way to address a reply otherwise.
    pub fn peek_id(line: &str) -> Option<u64> {
        Json::parse(line)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_u64))
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (bad JSON, missing or
    /// ill-typed field, unknown op).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let timeout_ms = match v.get("timeout_ms") {
            None | Some(Json::Null) => None,
            Some(t) => Some(
                t.as_u64()
                    .ok_or_else(|| wire_err("field 'timeout_ms' must be a non-negative integer"))?,
            ),
        };
        let op = field(&v, "op")?
            .as_str()
            .ok_or_else(|| wire_err("field 'op' must be a string"))?;
        let body = match op {
            "ping" => RequestBody::Ping,
            "dot" => RequestBody::Dot {
                precision: precision_field(&v)?,
                x: words_field(&v, "x")?,
                w: words_field(&v, "w")?,
            },
            "load_model" => {
                let protos = field(&v, "prototypes")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'prototypes' must be an array"))?;
                let prototypes = protos
                    .iter()
                    .map(|p| {
                        p.as_u64_array()
                            .ok_or_else(|| wire_err("each prototype must be an array of integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                RequestBody::LoadModel {
                    precision: precision_field(&v)?,
                    prototypes,
                }
            }
            "classify" => RequestBody::Classify {
                x: words_field(&v, "x")?,
            },
            "exec_program" => RequestBody::ExecProgram {
                instrs: instrs_field(&v)?,
            },
            "store_program" => RequestBody::StoreProgram {
                instrs: instrs_field(&v)?,
            },
            "lint_program" => RequestBody::LintProgram {
                instrs: instrs_field(&v)?,
            },
            "run_stored" => {
                let inputs = match v.get("inputs") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(arr) => arr
                        .as_array()
                        .ok_or_else(|| wire_err("field 'inputs' must be an array"))?
                        .iter()
                        .map(|e| match e {
                            Json::Null => Ok(None),
                            other => other.as_u64_array().map(Some).ok_or_else(|| {
                                wire_err("each input must be an array of integers or null")
                            }),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                RequestBody::RunStored {
                    pid: u64_field(&v, "pid")?,
                    inputs,
                }
            }
            "stats" => RequestBody::Stats,
            "inject_panic" => RequestBody::InjectPanic,
            "shutdown" => RequestBody::Shutdown,
            other => match LaneOp::from_name(other) {
                Some(op) => RequestBody::Lanes {
                    op,
                    precision: precision_field(&v)?,
                    a: words_field(&v, "a")?,
                    b: words_field(&v, "b")?,
                },
                None => return Err(wire_err(format!("unknown op '{other}'"))),
            },
        };
        Ok(Request {
            id,
            timeout_ms,
            body,
        })
    }

    /// Serializes the request to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        if let Some(t) = self.timeout_ms {
            fields.push(("timeout_ms".to_string(), Json::UInt(t)));
        }
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            RequestBody::Ping => push("op", Json::Str("ping".into())),
            RequestBody::Dot { precision, x, w } => {
                push("op", Json::Str("dot".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("x", words_json(x));
                push("w", words_json(w));
            }
            RequestBody::Lanes {
                op,
                precision,
                a,
                b,
            } => {
                push("op", Json::Str(op.name().into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push("a", words_json(a));
                push("b", words_json(b));
            }
            RequestBody::LoadModel {
                precision,
                prototypes,
            } => {
                push("op", Json::Str("load_model".into()));
                push("precision", Json::UInt(precision.bits() as u64));
                push(
                    "prototypes",
                    Json::Arr(prototypes.iter().map(|p| words_json(p)).collect()),
                );
            }
            RequestBody::Classify { x } => {
                push("op", Json::Str("classify".into()));
                push("x", words_json(x));
            }
            RequestBody::ExecProgram { instrs } => {
                push("op", Json::Str("exec_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
            }
            RequestBody::StoreProgram { instrs } => {
                push("op", Json::Str("store_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
            }
            RequestBody::LintProgram { instrs } => {
                push("op", Json::Str("lint_program".into()));
                push(
                    "instrs",
                    Json::Arr(instrs.iter().map(instr_to_json).collect()),
                );
            }
            RequestBody::RunStored { pid, inputs } => {
                push("op", Json::Str("run_stored".into()));
                push("pid", Json::UInt(*pid));
                if !inputs.is_empty() {
                    push(
                        "inputs",
                        Json::Arr(
                            inputs
                                .iter()
                                .map(|e| match e {
                                    None => Json::Null,
                                    Some(ws) => words_json(ws),
                                })
                                .collect(),
                        ),
                    );
                }
            }
            RequestBody::Stats => push("op", Json::Str("stats".into())),
            RequestBody::InjectPanic => push("op", Json::Str("inject_panic".into())),
            RequestBody::Shutdown => push("op", Json::Str("shutdown".into())),
        }
        Json::Obj(fields).to_string()
    }
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem.
    pub fn parse(line: &str) -> Result<Response, WireError> {
        let v = Json::parse(line.trim()).map_err(|e| wire_err(e.to_string()))?;
        let id = u64_field(&v, "id")?;
        let ok = field(&v, "ok")?
            .as_bool()
            .ok_or_else(|| wire_err("field 'ok' must be a bool"))?;
        if !ok {
            let msg = field(&v, "error")?
                .as_str()
                .ok_or_else(|| wire_err("field 'error' must be a string"))?;
            // Unknown kinds/limits from a newer server degrade to generic
            // rather than failing the parse.
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_name)
                .unwrap_or_default();
            let limit = v
                .get("limit")
                .and_then(Json::as_str)
                .and_then(LimitKind::from_name);
            let retry_after_ms = v.get("retry_after_ms").and_then(Json::as_u64);
            let code = v.get("code").and_then(Json::as_str).map(|s| s.to_string());
            let index = v.get("index").and_then(Json::as_u64);
            return Ok(Response {
                id,
                body: ResponseBody::Error(ErrorBody {
                    kind,
                    limit,
                    retry_after_ms,
                    code,
                    index,
                    message: msg.to_string(),
                }),
            });
        }
        let kind = field(&v, "kind")?
            .as_str()
            .ok_or_else(|| wire_err("field 'kind' must be a string"))?;
        let body = match kind {
            "pong" => ResponseBody::Pong,
            "ok" => ResponseBody::Ok,
            "scalar" => ResponseBody::Scalar(u64_field(&v, "result")?),
            "words" => ResponseBody::Words(words_field(&v, "result")?),
            "class" => ResponseBody::Class(
                u64_field(&v, "result")?
                    .try_into()
                    .map_err(|_| wire_err("class index out of range"))?,
            ),
            "program" => {
                let r = field(&v, "result")?;
                let outputs = field(r, "outputs")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'outputs' must be an array"))?
                    .iter()
                    .map(|o| {
                        o.as_u64_array()
                            .ok_or_else(|| wire_err("each output must be an array of integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let energy_fj = field(r, "energy_fj")?
                    .as_array()
                    .ok_or_else(|| wire_err("field 'energy_fj' must be an array"))?
                    .iter()
                    .map(|e| {
                        e.as_f64()
                            .ok_or_else(|| wire_err("each energy entry must be a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                ResponseBody::Program(ProgramReport {
                    outputs,
                    cycles: words_field(r, "cycles")?,
                    energy_fj,
                })
            }
            "stored" => {
                let r = field(&v, "result")?;
                ResponseBody::Stored(StoredMeta {
                    pid: u64_field(r, "pid")?,
                    cycles: u64_field(r, "cycles")?,
                    writes: u64_field(r, "writes")?,
                    diagnostics: match r.get("diagnostics") {
                        None | Some(Json::Null) => Vec::new(),
                        Some(d) => diags_from_json(d, "field 'diagnostics'")?,
                    },
                })
            }
            "diagnostics" => {
                ResponseBody::Diagnostics(diags_from_json(field(&v, "result")?, "field 'result'")?)
            }
            "stats" => {
                let r = field(&v, "result")?;
                ResponseBody::Stats(SessionActivity {
                    requests: u64_field(r, "requests")?,
                    errors: u64_field(r, "errors")?,
                    cycles: u64_field(r, "cycles")?,
                    energy_fj: field(r, "energy_fj")?
                        .as_f64()
                        .ok_or_else(|| wire_err("field 'energy_fj' must be a number"))?,
                })
            }
            other => return Err(wire_err(format!("unknown response kind '{other}'"))),
        };
        Ok(Response { id, body })
    }

    /// Serializes the response to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![("id".to_string(), Json::UInt(self.id))];
        let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
        match &self.body {
            ResponseBody::Error(e) => {
                push("ok", Json::Bool(false));
                push("error", Json::Str(e.message.clone()));
                if let Some(kind) = e.kind.name() {
                    push("kind", Json::Str(kind.into()));
                }
                if let Some(limit) = e.limit {
                    push("limit", Json::Str(limit.name().into()));
                }
                if let Some(ms) = e.retry_after_ms {
                    push("retry_after_ms", Json::UInt(ms));
                }
                if let Some(code) = &e.code {
                    push("code", Json::Str(code.clone()));
                }
                if let Some(index) = e.index {
                    push("index", Json::UInt(index));
                }
            }
            body => {
                push("ok", Json::Bool(true));
                let (kind, result) = match body {
                    ResponseBody::Pong => ("pong", None),
                    ResponseBody::Ok => ("ok", None),
                    ResponseBody::Scalar(n) => ("scalar", Some(Json::UInt(*n))),
                    ResponseBody::Words(ws) => ("words", Some(words_json(ws))),
                    ResponseBody::Class(c) => ("class", Some(Json::UInt(*c as u64))),
                    ResponseBody::Program(r) => (
                        "program",
                        Some(Json::Obj(vec![
                            (
                                "outputs".to_string(),
                                Json::Arr(r.outputs.iter().map(|o| words_json(o)).collect()),
                            ),
                            ("cycles".to_string(), words_json(&r.cycles)),
                            (
                                "energy_fj".to_string(),
                                Json::Arr(r.energy_fj.iter().map(|&e| Json::Float(e)).collect()),
                            ),
                        ])),
                    ),
                    ResponseBody::Stored(s) => {
                        let mut fields = vec![
                            ("pid".to_string(), Json::UInt(s.pid)),
                            ("cycles".to_string(), Json::UInt(s.cycles)),
                            ("writes".to_string(), Json::UInt(s.writes)),
                        ];
                        if !s.diagnostics.is_empty() {
                            fields.push(("diagnostics".to_string(), diags_json(&s.diagnostics)));
                        }
                        ("stored", Some(Json::Obj(fields)))
                    }
                    ResponseBody::Diagnostics(ds) => ("diagnostics", Some(diags_json(ds))),
                    ResponseBody::Stats(s) => (
                        "stats",
                        Some(Json::Obj(vec![
                            ("requests".to_string(), Json::UInt(s.requests)),
                            ("errors".to_string(), Json::UInt(s.errors)),
                            ("cycles".to_string(), Json::UInt(s.cycles)),
                            ("energy_fj".to_string(), Json::Float(s.energy_fj)),
                        ])),
                    ),
                    ResponseBody::Error(_) => unreachable!("handled above"),
                };
                push("kind", Json::Str(kind.into()));
                if let Some(r) = result {
                    push("result", r);
                }
            }
        }
        Json::Obj(fields).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        assert_eq!(Request::peek_id(&line), Some(req.id));
    }

    fn round_trip_response(resp: Response) {
        let line = resp.to_json_line();
        assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
    }

    #[test]
    fn every_request_kind_round_trips() {
        round_trip_request(Request {
            id: 1,
            timeout_ms: None,
            body: RequestBody::Ping,
        });
        round_trip_request(Request {
            id: 2,
            timeout_ms: None,
            body: RequestBody::Dot {
                precision: Precision::P8,
                x: vec![1, 2, 3],
                w: vec![4, 5, 6],
            },
        });
        for op in [
            LaneOp::Add,
            LaneOp::Sub,
            LaneOp::Mult,
            LaneOp::Logic(LogicOp::And),
            LaneOp::Logic(LogicOp::Or),
            LaneOp::Logic(LogicOp::Xor),
            LaneOp::Logic(LogicOp::Nand),
            LaneOp::Logic(LogicOp::Nor),
            LaneOp::Logic(LogicOp::Xnor),
        ] {
            round_trip_request(Request {
                id: 3,
                timeout_ms: None,
                body: RequestBody::Lanes {
                    op,
                    precision: Precision::P4,
                    a: vec![1, 15],
                    b: vec![3, 9],
                },
            });
        }
        round_trip_request(Request {
            id: 4,
            timeout_ms: None,
            body: RequestBody::LoadModel {
                precision: Precision::P2,
                prototypes: vec![vec![0, 1, 2, 3], vec![3, 2, 1, 0]],
            },
        });
        round_trip_request(Request {
            id: 5,
            timeout_ms: None,
            body: RequestBody::Classify { x: vec![1, 2] },
        });
        round_trip_request(Request {
            id: 9,
            timeout_ms: None,
            body: RequestBody::ExecProgram {
                instrs: every_instr_kind(),
            },
        });
        round_trip_request(Request {
            id: 10,
            timeout_ms: None,
            body: RequestBody::StoreProgram {
                instrs: every_instr_kind(),
            },
        });
        round_trip_request(Request {
            id: 13,
            timeout_ms: None,
            body: RequestBody::LintProgram {
                instrs: every_instr_kind(),
            },
        });
        round_trip_request(Request {
            id: 11,
            timeout_ms: None,
            body: RequestBody::RunStored {
                pid: 3,
                inputs: vec![],
            },
        });
        round_trip_request(Request {
            id: 12,
            timeout_ms: None,
            body: RequestBody::RunStored {
                pid: 7,
                inputs: vec![Some(vec![1, 2, 3]), None, Some(vec![]), Some(vec![255])],
            },
        });
        round_trip_request(Request {
            id: 6,
            timeout_ms: None,
            body: RequestBody::Stats,
        });
        round_trip_request(Request {
            id: 7,
            timeout_ms: None,
            body: RequestBody::InjectPanic,
        });
        round_trip_request(Request {
            id: 8,
            timeout_ms: None,
            body: RequestBody::Shutdown,
        });
    }

    /// One of each instruction kind (all six logic functions included),
    /// with distinct registers so round-trip mix-ups cannot cancel out.
    fn every_instr_kind() -> Vec<Instr> {
        let p = Precision::P8;
        let mut instrs = vec![
            Instr::Write {
                dst: Reg(0),
                precision: p,
                values: vec![1, 2, 3],
            },
            Instr::WriteMult {
                dst: Reg(1),
                precision: p,
                values: vec![4, 5],
            },
            Instr::Not {
                src: Reg(0),
                dst: Reg(2),
            },
            Instr::Copy {
                src: Reg(2),
                dst: Reg(3),
            },
            Instr::Shl {
                src: Reg(3),
                dst: Reg(4),
                precision: p,
            },
            Instr::Add {
                a: Reg(0),
                b: Reg(2),
                dst: Reg(5),
                precision: p,
            },
            Instr::AddShift {
                a: Reg(0),
                b: Reg(5),
                dst: Reg(6),
                precision: Precision::P4,
            },
            Instr::Sub {
                a: Reg(5),
                b: Reg(0),
                dst: Reg(7),
                precision: p,
            },
            Instr::Mult {
                a: Reg(1),
                b: Reg(1),
                dst: Reg(8),
                precision: p,
            },
            Instr::ReduceAdd {
                srcs: vec![Reg(0), Reg(2), Reg(5)],
                dst: Reg(9),
                precision: p,
            },
            Instr::Read {
                src: Reg(9),
                precision: p,
                n: 3,
            },
            Instr::ReadProducts {
                src: Reg(8),
                precision: p,
                n: 2,
            },
        ];
        for op in [
            LogicOp::And,
            LogicOp::Or,
            LogicOp::Xor,
            LogicOp::Nand,
            LogicOp::Nor,
            LogicOp::Xnor,
        ] {
            instrs.push(Instr::Logic {
                op,
                a: Reg(0),
                b: Reg(2),
                dst: Reg(10),
            });
        }
        instrs
    }

    #[test]
    fn every_response_kind_round_trips() {
        round_trip_response(Response {
            id: 1,
            body: ResponseBody::Pong,
        });
        round_trip_response(Response {
            id: 2,
            body: ResponseBody::Scalar(u64::MAX),
        });
        round_trip_response(Response {
            id: 3,
            body: ResponseBody::Words(vec![0, 255, 1 << 40]),
        });
        round_trip_response(Response {
            id: 4,
            body: ResponseBody::Class(3),
        });
        round_trip_response(Response {
            id: 5,
            body: ResponseBody::Ok,
        });
        round_trip_response(Response {
            id: 6,
            body: ResponseBody::Stats(SessionActivity {
                requests: 12,
                errors: 1,
                cycles: 3456,
                energy_fj: 789.25,
            }),
        });
        round_trip_response(Response {
            id: 7,
            body: ResponseBody::Error("no model loaded".into()),
        });
        round_trip_response(Response {
            id: 9,
            body: ResponseBody::Stored(StoredMeta {
                pid: 12,
                cycles: 345,
                writes: 6,
                diagnostics: Vec::new(),
            }),
        });
        round_trip_response(Response {
            id: 10,
            body: ResponseBody::Stored(StoredMeta {
                pid: 13,
                cycles: 7,
                writes: 2,
                diagnostics: vec![Diagnostic {
                    code: "L001".into(),
                    severity: Severity::Warn,
                    span: 1..2,
                    message: "dead store".into(),
                }],
            }),
        });
        round_trip_response(Response {
            id: 11,
            body: ResponseBody::Diagnostics(vec![
                Diagnostic {
                    code: "L004".into(),
                    severity: Severity::Perf,
                    span: 2..4,
                    message: "missed fusion".into(),
                },
                Diagnostic {
                    code: "E002".into(),
                    severity: Severity::Error,
                    span: 0..1,
                    message: "use before def".into(),
                },
            ]),
        });
        round_trip_response(Response {
            id: 12,
            body: ResponseBody::Diagnostics(Vec::new()),
        });
        round_trip_response(Response {
            id: 8,
            body: ResponseBody::Program(ProgramReport {
                outputs: vec![vec![1, 2], vec![3]],
                cycles: vec![1, 1, 10, 0, 1],
                energy_fj: vec![100.5, 100.5, 2040.25, 0.0, 33.0],
            }),
        });
    }

    #[test]
    fn malformed_requests_report_the_problem() {
        for (line, needle) in [
            ("not json", "malformed"),
            ("{\"id\":1}", "op"),
            ("{\"id\":1,\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\"}", "id"),
            ("{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[1]}", "'w'"),
            (
                "{\"id\":1,\"op\":\"add\",\"precision\":3,\"a\":[],\"b\":[]}",
                "precision",
            ),
            (
                "{\"id\":1,\"op\":\"dot\",\"precision\":8,\"x\":[-1],\"w\":[1]}",
                "'x'",
            ),
            ("{\"id\":1,\"op\":\"exec_program\"}", "'instrs'"),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"frobnicate\"}]}",
                "unknown instruction",
            ),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"add\",\"a\":0,\"b\":1,\"dst\":99999,\"precision\":8}]}",
                "register 'dst' out of range",
            ),
            (
                "{\"id\":1,\"op\":\"exec_program\",\"instrs\":[{\"i\":\"write\",\"dst\":0,\"precision\":5,\"values\":[]}]}",
                "precision",
            ),
            ("{\"id\":1,\"op\":\"store_program\"}", "'instrs'"),
            ("{\"id\":1,\"op\":\"run_stored\"}", "'pid'"),
            (
                "{\"id\":1,\"op\":\"run_stored\",\"pid\":1,\"inputs\":7}",
                "'inputs' must be an array",
            ),
            (
                "{\"id\":1,\"op\":\"run_stored\",\"pid\":1,\"inputs\":[\"x\"]}",
                "array of integers or null",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line} -> {err} (wanted {needle})"
            );
        }
    }

    #[test]
    fn structured_errors_round_trip() {
        round_trip_response(Response {
            id: 20,
            body: ResponseBody::Error(ErrorBody::limit(
                LimitKind::CycleRate,
                Some(750),
                "session cycle budget exhausted",
            )),
        });
        round_trip_response(Response {
            id: 21,
            body: ResponseBody::Error(ErrorBody::limit(
                LimitKind::ProgramLength,
                None,
                "program too long",
            )),
        });
        round_trip_response(Response {
            id: 22,
            body: ResponseBody::Error(ErrorBody::overloaded(Some(50), "server overloaded")),
        });
        round_trip_response(Response {
            id: 23,
            body: ResponseBody::Error(ErrorBody::deadline("deadline expired in queue")),
        });
        round_trip_response(Response {
            id: 24,
            body: ResponseBody::Error(ErrorBody::invalid_program(
                "E002",
                Some(3),
                "instruction 3 reads register r1 before any write",
            )),
        });
        round_trip_response(Response {
            id: 25,
            body: ResponseBody::Error(ErrorBody::invalid_program(
                "E001",
                None,
                "program needs 200 registers but the macro has 125 rows",
            )),
        });
        for limit in [
            LimitKind::CycleRate,
            LimitKind::EnergyRate,
            LimitKind::Inflight,
            LimitKind::ProgramLength,
            LimitKind::StoredPrograms,
        ] {
            assert_eq!(LimitKind::from_name(limit.name()), Some(limit));
        }
    }

    #[test]
    fn generic_errors_stay_wire_compatible() {
        // A generic error serializes exactly as before this protocol grew
        // machine-readable kinds, and unknown kinds degrade to generic.
        let line = Response {
            id: 7,
            body: ResponseBody::Error("no model loaded".into()),
        }
        .to_json_line();
        assert_eq!(
            line,
            "{\"id\":7,\"ok\":false,\"error\":\"no model loaded\"}"
        );
        let parsed =
            Response::parse("{\"id\":3,\"ok\":false,\"error\":\"boom\",\"kind\":\"brand_new\"}")
                .unwrap();
        assert_eq!(parsed.body, ResponseBody::Error(ErrorBody::generic("boom")));
    }

    #[test]
    fn timeout_ms_rides_any_request() {
        let req = Request {
            id: 31,
            timeout_ms: Some(250),
            body: RequestBody::Ping,
        };
        let line = req.to_json_line();
        assert_eq!(Request::parse(&line).unwrap(), req);
        // Absent and null both mean "no deadline".
        let bare = Request::parse("{\"id\":1,\"op\":\"ping\"}").unwrap();
        assert_eq!(bare.timeout_ms, None);
        let null = Request::parse("{\"id\":1,\"timeout_ms\":null,\"op\":\"ping\"}").unwrap();
        assert_eq!(null.timeout_ms, None);
        let err = Request::parse("{\"id\":1,\"timeout_ms\":\"soon\",\"op\":\"ping\"}").unwrap_err();
        assert!(err.to_string().contains("timeout_ms"));
    }

    #[test]
    fn peek_id_is_explicit_about_missing_ids() {
        // A line with no readable id yields None — not a silent 0 that
        // could be confused with a client actually using id 0.
        assert_eq!(Request::peek_id("garbage"), None);
        assert_eq!(Request::peek_id("{\"op\":\"ping\"}"), None);
        assert_eq!(Request::peek_id("{\"id\":-3,\"op\":\"ping\"}"), None);
        assert_eq!(Request::peek_id("{\"id\":\"seven\",\"op\":\"ping\"}"), None);
        assert_eq!(
            Request::peek_id("{\"id\":42,\"op\":\"frobnicate\"}"),
            Some(42)
        );
        assert_eq!(Request::peek_id("{\"id\":0,\"op\":\"ping\"}"), Some(0));
    }
}
