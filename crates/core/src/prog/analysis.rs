//! Static dataflow analysis over [`Instr`] streams: def-use chains,
//! liveness, reaching definitions, value-range analysis, lint diagnostics
//! and a semantics-preserving optimizer.
//!
//! The IR's executor already *validates* programs ([`Program::validate`])
//! and *prices* them (the static cost model); this module adds the third
//! leg — it *advises*. [`Dataflow`] is the shared framework: one linear
//! pass resolves every register read to the definition that produced its
//! value, and everything else — [`Program::lint`], [`Program::optimize`],
//! [`Program::partition`]'s dependence components — is derived from that
//! one def-use map.
//!
//! # Diagnostic codes
//!
//! [`Program::lint`] reports [`Diagnostic`]s with stable codes:
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `E001`–`E013` | error | The program fails [`Program::validate`]; the code maps 1:1 to the [`ProgError`] variant (see [`ProgError::code`]). |
//! | `L001` | warn | Dead store: a result is overwritten before any instruction reads it. |
//! | `L002` | warn | Unused result: a result is never read by any later instruction. |
//! | `L003` | perf | Redundant recomputation: a multi-cycle op recomputes a value that is still resident in another row (a 1-cycle `copy` would do). |
//! | `L004` | perf | Missed `add`+`shl` fusion: a `shl` of a sum that the lowering pass could not fuse (not adjacent, or the intermediate is read later). |
//! | `L005` | perf | Recyclable registers: remapping registers would shrink the row budget. |
//! | `L006` | perf | Splittable: the program has multiple independent dependence components that `run_partitioned` could spread across macros. |
//! | `L007` | perf | Over-wide precision: value-range analysis proves the operands and result fit a narrower lane width. |
//!
//! `error` diagnostics mean the program will not run; `warn` means it
//! wastes cycles outright; `perf` marks an optimization opportunity.
//!
//! # The optimizer
//!
//! [`Program::optimize`] applies copy propagation, common-subexpression
//! elimination, dead-store elimination and register remapping. It is
//! semantics-preserving by construction — read outputs are bit-identical
//! and [`Program::cycles`] never increases — and the differential property
//! suite (`tests/analysis_prop.rs`) enforces both over random programs at
//! every precision.

use super::{Instr, Precision, ProgError, Program, Reg};
use crate::config::MacroConfig;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program fails validation and will not run.
    Error,
    /// The program runs but provably wastes cycles (dead or unused work).
    Warn,
    /// An optimization opportunity: cycles, rows or lane capacity left on
    /// the table.
    Perf,
}

impl Severity {
    /// The wire name of this severity (`error` / `warn` / `perf`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Perf => "perf",
        }
    }

    /// Parses a wire severity name.
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "error" => Some(Severity::Error),
            "warn" => Some(Severity::Warn),
            "perf" => Some(Severity::Perf),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding from [`Program::lint`]: a stable code, a severity, the
/// instruction-index span it points at, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`E001`–`E013` for validation errors,
    /// `L001`–`L007` for lints; see the module docs for the table).
    pub code: String,
    /// How bad it is.
    pub severity: Severity,
    /// The submitted-instruction index range this diagnostic points at
    /// (half-open; whole-program diagnostics span `0..len`).
    pub span: Range<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}..{}] {}",
            self.code, self.severity, self.span.start, self.span.end, self.message
        )
    }
}

impl Diagnostic {
    fn new(
        code: &str,
        severity: Severity,
        span: Range<usize>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            span,
            message: message.into(),
        }
    }

    /// Folds a validation error into an `error`-severity diagnostic
    /// carrying the [`ProgError::code`] and the offending instruction's
    /// span.
    pub fn from_prog_error(e: &ProgError) -> Diagnostic {
        let span = e.instr().map_or(0..0, |i| i..i + 1);
        Diagnostic::new(e.code(), Severity::Error, span, e.to_string())
    }
}

/// The shared dataflow framework: reaching definitions, def-use chains and
/// liveness for one instruction stream, computed in a single linear pass.
///
/// A *definition* is an instruction that writes a register (its index
/// stands for the value it produced); a register read resolves to the most
/// recent definition of that register — the value it actually observes.
/// [`Program::partition`], [`Program::lint`] and [`Program::optimize`] are
/// all built on this map.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// Per instruction, per source (in [`Instr::sources`] order): the
    /// defining instruction's index, or `None` for a read of a
    /// never-written register.
    reaching: Vec<Vec<Option<usize>>>,
    /// Per defining instruction: the indices of instructions that read the
    /// value it produced, ascending.
    users: Vec<Vec<usize>>,
    /// Per defining instruction: the later instruction that overwrites the
    /// same register (killing the value), if any.
    killed_by: Vec<Option<usize>>,
}

impl Dataflow {
    /// Analyzes a program's submitted stream.
    pub fn of(prog: &Program) -> Dataflow {
        Dataflow::of_instrs(prog.instrs())
    }

    pub(super) fn of_instrs(instrs: &[Instr]) -> Dataflow {
        let regs = instrs
            .iter()
            .flat_map(|i| i.sources().into_iter().chain(i.dst()).map(|r| r.row() + 1))
            .max()
            .unwrap_or(0);
        let n = instrs.len();
        let mut last_def: Vec<Option<usize>> = vec![None; regs];
        let mut reaching = Vec::with_capacity(n);
        let mut users = vec![Vec::new(); n];
        let mut killed_by = vec![None; n];
        for (idx, instr) in instrs.iter().enumerate() {
            // Sources resolve before the destination updates, so an
            // instruction reading the register it overwrites sees the old
            // value — matching the executor.
            let defs: Vec<Option<usize>> = instr
                .sources()
                .iter()
                .map(|src| last_def[src.row()])
                .collect();
            for def in defs.iter().flatten() {
                let list: &mut Vec<usize> = &mut users[*def];
                if list.last() != Some(&idx) {
                    list.push(idx);
                }
            }
            reaching.push(defs);
            if let Some(dst) = instr.dst() {
                if let Some(prev) = last_def[dst.row()] {
                    killed_by[prev] = Some(idx);
                }
                last_def[dst.row()] = Some(idx);
            }
        }
        Dataflow {
            reaching,
            users,
            killed_by,
        }
    }

    /// Instructions analyzed.
    pub fn len(&self) -> usize {
        self.reaching.len()
    }

    /// True for an empty stream.
    pub fn is_empty(&self) -> bool {
        self.reaching.is_empty()
    }

    /// The reaching definition of each source of instruction `idx`, in
    /// [`Instr::sources`] order. `None` marks a use of a never-written
    /// register (the program fails validation).
    pub fn reaching_defs(&self, idx: usize) -> &[Option<usize>] {
        &self.reaching[idx]
    }

    /// The instructions that read the value defined at `def`, ascending.
    /// Empty for non-defining instructions.
    pub fn users(&self, def: usize) -> &[usize] {
        &self.users[def]
    }

    /// The instruction that overwrites `def`'s register after `def` (the
    /// value's kill point), or `None` if the value survives to the end.
    pub fn killed_by(&self, def: usize) -> Option<usize> {
        self.killed_by[def]
    }

    /// The last instruction that reads the value defined at `def` — the
    /// end of its live range. `None` for a value nobody reads.
    pub fn last_use(&self, def: usize) -> Option<usize> {
        self.users[def].last().copied()
    }

    /// The dependence component of each instruction: two instructions
    /// share a component when one reads a value the other defined
    /// (transitively). Components are numbered in order of their first
    /// instruction, so component ids are stable and ascending.
    pub fn components(&self) -> Vec<usize> {
        let n = self.len();
        let mut uf = UnionFind::new(n);
        for (idx, defs) in self.reaching.iter().enumerate() {
            for def in defs.iter().flatten() {
                uf.union(idx, *def);
            }
        }
        let mut comp_of_root: Vec<Option<usize>> = vec![None; n];
        let mut next = 0usize;
        (0..n)
            .map(|idx| {
                let root = uf.find(idx);
                *comp_of_root[root].get_or_insert_with(|| {
                    next += 1;
                    next - 1
                })
            })
            .collect()
    }
}

/// Disjoint-set forest over instruction indices (path-halving), for the
/// dependence components.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        Self((0..n).collect())
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Root at the smaller index so component roots are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

/// An inclusive interval of per-lane values a definition can hold, from
/// the value-range analysis ([`value_ranges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    /// Smallest possible lane value.
    pub lo: u64,
    /// Largest possible lane value.
    pub hi: u64,
}

impl ValueRange {
    /// True when every possible value fits `precision`'s lane width.
    pub fn fits(&self, precision: Precision) -> bool {
        self.hi <= precision.max_value()
    }
}

/// The lane layout a definition was produced at — ranges only propagate
/// between producer and consumer when their layouts agree; any mismatch
/// (or a whole-row bitwise op) degrades to the layout's full range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Dense `P`-bit lanes (`write`, `add`, `shl`, …).
    Dense(Precision),
    /// `2P`-wide product lanes (`write_mult`, `mult`).
    Product(Precision),
}

impl Layout {
    fn mask(self) -> u64 {
        match self {
            Layout::Dense(p) => p.max_value(),
            Layout::Product(p) => {
                let bits = 2 * p.bits();
                if bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                }
            }
        }
    }

    fn top(self) -> ValueRange {
        ValueRange {
            lo: 0,
            hi: self.mask(),
        }
    }
}

/// Precision-aware value-range analysis: for each instruction that defines
/// a value, the interval its lane values provably lie in, or `None` when
/// nothing can be proved (bitwise ops, layout mismatches, non-defining
/// instructions).
///
/// Intervals are sound for programs whose consumers read values at the
/// precision/layout they were produced at; a mismatched read degrades to
/// "unknown" rather than an unsound interval.
pub fn value_ranges(prog: &Program) -> Vec<Option<ValueRange>> {
    ranges_of(prog.instrs(), &Dataflow::of(prog))
        .into_iter()
        .map(|e| e.map(|(_, r)| r))
        .collect()
}

fn ranges_of(instrs: &[Instr], df: &Dataflow) -> Vec<Option<(Layout, ValueRange)>> {
    let mut out: Vec<Option<(Layout, ValueRange)>> = Vec::with_capacity(instrs.len());
    for (idx, instr) in instrs.iter().enumerate() {
        // The range of source `k`, provided its producer's layout matches.
        let src = |k: usize, want: Layout, out: &[Option<(Layout, ValueRange)>]| -> ValueRange {
            df.reaching_defs(idx)[k]
                .and_then(|def| out[def])
                .filter(|(layout, _)| *layout == want)
                .map_or(want.top(), |(_, r)| r)
        };
        let entry = match instr {
            Instr::Write {
                precision, values, ..
            } => Some((Layout::Dense(*precision), minmax(values))),
            Instr::WriteMult {
                precision, values, ..
            } => Some((Layout::Product(*precision), minmax(values))),
            Instr::Copy { .. } => df.reaching_defs(idx)[0].and_then(|def| out[def]),
            Instr::Shl { precision, .. } => {
                let layout = Layout::Dense(*precision);
                let a = src(0, layout, &out);
                Some((layout, shl_range(a, layout)))
            }
            Instr::Add { precision, .. } => {
                let layout = Layout::Dense(*precision);
                let (a, b) = (src(0, layout, &out), src(1, layout, &out));
                Some((layout, add_range(a, b, layout)))
            }
            Instr::AddShift { precision, .. } => {
                let layout = Layout::Dense(*precision);
                let (a, b) = (src(0, layout, &out), src(1, layout, &out));
                Some((layout, shl_range(add_range(a, b, layout), layout)))
            }
            Instr::Sub { precision, .. } => {
                let layout = Layout::Dense(*precision);
                let (a, b) = (src(0, layout, &out), src(1, layout, &out));
                let range = if a.lo >= b.hi {
                    ValueRange {
                        lo: a.lo - b.hi,
                        hi: a.hi - b.lo,
                    }
                } else {
                    layout.top() // may wrap
                };
                Some((layout, range))
            }
            Instr::Mult { precision, .. } => {
                let layout = Layout::Product(*precision);
                let (a, b) = (src(0, layout, &out), src(1, layout, &out));
                let range = match (a.lo.checked_mul(b.lo), a.hi.checked_mul(b.hi)) {
                    (Some(lo), Some(hi)) if hi <= layout.mask() => ValueRange { lo, hi },
                    _ => layout.top(),
                };
                Some((layout, range))
            }
            Instr::ReduceAdd {
                srcs, precision, ..
            } => {
                let layout = Layout::Dense(*precision);
                let mut acc = ValueRange { lo: 0, hi: 0 };
                let mut exact = true;
                for k in 0..srcs.len() {
                    let r = src(k, layout, &out);
                    match (acc.lo.checked_add(r.lo), acc.hi.checked_add(r.hi)) {
                        (Some(lo), Some(hi)) if hi <= layout.mask() => {
                            acc = ValueRange { lo, hi };
                        }
                        _ => {
                            exact = false;
                            break;
                        }
                    }
                }
                Some((layout, if exact { acc } else { layout.top() }))
            }
            // Whole-row bitwise ops have no lane-level interval; reads
            // define nothing.
            Instr::Logic { .. } | Instr::Not { .. } => None,
            Instr::Read { .. } | Instr::ReadProducts { .. } => None,
        };
        out.push(entry);
    }
    out
}

fn minmax(values: &[u64]) -> ValueRange {
    ValueRange {
        lo: values.iter().copied().min().unwrap_or(0),
        hi: values.iter().copied().max().unwrap_or(0),
    }
}

fn add_range(a: ValueRange, b: ValueRange, layout: Layout) -> ValueRange {
    match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
        (Some(lo), Some(hi)) if hi <= layout.mask() => ValueRange { lo, hi },
        _ => layout.top(), // may wrap in-lane
    }
}

fn shl_range(a: ValueRange, layout: Layout) -> ValueRange {
    match (a.lo.checked_mul(2), a.hi.checked_mul(2)) {
        (Some(lo), Some(hi)) if hi <= layout.mask() => ValueRange { lo, hi },
        _ => layout.top(), // the shift drops the lane's top bit
    }
}

/// One common-subexpression hit found by the CSE scan: instruction `idx`
/// recomputes the value instruction `prior` already produced (and that
/// value is still resident in `prior`'s register at `idx`).
struct CseHit {
    idx: usize,
    prior: usize,
    /// Cycles a 1-cycle `copy` (or outright removal) would save.
    saved: u64,
}

/// Value-numbering key for the multi-cycle deterministic compute ops.
/// Operand value numbers of commutative ops are sorted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Sub(Precision, usize, usize),
    Mult(Precision, usize, usize),
    Reduce(Precision, Vec<usize>),
}

/// Scans for redundant recomputation and (when `apply` is set) rewrites
/// each hit into a 1-cycle `copy` from the row still holding the value —
/// or removes the instruction outright when it would rewrite its own
/// register with the value it already holds. Returns the hits found, with
/// indices into the stream as passed in.
///
/// Values are numbered by *definition site* (copies inherit their source's
/// number), never by content: two `write`s of identical values stay
/// distinct values, so rows bound to fresh data at `run_with_inputs` time
/// are never aliased.
fn cse_scan(instrs: &mut Vec<Instr>, apply: bool) -> Vec<CseHit> {
    let regs = instrs
        .iter()
        .flat_map(|i| i.sources().into_iter().chain(i.dst()).map(|r| r.row() + 1))
        .max()
        .unwrap_or(0);
    let n = instrs.len();
    let mut last_def: Vec<Option<usize>> = vec![None; regs];
    let mut vn: Vec<usize> = (0..n).collect();
    let mut table: HashMap<CseKey, usize> = HashMap::new();
    let mut keep = vec![true; n];
    let mut hits = Vec::new();
    for idx in 0..n {
        let value_of = |r: Reg, last_def: &[Option<usize>]| -> Option<usize> {
            last_def.get(r.row()).copied().flatten().map(|d| vn[d])
        };
        let key = match &instrs[idx] {
            Instr::Sub {
                a, b, precision, ..
            } => value_of(*a, &last_def)
                .zip(value_of(*b, &last_def))
                .map(|(va, vb)| CseKey::Sub(*precision, va, vb)),
            Instr::Mult {
                a, b, precision, ..
            } => value_of(*a, &last_def)
                .zip(value_of(*b, &last_def))
                .map(|(va, vb)| CseKey::Mult(*precision, va.min(vb), va.max(vb))),
            Instr::ReduceAdd {
                srcs, precision, ..
            } => srcs
                .iter()
                .map(|s| value_of(*s, &last_def))
                .collect::<Option<Vec<usize>>>()
                .map(|mut vs| {
                    vs.sort_unstable();
                    CseKey::Reduce(*precision, vs)
                }),
            _ => None,
        };
        if let Some(key) = key {
            let prior = table.get(&key).copied().filter(|&p| {
                // The prior result must still be resident in its register.
                let pd = instrs[p].dst().expect("CSE candidates define");
                last_def[pd.row()] == Some(p)
            });
            if let Some(prior) = prior {
                let pd = instrs[prior].dst().expect("CSE candidates define");
                let dst = instrs[idx].dst().expect("CSE candidates define");
                if dst.row() == pd.row() {
                    // Recomputing into the register that already holds the
                    // value: a pure no-op, remove it. The register's live
                    // definition stays `prior`.
                    hits.push(CseHit {
                        idx,
                        prior,
                        saved: instrs[idx].cycles(),
                    });
                    if apply {
                        keep[idx] = false;
                    } else {
                        last_def[dst.row()] = Some(idx);
                        vn[idx] = vn[prior];
                    }
                    continue;
                }
                hits.push(CseHit {
                    idx,
                    prior,
                    saved: instrs[idx].cycles() - 1,
                });
                if apply {
                    instrs[idx] = Instr::Copy { src: pd, dst };
                }
                vn[idx] = vn[prior];
                last_def[dst.row()] = Some(idx);
                continue;
            }
            table.insert(key, idx);
        }
        if let Instr::Copy { src, .. } = &instrs[idx] {
            if let Some(v) = value_of(*src, &last_def) {
                vn[idx] = v;
            }
        }
        if let Some(dst) = instrs[idx].dst() {
            last_def[dst.row()] = Some(idx);
        }
    }
    if apply && keep.iter().any(|k| !k) {
        let mut it = keep.iter();
        instrs.retain(|_| *it.next().expect("keep is instr-aligned"));
    }
    hits
}

/// Rewrites every source register through `f`, preserving the
/// per-variant order of [`Instr::sources`].
fn map_sources(instr: &mut Instr, mut f: impl FnMut(Reg) -> Reg) {
    match instr {
        Instr::Write { .. } | Instr::WriteMult { .. } => {}
        Instr::Read { src, .. }
        | Instr::ReadProducts { src, .. }
        | Instr::Not { src, .. }
        | Instr::Copy { src, .. }
        | Instr::Shl { src, .. } => *src = f(*src),
        Instr::Logic { a, b, .. }
        | Instr::Add { a, b, .. }
        | Instr::AddShift { a, b, .. }
        | Instr::Sub { a, b, .. }
        | Instr::Mult { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        Instr::ReduceAdd { srcs, .. } => {
            for s in srcs {
                *s = f(*s);
            }
        }
    }
}

/// Copy propagation: a source whose reaching definition is a `copy` reads
/// the copy's origin register directly, provided the origin still holds
/// the same value at the point of use (and the rewrite would not alias the
/// two operands of a dual-WL op). A `copy` duplicates the entire row, so
/// the rewrite is bit-exact even for raw-layout reads. Returns true if
/// anything changed.
fn copy_propagate(instrs: &mut [Instr]) -> bool {
    let regs = instrs
        .iter()
        .flat_map(|i| i.sources().into_iter().chain(i.dst()).map(|r| r.row() + 1))
        .max()
        .unwrap_or(0);
    let n = instrs.len();
    let mut last_def: Vec<Option<usize>> = vec![None; regs];
    // For each `copy` definition: its (origin register, origin's def).
    let mut copy_src: Vec<Option<(Reg, usize)>> = vec![None; n];
    let mut changed = false;
    for idx in 0..n {
        let resolve = |mut r: Reg, last_def: &[Option<usize>]| -> Reg {
            loop {
                let Some(def) = last_def.get(r.row()).copied().flatten() else {
                    return r;
                };
                let Some((origin, origin_def)) = copy_src[def] else {
                    return r;
                };
                // The origin register must still hold the value the copy
                // duplicated.
                if last_def.get(origin.row()).copied().flatten() != Some(origin_def) {
                    return r;
                }
                r = origin;
            }
        };
        match &mut instrs[idx] {
            // Dual-WL ops must keep distinct operand rows: skip the
            // rewrite entirely if propagation would alias them.
            Instr::Logic { a, b, .. } | Instr::Add { a, b, .. } | Instr::AddShift { a, b, .. } => {
                let (ra, rb) = (resolve(*a, &last_def), resolve(*b, &last_def));
                if ra != rb && (ra != *a || rb != *b) {
                    *a = ra;
                    *b = rb;
                    changed = true;
                }
            }
            other => map_sources(other, |r| {
                let nr = resolve(r, &last_def);
                changed |= nr != r;
                nr
            }),
        }
        if let Instr::Copy { src, .. } = &instrs[idx] {
            copy_src[idx] = last_def[src.row()].map(|d| (*src, d));
        }
        if let Some(dst) = instrs[idx].dst() {
            last_def[dst.row()] = Some(idx);
        }
    }
    changed
}

/// One dead-store-elimination sweep: removes every defining instruction
/// whose value has no users (reads are never candidates — they define
/// nothing — so the output shape is untouched). Returns true if anything
/// was removed; callers loop to a fixpoint since a removal can orphan the
/// defs that fed it.
fn dse_sweep(instrs: &mut Vec<Instr>) -> bool {
    let df = Dataflow::of_instrs(instrs);
    let dead: Vec<bool> = (0..instrs.len())
        .map(|i| instrs[i].dst().is_some() && df.users(i).is_empty())
        .collect();
    if !dead.contains(&true) {
        return false;
    }
    let mut it = dead.iter();
    instrs.retain(|_| !*it.next().expect("dead is instr-aligned"));
    true
}

/// Linear-scan register remap: assigns each *value* (definition) the
/// lowest-numbered register free over its live range, packing the row
/// budget. The destination register is kept distinct from the same
/// instruction's source registers (conservative: multi-cycle ops may
/// stream their operands while writing the destination). Returns the
/// rewritten stream and its register count, or `None` when the stream has
/// an unresolvable read.
fn compute_remap(instrs: &[Instr]) -> Option<(Vec<Instr>, usize)> {
    let df = Dataflow::of_instrs(instrs);
    let n = instrs.len();
    for idx in 0..n {
        if df.reaching_defs(idx).iter().any(Option::is_none) {
            return None;
        }
    }
    let end: Vec<usize> = (0..n).map(|i| df.last_use(i).unwrap_or(i)).collect();
    let mut assigned: Vec<Option<u16>> = vec![None; n];
    let mut active: Vec<(u16, usize)> = Vec::new(); // (register, live-range end)
    let mut in_use: Vec<bool> = Vec::new();
    let mut out = Vec::with_capacity(n);
    for (idx, instr) in instrs.iter().enumerate() {
        active.retain(|&(r, e)| {
            if e < idx {
                in_use[r as usize] = false;
                false
            } else {
                true
            }
        });
        let mut rewritten = instr.clone();
        // Sources first: they read values defined earlier.
        let defs = df.reaching_defs(idx);
        let mut k = 0usize;
        map_sources(&mut rewritten, |_| {
            let def = defs[k].expect("checked above");
            k += 1;
            Reg(assigned[def].expect("defs precede uses"))
        });
        if instr.dst().is_some() {
            // Values still live here (including this instruction's own
            // sources) hold their registers; take the lowest free one.
            let reg = (0..u16::MAX)
                .find(|&r| in_use.get(r as usize).copied() != Some(true))
                .expect("register demand never exceeds the original count");
            if reg as usize >= in_use.len() {
                in_use.resize(reg as usize + 1, false);
            }
            in_use[reg as usize] = true;
            active.push((reg, end[idx]));
            assigned[idx] = Some(reg);
            set_dst(&mut rewritten, Reg(reg));
        }
        out.push(rewritten);
    }
    let new_regs = in_use.len();
    Some((out, new_regs))
}

fn set_dst(instr: &mut Instr, reg: Reg) {
    match instr {
        Instr::Read { .. } | Instr::ReadProducts { .. } => {}
        Instr::Write { dst, .. }
        | Instr::WriteMult { dst, .. }
        | Instr::Logic { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Shl { dst, .. }
        | Instr::Add { dst, .. }
        | Instr::AddShift { dst, .. }
        | Instr::Sub { dst, .. }
        | Instr::Mult { dst, .. }
        | Instr::ReduceAdd { dst, .. } => *dst = reg,
    }
}

impl Program {
    /// Lints the program against a macro configuration, returning
    /// diagnostics ordered by instruction span (see the
    /// [module docs](self) for the code table).
    ///
    /// A program that fails [`Program::validate`] returns exactly one
    /// `error` diagnostic carrying the [`ProgError::code`]; further
    /// analysis of an invalid stream would be unreliable, so lints are
    /// only reported for valid programs.
    pub fn lint(&self, config: &MacroConfig) -> Vec<Diagnostic> {
        if let Err(e) = self.validate(config) {
            return vec![Diagnostic::from_prog_error(&e)];
        }
        let df = Dataflow::of(self);
        let mut out = Vec::new();
        self.lint_dead_and_unused(&df, &mut out);
        self.lint_redundant(&mut out);
        self.lint_missed_fusion(&df, &mut out);
        self.lint_recyclable_regs(&mut out);
        self.lint_splittable(&df, &mut out);
        self.lint_over_wide(&df, &mut out);
        out.sort_by(|a, b| (a.span.start, &a.code).cmp(&(b.span.start, &b.code)));
        out
    }

    /// L001 (dead store) and L002 (unused result).
    fn lint_dead_and_unused(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        for (idx, instr) in self.instrs().iter().enumerate() {
            let Some(dst) = instr.dst() else { continue };
            if !df.users(idx).is_empty() {
                continue;
            }
            match df.killed_by(idx) {
                Some(kill) => out.push(Diagnostic::new(
                    "L001",
                    Severity::Warn,
                    idx..idx + 1,
                    format!(
                        "instr {idx}: {} result in {dst} is overwritten at instr {kill} \
                         before any instruction reads it",
                        instr.name()
                    ),
                )),
                None => out.push(Diagnostic::new(
                    "L002",
                    Severity::Warn,
                    idx..idx + 1,
                    format!(
                        "instr {idx}: {} result in {dst} is never used",
                        instr.name()
                    ),
                )),
            }
        }
    }

    /// L003 (redundant recomputation a copy could replace).
    fn lint_redundant(&self, out: &mut Vec<Diagnostic>) {
        let mut scratch = self.instrs().to_vec();
        for hit in cse_scan(&mut scratch, false) {
            out.push(Diagnostic::new(
                "L003",
                Severity::Perf,
                hit.idx..hit.idx + 1,
                format!(
                    "instr {}: recomputes the {} already computed at instr {}; \
                     a copy of the still-resident result would save {} cycle(s)",
                    hit.idx,
                    self.instrs()[hit.idx].name(),
                    hit.prior,
                    hit.saved
                ),
            ));
        }
    }

    /// L004 (missed add+shl fusion).
    fn lint_missed_fusion(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        // Submitted indices consumed by a fused pair: the billed index (the
        // add) plus the following shl.
        let mut fused = vec![false; self.instrs().len()];
        for (instr, idx) in self.lower_indexed() {
            if matches!(instr, Instr::AddShift { .. })
                && matches!(self.instrs()[idx], Instr::Add { .. })
            {
                fused[idx] = true;
                fused[idx + 1] = true;
            }
        }
        for (idx, instr) in self.instrs().iter().enumerate() {
            let Instr::Shl { precision, .. } = instr else {
                continue;
            };
            if fused[idx] {
                continue;
            }
            let Some(def) = df.reaching_defs(idx)[0] else {
                continue;
            };
            let Instr::Add {
                dst: t,
                precision: add_p,
                ..
            } = &self.instrs()[def]
            else {
                continue;
            };
            if add_p != precision {
                continue;
            }
            let msg = if def + 1 == idx {
                let reader = df
                    .users(def)
                    .iter()
                    .copied()
                    .find(|&u| u > idx)
                    .unwrap_or(idx);
                format!(
                    "instr {idx}: add+shl pair does not fuse because the intermediate sum \
                     in {t} is read again at instr {reader}; copying the sum first would \
                     let the pair fuse into a 1-cycle add_shift"
                )
            } else {
                format!(
                    "instr {idx}: shl of the sum computed at instr {def}; if the shl \
                     immediately followed the add they would fuse into a 1-cycle add_shift"
                )
            };
            out.push(Diagnostic::new("L004", Severity::Perf, idx..idx + 1, msg));
        }
    }

    /// L005 (register remap would shrink the row budget).
    fn lint_recyclable_regs(&self, out: &mut Vec<Diagnostic>) {
        let fused = self.lowered();
        if let Some((_, new_regs)) = compute_remap(&fused) {
            if new_regs < self.reg_count() {
                out.push(Diagnostic::new(
                    "L005",
                    Severity::Perf,
                    0..self.instrs().len(),
                    format!(
                        "program uses {} registers where {} suffice; remapping \
                         (Program::optimize) would free {} row(s)",
                        self.reg_count(),
                        new_regs,
                        self.reg_count() - new_regs
                    ),
                ));
            }
        }
    }

    /// L006 (independent components could run on separate macros).
    fn lint_splittable(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        let comp = df.components();
        let count = comp.iter().copied().max().map_or(0, |m| m + 1);
        if count > 1 {
            let makespan = self.predicted_makespan(count);
            out.push(Diagnostic::new(
                "L006",
                Severity::Perf,
                0..self.instrs().len(),
                format!(
                    "program splits into {count} independent components; run_partitioned \
                     across {count} macros would finish in {makespan} of its {} cycles",
                    self.cycles()
                ),
            ));
        }
    }

    /// L007 (value ranges prove a narrower precision suffices).
    fn lint_over_wide(&self, df: &Dataflow, out: &mut Vec<Diagnostic>) {
        let ranges = ranges_of(self.instrs(), df);
        for (idx, instr) in self.instrs().iter().enumerate() {
            let (p, is_mult) = match instr {
                Instr::Write { precision, .. }
                | Instr::Shl { precision, .. }
                | Instr::Add { precision, .. }
                | Instr::AddShift { precision, .. }
                | Instr::Sub { precision, .. }
                | Instr::ReduceAdd { precision, .. } => (*precision, false),
                Instr::Mult { precision, .. } => (*precision, true),
                _ => continue,
            };
            // The op provably fits a narrower lane width only if its own
            // result and every operand do.
            let mut needed: u64 = 0;
            let mut exact = true;
            let mut consider = |entry: Option<(Layout, ValueRange)>| match entry {
                Some((_, r)) => needed = needed.max(r.hi),
                None => exact = false,
            };
            if is_mult {
                // Cycles scale with P: prove the *operands* fit narrower.
                for def in df.reaching_defs(idx) {
                    consider(def.and_then(|d| ranges[d]));
                }
            } else {
                consider(ranges[idx]);
                for def in df.reaching_defs(idx) {
                    consider(def.and_then(|d| ranges[d]));
                }
            }
            if !exact {
                continue;
            }
            // A top interval never fits a narrower width, so this is
            // self-limiting to genuinely proved ranges.
            let narrower = Precision::ALL
                .iter()
                .copied()
                .filter(|q| q.bits() < p.bits() && needed <= q.max_value())
                .min_by_key(|q| q.bits());
            if let Some(q) = narrower {
                let msg = if is_mult {
                    format!(
                        "instr {idx}: operands provably fit {} bits (max value {needed}); \
                         mult at P{} would take {} instead of {} cycles",
                        q.bits(),
                        q.bits(),
                        q.bits() + 2,
                        p.bits() + 2
                    )
                } else {
                    format!(
                        "instr {idx}: values provably fit {} bits (max value {needed}); \
                         P{} lanes would {}x the per-row capacity",
                        q.bits(),
                        q.bits(),
                        p.bits() / q.bits()
                    )
                };
                out.push(Diagnostic::new("L007", Severity::Perf, idx..idx + 1, msg));
            }
        }
    }

    /// Optimizes the program without changing what it computes: copy
    /// propagation, common-subexpression elimination (multi-cycle ops whose
    /// value is still resident become 1-cycle copies), dead-store
    /// elimination to a fixpoint, and a register remap that packs the row
    /// budget (adopted only when it strictly shrinks it).
    ///
    /// Guarantees, enforced by the differential property suite:
    ///
    /// * **Bit-identical outputs** — every `read`/`read_products` returns
    ///   exactly the bits the original program returns, for any input
    ///   binding of the surviving writes.
    /// * **Cycles never increase** — [`Program::cycles`] of the result is
    ///   ≤ the original's (if a rewrite cannot win, the original is
    ///   returned unchanged).
    /// * **The static cost model stays exact** — the optimized program is
    ///   an ordinary [`Program`], so [`Program::run`] still asserts
    ///   `predicted_activity` against the execution log.
    ///
    /// The instruction *stream* may shrink (dead stores vanish, fusable
    /// `add`+`shl` pairs are materialized as explicit `add_shift`), so
    /// per-instruction reports and `run_with_inputs` bindings index the
    /// optimized stream, not the submitted one. Reads are never reordered
    /// or removed; surviving writes keep their relative order. A
    /// structurally invalid program (a read with no reaching definition)
    /// is returned unchanged — validation owns that reporting.
    pub fn optimize(&self) -> Program {
        let df = Dataflow::of(self);
        for idx in 0..df.len() {
            if df.reaching_defs(idx).iter().any(Option::is_none) {
                return self.clone();
            }
        }
        let mut instrs = self.instrs().to_vec();
        let mut changed = false;
        // To a fixpoint: a CSE rewrite introduces a copy that the next
        // round's propagation can forward and DSE can then collect, so one
        // pipeline pass is not always enough. Each productive round
        // strictly reduces (duplicates, copies or instructions), so this
        // terminates.
        loop {
            let mut round = copy_propagate(&mut instrs);
            round |= !cse_scan(&mut instrs, true).is_empty();
            while dse_sweep(&mut instrs) {
                round = true;
            }
            if !round {
                break;
            }
            changed = true;
        }
        // Materialize the fusion lowering would perform, so the register
        // remap cannot extend an intermediate sum's live range and un-fuse
        // a pair behind our back.
        let fused = Program::new(instrs).lowered();
        let fused_regs = Program::new(fused.clone()).reg_count();
        let final_instrs = match compute_remap(&fused) {
            Some((remapped, new_regs)) if new_regs < fused_regs => remapped,
            _ if changed => fused,
            _ => return self.clone(),
        };
        let optimized = Program::new(final_instrs);
        // Defensive: no rewrite is ever allowed to cost cycles.
        if optimized.cycles() > self.cycles() {
            self.clone()
        } else {
            optimized
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macroblock::ImcMacro;

    fn cfg() -> MacroConfig {
        MacroConfig::paper_macro()
    }

    fn codes(instrs: Vec<Instr>) -> Vec<String> {
        Program::new(instrs)
            .lint(&cfg())
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    /// P2 keeps L007 quiet in triggers aimed at other codes: 3 saturates
    /// the narrowest lane width, so no narrower precision can fit.
    const P: Precision = Precision::P2;

    fn w(dst: u16, v: u64) -> Instr {
        Instr::Write {
            dst: Reg(dst),
            precision: P,
            values: vec![v],
        }
    }

    fn rd(src: u16) -> Instr {
        Instr::Read {
            src: Reg(src),
            precision: P,
            n: 1,
        }
    }

    /// Outputs of both programs on fresh macros, for differential checks.
    fn outputs(prog: &Program) -> Vec<Vec<u64>> {
        let mut mac = ImcMacro::new(cfg());
        prog.run(&mut mac).unwrap().outputs
    }

    #[test]
    fn dataflow_resolves_defs_uses_and_kills() {
        let instrs = vec![
            w(0, 3), // 0: defines r0
            w(1, 2), // 1: defines r1
            Instr::Add {
                a: Reg(0),
                b: Reg(1),
                dst: Reg(0), // 2: reads old r0, then kills 0
                precision: P,
            },
            rd(0), // 3: reads the sum
        ];
        let df = Dataflow::of_instrs(&instrs);
        assert_eq!(df.len(), 4);
        assert_eq!(df.reaching_defs(2), &[Some(0), Some(1)]);
        assert_eq!(df.reaching_defs(3), &[Some(2)]);
        assert_eq!(df.users(0), &[2]);
        assert_eq!(df.users(2), &[3]);
        assert_eq!(df.killed_by(0), Some(2));
        assert_eq!(df.killed_by(2), None);
        assert_eq!(df.last_use(1), Some(2));
        assert_eq!(df.components(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn components_split_independent_chains() {
        let df = Dataflow::of_instrs(&[w(0, 3), rd(0), w(1, 3), rd(1)]);
        assert_eq!(df.components(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn value_ranges_track_arithmetic_and_give_up_on_logic() {
        let p = Precision::P8;
        let prog = Program::new(vec![
            Instr::Write {
                dst: Reg(0),
                precision: p,
                values: vec![10, 20],
            },
            Instr::Write {
                dst: Reg(1),
                precision: p,
                values: vec![1, 2],
            },
            Instr::Add {
                a: Reg(0),
                b: Reg(1),
                dst: Reg(2),
                precision: p,
            },
            Instr::Logic {
                op: crate::LogicOp::Xor,
                a: Reg(0),
                b: Reg(1),
                dst: Reg(3),
            },
            Instr::Read {
                src: Reg(2),
                precision: p,
                n: 2,
            },
        ]);
        let ranges = value_ranges(&prog);
        assert_eq!(ranges[0], Some(ValueRange { lo: 10, hi: 20 }));
        assert_eq!(ranges[2], Some(ValueRange { lo: 11, hi: 22 }));
        assert_eq!(ranges[3], None); // bitwise: no lane interval
        assert_eq!(ranges[4], None); // reads define nothing
        assert!(ranges[2].unwrap().fits(Precision::P8));
        assert!(!ranges[2].unwrap().fits(Precision::P4));
    }

    #[test]
    fn value_ranges_degrade_to_top_on_possible_wrap() {
        let prog = Program::new(vec![
            w(0, 3),
            w(1, 3),
            Instr::Add {
                a: Reg(0),
                b: Reg(1),
                dst: Reg(2),
                precision: P, // 3 + 3 wraps in a 2-bit lane
            },
            rd(2),
        ]);
        assert_eq!(value_ranges(&prog)[2], Some(ValueRange { lo: 0, hi: 3 }));
    }

    #[test]
    fn invalid_program_lints_as_one_error_diagnostic() {
        let diags = Program::new(vec![Instr::Add {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(2),
            precision: P,
        }])
        .lint(&cfg());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E002"); // UseBeforeDef
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span, 0..1);
    }

    #[test]
    fn l001_dead_store_fires_and_is_silent_when_fixed() {
        let trigger = vec![w(0, 3), w(0, 2), rd(0)];
        let diags = Program::new(trigger).lint(&cfg());
        let l001: Vec<_> = diags.iter().filter(|d| d.code == "L001").collect();
        assert_eq!(l001.len(), 1);
        assert_eq!(l001[0].severity, Severity::Warn);
        assert_eq!(l001[0].span, 0..1);
        assert!(!codes(vec![w(0, 2), rd(0)]).contains(&"L001".to_string()));
    }

    #[test]
    fn l002_unused_result_fires_and_is_silent_when_fixed() {
        let trigger = vec![w(0, 3), w(1, 3), rd(0)];
        let diags = Program::new(trigger).lint(&cfg());
        let l002: Vec<_> = diags.iter().filter(|d| d.code == "L002").collect();
        assert_eq!(l002.len(), 1);
        assert_eq!(l002[0].span, 1..2);
        assert!(!codes(vec![w(0, 3), rd(0)]).contains(&"L002".to_string()));
    }

    #[test]
    fn l003_redundant_recompute_fires_and_is_silent_when_fixed() {
        let sub = |dst: u16| Instr::Sub {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(dst),
            precision: P,
        };
        let trigger = vec![w(0, 3), w(1, 1), sub(2), sub(3), rd(2), rd(3)];
        let diags = Program::new(trigger).lint(&cfg());
        let l003: Vec<_> = diags.iter().filter(|d| d.code == "L003").collect();
        assert_eq!(l003.len(), 1);
        assert_eq!(l003[0].span, 3..4);
        let fixed = vec![
            w(0, 3),
            w(1, 1),
            sub(2),
            Instr::Copy {
                src: Reg(2),
                dst: Reg(3),
            },
            rd(2),
            rd(3),
        ];
        assert!(!codes(fixed).contains(&"L003".to_string()));
    }

    #[test]
    fn l004_missed_fusion_fires_and_is_silent_when_fixed() {
        let add = Instr::Add {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(2),
            precision: P,
        };
        let shl = Instr::Shl {
            src: Reg(2),
            dst: Reg(3),
            precision: P,
        };
        // The pair is adjacent but the intermediate sum is read again
        // later, so the lowering pass cannot fuse it.
        let trigger = vec![w(0, 3), w(1, 3), add.clone(), shl.clone(), rd(3), rd(2)];
        let diags = Program::new(trigger).lint(&cfg());
        let l004: Vec<_> = diags.iter().filter(|d| d.code == "L004").collect();
        assert_eq!(l004.len(), 1);
        assert_eq!(l004[0].span, 3..4);
        // Without the extra read the pair fuses and the lint is silent.
        let fixed = vec![w(0, 3), w(1, 3), add, shl, rd(3)];
        assert!(!codes(fixed).contains(&"L004".to_string()));
    }

    #[test]
    fn l005_recyclable_registers_fires_and_is_silent_when_fixed() {
        let trigger = vec![w(0, 3), rd(0), w(1, 3), rd(1)];
        assert!(codes(trigger).contains(&"L005".to_string()));
        let fixed = vec![w(0, 3), rd(0), w(0, 3), rd(0)];
        assert!(!codes(fixed).contains(&"L005".to_string()));
    }

    #[test]
    fn l006_splittable_fires_and_is_silent_when_fixed() {
        let trigger = vec![w(0, 3), rd(0), w(1, 3), rd(1)];
        assert!(codes(trigger).contains(&"L006".to_string()));
        let fixed = vec![w(0, 3), rd(0)];
        assert!(!codes(fixed).contains(&"L006".to_string()));
    }

    #[test]
    fn l007_over_wide_precision_fires_and_is_silent_when_fixed() {
        let trigger = vec![
            Instr::Write {
                dst: Reg(0),
                precision: Precision::P8,
                values: vec![1, 2],
            },
            Instr::Read {
                src: Reg(0),
                precision: Precision::P8,
                n: 2,
            },
        ];
        let diags = Program::new(trigger).lint(&cfg());
        let l007: Vec<_> = diags.iter().filter(|d| d.code == "L007").collect();
        assert_eq!(l007.len(), 1);
        assert_eq!(l007[0].span, 0..1);
        let fixed = vec![
            Instr::Write {
                dst: Reg(0),
                precision: Precision::P8,
                values: vec![1, 255],
            },
            Instr::Read {
                src: Reg(0),
                precision: Precision::P8,
                n: 2,
            },
        ];
        assert!(!codes(fixed).contains(&"L007".to_string()));
    }

    #[test]
    fn diagnostics_are_sorted_by_span_then_code() {
        let diags = Program::new(vec![w(0, 3), w(0, 2), rd(0), w(1, 3), rd(1)]).lint(&cfg());
        let keys: Vec<_> = diags
            .iter()
            .map(|d| (d.span.start, d.code.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn optimize_returns_clean_programs_unchanged() {
        let prog = Program::new(vec![
            w(0, 3),
            w(1, 2),
            Instr::Add {
                a: Reg(0),
                b: Reg(1),
                dst: Reg(1),
                precision: P,
            },
            rd(1),
        ]);
        let opt = prog.optimize();
        assert_eq!(opt.instrs(), prog.instrs());
        assert_eq!(opt.cycles(), prog.cycles());
    }

    #[test]
    fn optimize_eliminates_dead_stores() {
        let prog = Program::new(vec![w(0, 3), w(0, 2), rd(0), w(1, 1)]);
        let opt = prog.optimize();
        assert_eq!(opt.instrs(), vec![w(0, 2), rd(0)]);
        assert!(opt.cycles() < prog.cycles());
        assert_eq!(outputs(&opt), outputs(&prog));
    }

    #[test]
    fn optimize_rewrites_redundant_mult_into_copy() {
        let p = Precision::P8;
        let wm = |dst: u16, v: u64| Instr::WriteMult {
            dst: Reg(dst),
            precision: p,
            values: vec![v],
        };
        let mult = |dst: u16| Instr::Mult {
            a: Reg(0),
            b: Reg(1),
            dst: Reg(dst),
            precision: p,
        };
        let rp = |src: u16| Instr::ReadProducts {
            src: Reg(src),
            precision: p,
            n: 1,
        };
        let prog = Program::new(vec![wm(0, 7), wm(1, 9), mult(2), mult(3), rp(2), rp(3)]);
        let opt = prog.optimize();
        // The recomputed product becomes a copy, the copy is forwarded
        // into the read, and the dead copy is collected: the whole P+2
        // cycle recomputation vanishes.
        assert_eq!(opt.cycles(), prog.cycles() - (p.bits() as u64 + 2));
        assert_eq!(outputs(&opt), outputs(&prog));
        let mults = opt
            .instrs()
            .iter()
            .filter(|i| matches!(i, Instr::Mult { .. }))
            .count();
        assert_eq!(mults, 1);
    }

    #[test]
    fn optimize_propagates_copies_and_drops_them_dead() {
        let prog = Program::new(vec![
            w(0, 3),
            Instr::Copy {
                src: Reg(0),
                dst: Reg(1),
            },
            rd(1),
        ]);
        let opt = prog.optimize();
        assert_eq!(opt.instrs(), vec![w(0, 3), rd(0)]);
        assert_eq!(outputs(&opt), outputs(&prog));
    }

    #[test]
    fn optimize_remaps_registers_to_shrink_the_row_budget() {
        let prog = Program::new(vec![w(0, 3), rd(0), w(5, 2), rd(5)]);
        let opt = prog.optimize();
        assert!(opt.reg_count() < prog.reg_count());
        assert_eq!(outputs(&opt), outputs(&prog));
        assert_eq!(opt.cycles(), prog.cycles());
    }

    #[test]
    fn optimize_never_unfuses_an_add_shl_pair() {
        // add+shl fuses to one cycle; the optimizer must not rewrite the
        // stream into a shape the lowering pass can no longer fuse.
        let prog = Program::new(vec![
            w(0, 3),
            w(1, 2),
            Instr::Add {
                a: Reg(0),
                b: Reg(1),
                dst: Reg(2),
                precision: P,
            },
            Instr::Shl {
                src: Reg(2),
                dst: Reg(3),
                precision: P,
            },
            rd(3),
        ]);
        let opt = prog.optimize();
        assert!(opt.cycles() <= prog.cycles());
        assert_eq!(outputs(&opt), outputs(&prog));
    }

    #[test]
    fn optimize_leaves_invalid_programs_alone() {
        let instrs = vec![Instr::Not {
            src: Reg(0),
            dst: Reg(1),
        }];
        let prog = Program::new(instrs.clone());
        assert_eq!(prog.optimize().instrs(), instrs);
    }

    #[test]
    fn optimized_programs_still_assert_predicted_activity() {
        // `Program::run` asserts the static cost model against the
        // execution log; an optimized program must still satisfy it.
        let prog = Program::new(vec![
            w(0, 3),
            Instr::Copy {
                src: Reg(0),
                dst: Reg(2),
            },
            w(1, 1),
            Instr::Sub {
                a: Reg(2),
                b: Reg(1),
                dst: Reg(4),
                precision: P,
            },
            Instr::Sub {
                a: Reg(2),
                b: Reg(1),
                dst: Reg(5),
                precision: P,
            },
            rd(4),
            rd(5),
        ]);
        let opt = prog.optimize();
        assert!(opt.cycles() < prog.cycles());
        let mut mac = ImcMacro::new(cfg());
        let run = opt.run(&mut mac).unwrap(); // asserts internally
        assert_eq!(run.outputs, outputs(&prog));
    }
}
