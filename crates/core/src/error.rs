//! Error type of the macro executor.

use bpimc_array::ArrayError;
use std::fmt;

/// Errors from macro operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An underlying array access failed.
    Array(ArrayError),
    /// More words were supplied/requested than the row has lanes for.
    TooManyWords {
        /// Lanes requested.
        requested: usize,
        /// Lanes available at this precision and row width.
        available: usize,
    },
    /// A word value does not fit the configured precision.
    WordTooWide {
        /// The offending value.
        value: u64,
        /// The precision in bits.
        bits: usize,
    },
    /// The configured precision does not fit the row even once.
    PrecisionTooWide {
        /// The precision in bits (doubled for multiplication lanes).
        needed_bits: usize,
        /// The row width in columns.
        cols: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Array(e) => write!(f, "array access failed: {e}"),
            Error::TooManyWords {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} words requested but only {available} lanes available"
                )
            }
            Error::WordTooWide { value, bits } => {
                write!(f, "word {value:#x} does not fit in {bits} bits")
            }
            Error::PrecisionTooWide { needed_bits, cols } => {
                write!(
                    f,
                    "operation needs {needed_bits}-bit lanes but the row has {cols} columns"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Array(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<ArrayError> for Error {
    fn from(e: ArrayError) -> Self {
        Error::Array(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_array::RowAddr;

    #[test]
    fn displays_and_sources() {
        let e = Error::from(ArrayError::SameRowTwice(RowAddr::Main(1)));
        assert!(e.to_string().contains("array access"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::TooManyWords {
            requested: 20,
            available: 16,
        };
        assert!(e.to_string().contains("20"));
        let e = Error::WordTooWide {
            value: 256,
            bits: 8,
        };
        assert!(e.to_string().contains("8"));
    }
}
