//! The bit-parallel 6T SRAM in-memory-computing macro — the paper's primary
//! contribution.
//!
//! An [`ImcMacro`] is a functional, cycle-accurate model of one 128 x 128
//! macro of the paper's Fig. 3: the 6T array with its three dummy rows, the
//! BL separator, and the column peripherals (FA-Logics, Y-path muxes,
//! multiplier flip-flops). It executes the full operation set of the
//! paper's Table I with the documented cycle counts:
//!
//! | operation | cycles |
//! |---|---|
//! | NAND/AND, NOR/OR, XNOR/XOR | 1 |
//! | NOT, shift (<<1), copy | 1 |
//! | ADD, ADD-shift | 1 |
//! | SUB | 2 |
//! | N-bit MULT | N + 2 |
//!
//! All data operations are *bit-parallel*: one op processes every word lane
//! of the row at once, with the carry chain segmented per the configured
//! [`Precision`] (2/4/8-bit in the paper, 16/32-bit by the same
//! construction). Every cycle is logged ([`activity`]) so the energy model
//! in `bpimc-metrics` can reproduce the paper's Table II.
//!
//! The 128 KB chip of the paper (4 banks of 16 macros) is modelled by
//! [`Chip`].
//!
//! # Examples
//!
//! ```
//! use bpimc_core::{ImcMacro, MacroConfig, Precision};
//!
//! # fn main() -> Result<(), bpimc_core::Error> {
//! let mut mac = ImcMacro::new(MacroConfig::paper_macro());
//! mac.write_words(0, Precision::P8, &[100, 37])?;
//! mac.write_words(1, Precision::P8, &[23, 200])?;
//! let cycles = mac.sub(0, 1, 2, Precision::P8)?;
//! assert_eq!(cycles, 2); // Table I: SUB takes 2 cycles
//! assert_eq!(mac.read_words(2, Precision::P8, 2)?, vec![77, 93]); // 37-200 wraps
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod bank;
pub mod config;
pub mod error;
pub mod isa;
pub mod json;
pub mod macrobank;
pub mod macroblock;
pub mod prog;
pub mod wire;
pub mod words;

pub use activity::{ActivityLog, CycleActivity, OpRecord, SessionActivity};
pub use bank::Chip;
pub use config::MacroConfig;
pub use error::Error;
pub use isa::OpKind;
pub use macrobank::MacroBank;
pub use macroblock::ImcMacro;
pub use prog::analysis::{Dataflow, Diagnostic, Severity, ValueRange};
pub use prog::{
    CompiledProgram, Instr, PartitionedRun, ProgError, Program, ProgramBuilder, ProgramRun, Reg,
    SubProgram,
};
pub use wire::{
    instr_from_json, instr_to_json, ErrorBody, ErrorKind, LaneOp, LimitKind, ProgramEntry,
    ProgramReport, Request, RequestBody, Response, ResponseBody, RunStatus, SessionInfo,
    StoredMeta, StoredTarget,
};

// A failed batch job, as surfaced by `MacroBank::try_run_batch`, and the
// cooperative cancellation token its `_cancellable` variants take.
pub use bpimc_stats::parallel::{CancelToken, CancellableBatch, JobPanic};

// The precision type is part of this crate's public vocabulary.
pub use bpimc_periph::{LogicOp, Precision};
