//! Macro and chip configuration.

use bpimc_array::ArrayGeometry;

/// Configuration of one in-memory-computing macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroConfig {
    /// Array geometry (rows, columns, dummy rows, interleave).
    pub geometry: ArrayGeometry,
    /// Whether the BL separator feature is active (shields dummy-row
    /// write-backs from the main bit-line capacitance).
    pub separator_enabled: bool,
}

impl MacroConfig {
    /// The paper's macro: 128 x 128, 3 dummy rows, separator on.
    pub fn paper_macro() -> Self {
        Self {
            geometry: ArrayGeometry::paper_macro(),
            separator_enabled: true,
        }
    }

    /// A macro with a custom column count (the Fig. 9 BL-size sweep).
    pub fn with_cols(cols: usize) -> Self {
        Self {
            geometry: ArrayGeometry::with_cols(cols),
            ..Self::paper_macro()
        }
    }

    /// Returns a copy with the separator feature set.
    pub fn with_separator(mut self, enabled: bool) -> Self {
        self.separator_enabled = enabled;
        self
    }
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self::paper_macro()
    }
}

/// Configuration of a multi-bank chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipConfig {
    /// Banks per chip.
    pub banks: usize,
    /// Macros per bank.
    pub macros_per_bank: usize,
    /// Per-macro configuration.
    pub macro_config: MacroConfig,
}

impl ChipConfig {
    /// The paper's 128 KB chip: 4 banks x 16 macros x (128 x 128 bits).
    pub fn paper_chip() -> Self {
        Self {
            banks: 4,
            macros_per_bank: 16,
            macro_config: MacroConfig::paper_macro(),
        }
    }

    /// Total storage capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.macros_per_bank * self.macro_config.geometry.capacity_bytes()
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::paper_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_is_128_kb() {
        assert_eq!(ChipConfig::paper_chip().capacity_bytes(), 128 * 1024);
    }

    #[test]
    fn builders() {
        let c = MacroConfig::with_cols(256).with_separator(false);
        assert_eq!(c.geometry.cols, 256);
        assert!(!c.separator_enabled);
    }
}
