//! Baseline architectures the paper compares against.
//!
//! The quantitative baseline (Fig. 9, Table III) is the conventional
//! **bit-serial** in-memory computing architecture of reference \[2\]
//! (28 nm Compute-SRAM, JSSC'19): data stored *transposed* (a word's bits
//! stacked vertically along the bit-line), one single-bit ALU per column,
//! operations iterated one bit position per step. [`bitserial`] implements
//! it functionally (value-exact, carry latches and all) with the cycle
//! formulas documented in [`cycles`].
//!
//! [`comparison`] carries the literature constants of the paper's Table III
//! rows so the comparison table can be regenerated.

pub mod bitserial;
pub mod comparison;
pub mod cycles;

pub use bitserial::BitSerialImc;
pub use comparison::{ComparisonRow, TABLE3_ROWS};
pub use cycles::BitSerialCycles;
