//! Functional bit-serial IMC simulator (the \[2\]-style baseline).
//!
//! Storage is *transposed*: word `j` lives in column `j`, with bit `i` at
//! row `base + i`. Arithmetic walks bit positions LSB-first, one dual-WL
//! compute per bit, keeping the carry in a per-column latch — exactly the
//! dataflow of the published bit-serial compute-SRAM designs. Cycle
//! accounting uses [`crate::cycles::BitSerialCycles`].

use crate::cycles::BitSerialCycles;
use bpimc_array::{ArrayError, BitRow, RowAddr, SramArray};

/// A transposed bit-serial in-memory-computing array.
#[derive(Debug, Clone, PartialEq)]
pub struct BitSerialImc {
    array: SramArray,
    rows: usize,
    cols: usize,
    cycles: u64,
}

impl BitSerialImc {
    /// An all-zero array of `rows x cols` (bits). `cols` is the number of
    /// word lanes; `rows` bounds operand placement.
    pub fn new(rows: usize, cols: usize) -> Self {
        let g = bpimc_array::ArrayGeometry {
            rows,
            cols,
            dummy_rows: 1,
            interleave: 1,
        };
        Self {
            array: SramArray::new(g),
            rows,
            cols,
            cycles: 0,
        }
    }

    /// Word-lane count (columns).
    pub fn lanes(&self) -> usize {
        self.cols
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the cycle counter.
    pub fn reset_cycles(&mut self) {
        self.cycles = 0;
    }

    /// Stores `words` (one per column) transposed at `base` with `n` bits.
    ///
    /// # Errors
    ///
    /// Returns an array error when the region exceeds the geometry.
    ///
    /// # Panics
    ///
    /// Panics if more words than lanes are supplied or a word exceeds `n`
    /// bits.
    pub fn write_words(&mut self, base: usize, n: usize, words: &[u64]) -> Result<(), ArrayError> {
        assert!(words.len() <= self.cols, "more words than lanes");
        for i in 0..n {
            let mut row = self.array.read(RowAddr::Main(base + i))?;
            for (j, &w) in words.iter().enumerate() {
                assert!(n == 64 || w < (1u64 << n), "word {w:#x} exceeds {n} bits");
                row.set(j, (w >> i) & 1 == 1);
            }
            self.array.write(RowAddr::Main(base + i), &row)?;
        }
        Ok(())
    }

    /// Reads `count` words of `n` bits stored transposed at `base`.
    ///
    /// # Errors
    ///
    /// Returns an array error when the region exceeds the geometry.
    pub fn read_words(
        &mut self,
        base: usize,
        n: usize,
        count: usize,
    ) -> Result<Vec<u64>, ArrayError> {
        let mut out = vec![0u64; count];
        for i in 0..n {
            let row = self.array.read(RowAddr::Main(base + i))?;
            for (j, w) in out.iter_mut().enumerate() {
                if row.get(j) {
                    *w |= 1 << i;
                }
            }
        }
        Ok(out)
    }

    /// Bit-serial addition: `dst = a + b` (n-bit wrapping), all lanes.
    ///
    /// # Errors
    ///
    /// Returns an array error when a region exceeds the geometry.
    pub fn add(&mut self, a: usize, b: usize, dst: usize, n: usize) -> Result<u64, ArrayError> {
        // Per-column carry latches.
        let mut carry = BitRow::zeros(self.cols);
        for i in 0..n {
            let out = self
                .array
                .bl_compute(RowAddr::Main(a + i), RowAddr::Main(b + i))?;
            let xor = out.xor();
            let sum = &xor ^ &carry;
            // carry' = AND + XOR & carry (majority via the SA outputs).
            carry = &out.and | &(&xor & &carry);
            self.array.write(RowAddr::Main(dst + i), &sum)?;
        }
        let c = BitSerialCycles::add(n);
        self.cycles += c;
        Ok(c)
    }

    /// Bit-serial subtraction: `dst = a - b` (two's complement wrapping).
    ///
    /// # Errors
    ///
    /// Returns an array error when a region exceeds the geometry.
    pub fn sub(&mut self, a: usize, b: usize, dst: usize, n: usize) -> Result<u64, ArrayError> {
        let mut carry = BitRow::ones(self.cols); // +1 of the two's complement
        for i in 0..n {
            let ra = self.array.read(RowAddr::Main(a + i))?;
            let rb = self.array.read(RowAddr::Main(b + i))?;
            let nb = !&rb;
            let xor = &ra ^ &nb;
            let sum = &xor ^ &carry;
            carry = &(&ra & &nb) | &(&xor & &carry);
            self.array.write(RowAddr::Main(dst + i), &sum)?;
        }
        let c = BitSerialCycles::sub(n);
        self.cycles += c;
        Ok(c)
    }

    /// Bit-serial multiplication: `dst` receives the full `2n`-bit products
    /// of the `n`-bit operands at `a` and `b` (shift-add over the multiplier
    /// bits with a predication mask, as in the published designs).
    ///
    /// # Errors
    ///
    /// Returns an array error when a region exceeds the geometry.
    pub fn mult(&mut self, a: usize, b: usize, dst: usize, n: usize) -> Result<u64, ArrayError> {
        // Accumulator: 2n rows at dst, cleared first.
        for i in 0..2 * n {
            self.array
                .write(RowAddr::Main(dst + i), &BitRow::zeros(self.cols))?;
        }
        for i in 0..n {
            // Predication mask: multiplier bit i of every lane.
            let mask = self.array.read(RowAddr::Main(b + i))?;
            // acc[i..i+n+?] += A << i, predicated per lane.
            let mut carry = BitRow::zeros(self.cols);
            for k in 0..=n {
                let addend = if k < n {
                    let ra = self.array.read(RowAddr::Main(a + k))?;
                    &ra & &mask
                } else {
                    BitRow::zeros(self.cols)
                };
                let acc = self.array.read(RowAddr::Main(dst + i + k))?;
                let xor = &acc ^ &addend;
                let sum = &xor ^ &carry;
                carry = &(&acc & &addend) | &(&xor & &carry);
                self.array.write(RowAddr::Main(dst + i + k), &sum)?;
            }
        }
        let c = BitSerialCycles::mult(n);
        self.cycles += c;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transposed_round_trip() {
        let mut imc = BitSerialImc::new(64, 32);
        let words: Vec<u64> = (0..32).map(|i| (i * 7 + 1) & 0xFF).collect();
        imc.write_words(4, 8, &words).unwrap();
        assert_eq!(imc.read_words(4, 8, 32).unwrap(), words);
    }

    #[test]
    fn add_and_cycle_count() {
        let mut imc = BitSerialImc::new(64, 16);
        imc.write_words(0, 8, &[200, 15]).unwrap();
        imc.write_words(8, 8, &[100, 20]).unwrap();
        let c = imc.add(0, 8, 16, 8).unwrap();
        assert_eq!(c, 21);
        assert_eq!(
            imc.read_words(16, 8, 2).unwrap(),
            vec![(200 + 100) & 0xFF, 35]
        );
    }

    #[test]
    fn mult_matches_reference_and_counts_cycles() {
        let mut imc = BitSerialImc::new(64, 8);
        let a: Vec<u64> = vec![3, 200, 17, 255, 0, 1, 77, 128];
        let b: Vec<u64> = vec![5, 19, 0, 255, 44, 1, 90, 2];
        imc.write_words(0, 8, &a).unwrap();
        imc.write_words(8, 8, &b).unwrap();
        let c = imc.mult(0, 8, 16, 8).unwrap();
        assert_eq!(c, 67);
        let got = imc.read_words(16, 16, 8).unwrap();
        let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert_eq!(got, expect);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn add_sub_match_reference(a in prop::collection::vec(0u64..256, 8),
                                   b in prop::collection::vec(0u64..256, 8)) {
            let mut imc = BitSerialImc::new(64, 8);
            imc.write_words(0, 8, &a).unwrap();
            imc.write_words(8, 8, &b).unwrap();
            imc.add(0, 8, 16, 8).unwrap();
            imc.sub(0, 8, 24, 8).unwrap();
            let sum = imc.read_words(16, 8, 8).unwrap();
            let diff = imc.read_words(24, 8, 8).unwrap();
            for i in 0..8 {
                prop_assert_eq!(sum[i], (a[i] + b[i]) & 0xFF);
                prop_assert_eq!(diff[i], a[i].wrapping_sub(b[i]) & 0xFF);
            }
        }

        /// The baseline and the proposed macro agree bit-exactly.
        #[test]
        fn agrees_with_proposed_macro(a in prop::collection::vec(0u64..256, 8),
                                      b in prop::collection::vec(0u64..256, 8)) {
            use bpimc_core::{ImcMacro, MacroConfig, Precision};
            let mut serial = BitSerialImc::new(64, 8);
            serial.write_words(0, 8, &a).unwrap();
            serial.write_words(8, 8, &b).unwrap();
            serial.mult(0, 8, 16, 8).unwrap();
            let serial_products = serial.read_words(16, 16, 8).unwrap();

            let mut parallel = ImcMacro::new(MacroConfig::paper_macro());
            parallel.write_mult_operands(0, Precision::P8, &a).unwrap();
            parallel.write_mult_operands(1, Precision::P8, &b).unwrap();
            parallel.mult(0, 1, 2, Precision::P8).unwrap();
            let parallel_products = parallel.read_products(2, Precision::P8, 8).unwrap();

            prop_assert_eq!(serial_products, parallel_products);
        }
    }
}
