//! Cycle formulas of the bit-serial baseline.
//!
//! Derivation (standard two-phase bit-serial IMC, Compute-SRAM / Neural
//! Cache style): each bit position needs one dual-WL compute-read cycle and
//! one write-back cycle, plus a constant instruction-issue/precharge
//! overhead per operation:
//!
//! * `ADD  = 2N + 5`
//! * `SUB  = 2N + 7` (extra inversion setup)
//! * `MULT = N^2 + 3` (predicated shift-add over N partial products with
//!   the carry kept resident in the column latch)
//!
//! With these formulas and the baseline's fixed 128-lane SIMD width, the
//! proposed-vs-baseline cycle ratios at BL size 128 land on the paper's
//! Fig. 9 labels (ADD 0.38x, MULT 1.19x).

/// Cycle-count formulas for the bit-serial baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitSerialCycles;

impl BitSerialCycles {
    /// The baseline's fixed SIMD width: its published organisation has
    /// 128-column banks of single-bit ALUs, independent of how long the
    /// bit-lines (and hence the storage) grow.
    pub const SIMD_LANES: usize = 128;

    /// Cycles for an `n`-bit addition.
    pub fn add(n: usize) -> u64 {
        2 * n as u64 + 5
    }

    /// Cycles for an `n`-bit subtraction.
    pub fn sub(n: usize) -> u64 {
        2 * n as u64 + 7
    }

    /// Cycles for an `n`-bit multiplication (the paper notes \[2\]'s
    /// "multiplication takes N^2 cycles").
    pub fn mult(n: usize) -> u64 {
        (n * n) as u64 + 3
    }

    /// Cycles for a bit-wise `n`-bit logic operation (compute + write-back
    /// per bit plus issue overhead).
    pub fn logic(n: usize) -> u64 {
        2 * n as u64 + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_at_8_bits() {
        assert_eq!(BitSerialCycles::add(8), 21);
        assert_eq!(BitSerialCycles::sub(8), 23);
        assert_eq!(BitSerialCycles::mult(8), 67);
        assert_eq!(BitSerialCycles::logic(8), 19);
    }

    #[test]
    fn mult_grows_quadratically() {
        let r = BitSerialCycles::mult(16) as f64 / BitSerialCycles::mult(8) as f64;
        assert!(r > 3.5 && r < 4.5);
    }

    #[test]
    fn fig9_anchor_ratios_at_bl128() {
        // Proposed: 1-cycle ADD over 16 words per 128-column row.
        let prop_add = 1.0 / 16.0;
        let conv_add = BitSerialCycles::add(8) as f64 / BitSerialCycles::SIMD_LANES as f64;
        let r = prop_add / conv_add;
        assert!((r - 0.38).abs() < 0.01, "ADD ratio {r:.3}");
        // Proposed: 10-cycle 8-bit MULT over 16 words per row.
        let prop_mult = 10.0 / 16.0;
        let conv_mult = BitSerialCycles::mult(8) as f64 / BitSerialCycles::SIMD_LANES as f64;
        let r = prop_mult / conv_mult;
        assert!((r - 1.19).abs() < 0.01, "MULT ratio {r:.3}");
    }
}
