//! Maximum clock frequency vs supply voltage (Fig. 8 right).

use crate::delay::ComponentDelays;
use bpimc_device::Env;

/// The frequency model: the inverse of the pipeline-visible cycle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrequencyModel;

impl FrequencyModel {
    /// Maximum clock frequency in hertz at `env`.
    pub fn fmax(&self, env: &Env) -> f64 {
        1.0 / ComponentDelays::at(env).cycle_time()
    }

    /// `(vdd, fmax)` series over a voltage sweep, the paper's 0.6-1.1 V.
    pub fn sweep(&self, env_base: &Env, voltages: &[f64]) -> Vec<(f64, f64)> {
        voltages
            .iter()
            .map(|&v| (v, self.fmax(&env_base.with_vdd(v))))
            .collect()
    }

    /// The paper's standard sweep points.
    pub fn paper_voltages() -> Vec<f64> {
        (6..=11).map(|x| x as f64 / 10.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_the_published_frequency_points() {
        let f = FrequencyModel;
        let f10 = f.fmax(&Env::nominal().with_vdd(1.0));
        assert!((f10 - 2.25e9).abs() / 2.25e9 < 0.02, "f(1.0V) = {f10:.3e}");
        let f06 = f.fmax(&Env::nominal().with_vdd(0.6));
        assert!((f06 - 372e6).abs() / 372e6 < 0.06, "f(0.6V) = {f06:.3e}");
    }

    #[test]
    fn sweep_is_monotone_and_covers_range() {
        let f = FrequencyModel;
        let sweep = f.sweep(&Env::nominal(), &FrequencyModel::paper_voltages());
        assert_eq!(sweep.len(), 6);
        assert!(sweep.windows(2).all(|w| w[1].1 > w[0].1));
        assert!(sweep[0].1 > 0.3e9 && sweep[5].1 < 3.5e9);
    }
}
