//! Critical-path timing of the two full-adder styles (Fig. 7(b)).
//!
//! The proposed FA pre-computes both sum/carry candidates from the SA
//! outputs and lets the carry ripple through one transmission gate per bit
//! (plus a regenerating buffer every few stages). A logic-gate ripple FA
//! re-evaluates two gate levels per bit. The paper measures 1.8-2.2x
//! critical-path advantage for the proposed style at 8 and 16 bits.

use crate::scaling::DelayScaling;
use bpimc_device::Env;

/// Which adder implementation to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaKind {
    /// The paper's transmission-gate carry-select FA.
    TgCarrySelect,
    /// A conventional logic-gate ripple-carry FA.
    LogicGate,
}

impl FaKind {
    /// Reference timing constants at 0.9 V NN, seconds.
    fn constants(&self) -> FaConstants {
        match self {
            // Fixed: SA-to-FA candidate generation; per-bit: one TG; a
            // buffer re-drives the chain every 4 stages.
            FaKind::TgCarrySelect => FaConstants {
                fixed: 38e-12,
                per_bit: 10e-12,
                buffer_every: 4,
                buffer: 8e-12,
            },
            // Fixed: input XOR stage; per-bit: two gate levels (carry
            // majority + propagate mux), no buffers needed at these depths.
            FaKind::LogicGate => FaConstants {
                fixed: 30e-12,
                per_bit: 26e-12,
                buffer_every: usize::MAX,
                buffer: 0.0,
            },
        }
    }

    /// Critical-path delay of an `bits`-wide carry chain, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn critical_path(&self, bits: usize, env: &Env) -> f64 {
        assert!(bits > 0, "adder width must be positive");
        let c = self.constants();
        let buffers = if c.buffer_every == usize::MAX {
            0
        } else {
            bits.saturating_sub(1) / c.buffer_every
        };
        let ref_delay = c.fixed + bits as f64 * c.per_bit + buffers as f64 * c.buffer;
        ref_delay * DelayScaling::paper_fit().delay_factor(env)
    }
}

#[derive(Debug, Clone, Copy)]
struct FaConstants {
    fixed: f64,
    per_bit: f64,
    buffer_every: usize,
    buffer: f64,
}

/// The speedup of the proposed FA over the logic-gate FA at a width.
pub fn speedup(bits: usize, env: &Env) -> f64 {
    FaKind::LogicGate.critical_path(bits, env) / FaKind::TgCarrySelect.critical_path(bits, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_16b_matches_the_breakdown_component() {
        // The Fig. 8 logic component is the 16-bit adder: 222 ps.
        let d = FaKind::TgCarrySelect.critical_path(16, &Env::nominal());
        assert!((d - 222e-12).abs() < 3e-12, "d = {d:.3e}");
    }

    #[test]
    fn speedup_is_in_the_papers_band() {
        // Fig. 7(b): 1.8x - 2.2x for 8- and 16-bit at 0.7-1.1 V.
        for bits in [8, 16] {
            for mv in [700, 900, 1100] {
                let env = Env::nominal().with_vdd(mv as f64 / 1000.0);
                let s = speedup(bits, &env);
                assert!((1.7..2.3).contains(&s), "{bits} bits @ {mv} mV: {s}");
            }
        }
    }

    #[test]
    fn longer_chains_are_slower() {
        let env = Env::nominal();
        for kind in [FaKind::TgCarrySelect, FaKind::LogicGate] {
            assert!(kind.critical_path(16, &env) > kind.critical_path(8, &env));
        }
    }

    #[test]
    fn low_voltage_slows_both() {
        let hot = FaKind::TgCarrySelect.critical_path(16, &Env::nominal().with_vdd(1.1));
        let cold = FaKind::TgCarrySelect.critical_path(16, &Env::nominal().with_vdd(0.7));
        assert!(cold > 2.0 * hot);
    }
}
