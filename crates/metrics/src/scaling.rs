//! Voltage and corner scaling of path delays.
//!
//! All macro-level delay numbers in this crate are specified at the paper's
//! reference condition (0.9 V, 25 C, NN) and scaled elsewhere with an
//! alpha-power law `delay ∝ V / (V - VT_eff)^alpha`.
//!
//! `VT_eff` and `alpha` here are *effective composite-path* fit parameters
//! (they absorb WL-driver, SA-margin and wire effects), chosen so the model
//! passes through the paper's two published frequency points: 2.25 GHz at
//! 1.0 V and 372 MHz at 0.6 V. They are not the device threshold voltages
//! of `bpimc-device`.

use bpimc_device::{Corner, Env};

/// The alpha-power delay scaling law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayScaling {
    /// Effective composite-path threshold, volts.
    pub vt_eff: f64,
    /// Effective velocity-saturation exponent.
    pub alpha: f64,
    /// Fractional delay increase at the slow-slow corner (fast-fast is the
    /// mirror image; skewed corners get a third of the effect).
    pub corner_spread: f64,
}

impl DelayScaling {
    /// The fit used throughout the workspace (see module docs).
    pub fn paper_fit() -> Self {
        Self {
            vt_eff: 0.515,
            alpha: 1.325,
            corner_spread: 0.10,
        }
    }

    /// Relative delay at `env` w.r.t. the 0.9 V NN reference (1.0 there).
    ///
    /// # Panics
    ///
    /// Panics if `env.vdd` is at or below the effective threshold — the
    /// macro does not operate there (the paper's range ends at 0.6 V).
    pub fn delay_factor(&self, env: &Env) -> f64 {
        assert!(
            env.vdd > self.vt_eff + 0.01,
            "supply {} V is below the operating range (vt_eff {})",
            env.vdd,
            self.vt_eff
        );
        let g = |v: f64| v / (v - self.vt_eff).powf(self.alpha);
        let voltage = g(env.vdd) / g(0.9);
        voltage * self.corner_factor(env.corner)
    }

    /// The corner delay multiplier.
    pub fn corner_factor(&self, corner: Corner) -> f64 {
        match corner {
            Corner::Nn => 1.0,
            Corner::Ss => 1.0 + self.corner_spread,
            Corner::Ff => 1.0 / (1.0 + self.corner_spread),
            // Skewed corners: one device type slow — paths mix N and P, so
            // the net effect is a fraction of the SS/FF spread.
            Corner::Sf | Corner::Fs => 1.0 + self.corner_spread / 3.0,
        }
    }
}

impl Default for DelayScaling {
    fn default() -> Self {
        Self::paper_fit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_unity() {
        let s = DelayScaling::paper_fit();
        assert!((s.delay_factor(&Env::nominal()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_frequency_ratios() {
        let s = DelayScaling::paper_fit();
        // f(1.0)/f(0.9) should give 2.25 GHz from 1.84 GHz: factor 0.818.
        let f10 = s.delay_factor(&Env::nominal().with_vdd(1.0));
        assert!((f10 - 0.818).abs() < 0.02, "got {f10}");
        // f(0.6)/f(0.9): delay x4.95.
        let f06 = s.delay_factor(&Env::nominal().with_vdd(0.6));
        assert!((f06 - 4.95).abs() < 0.25, "got {f06}");
    }

    #[test]
    fn monotone_in_voltage() {
        let s = DelayScaling::paper_fit();
        let mut prev = f64::INFINITY;
        for mv in (600..=1100).step_by(50) {
            let f = s.delay_factor(&Env::nominal().with_vdd(mv as f64 / 1000.0));
            assert!(f < prev, "delay must fall as V rises ({mv} mV)");
            prev = f;
        }
    }

    #[test]
    fn corner_ordering() {
        let s = DelayScaling::paper_fit();
        assert!(s.corner_factor(Corner::Ss) > s.corner_factor(Corner::Nn));
        assert!(s.corner_factor(Corner::Ff) < s.corner_factor(Corner::Nn));
        assert!(s.corner_factor(Corner::Sf) > 1.0);
        assert!(s.corner_factor(Corner::Sf) < s.corner_factor(Corner::Ss));
    }

    #[test]
    #[should_panic(expected = "below the operating range")]
    fn sub_threshold_supply_rejected() {
        let _ = DelayScaling::paper_fit().delay_factor(&Env::nominal().with_vdd(0.5));
    }
}
