//! Calibration of the energy coefficients against the paper's Table II.
//!
//! Table II gives fifteen measured energies (ADD / SUB / MULT at 2/4/8-bit,
//! SUB and MULT with and without the BL separator). We fit the seven
//! [`EnergyParams`] coefficients by Nelder-Mead on the summed squared
//! *relative* error, in log-parameter space so every coefficient stays
//! positive. The optimiser is deterministic (fixed start simplex), so the
//! calibrated parameters are reproducible and cached.

use crate::energy::{table2_energy_fj, EnergyParams, Table2Op};
use bpimc_core::Precision;
use std::sync::OnceLock;

/// One Table II reference cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// Operation.
    pub op: Table2Op,
    /// Word precision.
    pub precision: Precision,
    /// Whether the BL separator was active.
    pub separator: bool,
    /// The paper's energy per operation, femtojoules (0.9 V).
    pub paper_fj: f64,
}

/// The paper's Table II. ADD has no separator variant (its result is
/// written to the main array, which the separator cannot shield).
pub const PAPER_TABLE2: [Table2Cell; 15] = [
    Table2Cell {
        op: Table2Op::Add,
        precision: Precision::P2,
        separator: true,
        paper_fj: 68.2,
    },
    Table2Cell {
        op: Table2Op::Add,
        precision: Precision::P4,
        separator: true,
        paper_fj: 138.4,
    },
    Table2Cell {
        op: Table2Op::Add,
        precision: Precision::P8,
        separator: true,
        paper_fj: 274.8,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P2,
        separator: false,
        paper_fj: 152.3,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P4,
        separator: false,
        paper_fj: 307.5,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P8,
        separator: false,
        paper_fj: 612.2,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P2,
        separator: true,
        paper_fj: 136.5,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P4,
        separator: true,
        paper_fj: 274.9,
    },
    Table2Cell {
        op: Table2Op::Sub,
        precision: Precision::P8,
        separator: true,
        paper_fj: 545.4,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P2,
        separator: false,
        paper_fj: 357.4,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P4,
        separator: false,
        paper_fj: 1167.6,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P8,
        separator: false,
        paper_fj: 4186.4,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P2,
        separator: true,
        paper_fj: 296.0,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P4,
        separator: true,
        paper_fj: 922.4,
    },
    Table2Cell {
        op: Table2Op::Mult,
        precision: Precision::P8,
        separator: true,
        paper_fj: 3394.8,
    },
];

/// Outcome of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The fitted coefficients.
    pub params: EnergyParams,
    /// `(cell, model_fj, relative_error)` for every Table II cell.
    pub cells: Vec<(Table2Cell, f64, f64)>,
    /// Root-mean-square relative error over all cells.
    pub rms_rel_err: f64,
    /// Worst-case relative error magnitude.
    pub max_rel_err: f64,
}

fn objective(x: &[f64; 7]) -> f64 {
    let params = EnergyParams::from_vec(x.map(f64::exp));
    PAPER_TABLE2
        .iter()
        .map(|cell| {
            let model = table2_energy_fj(cell.op, cell.precision, cell.separator, &params);
            let rel = (model - cell.paper_fj) / cell.paper_fj;
            rel * rel
        })
        .sum()
}

/// Runs the deterministic Nelder-Mead fit and builds the report.
pub fn calibrate() -> CalibrationReport {
    // Start from physically sensible magnitudes (fJ): dual compute 25,
    // single compute 12, full WB 9, shielded WB 1.5, invert extra 25,
    // FF 5, fixed 4.
    let x0 = [25.0_f64, 12.0, 9.0, 1.5, 25.0, 5.0, 4.0].map(f64::ln);
    let best = nelder_mead(objective, x0, 2500);
    let params = EnergyParams::from_vec(best.map(f64::exp));

    let mut cells = Vec::new();
    let mut sum_sq = 0.0;
    let mut worst: f64 = 0.0;
    for cell in PAPER_TABLE2 {
        let model = table2_energy_fj(cell.op, cell.precision, cell.separator, &params);
        let rel = (model - cell.paper_fj) / cell.paper_fj;
        sum_sq += rel * rel;
        worst = worst.max(rel.abs());
        cells.push((cell, model, rel));
    }
    CalibrationReport {
        params,
        cells,
        rms_rel_err: (sum_sq / PAPER_TABLE2.len() as f64).sqrt(),
        max_rel_err: worst,
    }
}

/// The calibrated coefficients, fit once per process and cached.
pub fn paper_calibrated_params() -> EnergyParams {
    static CACHE: OnceLock<EnergyParams> = OnceLock::new();
    *CACHE.get_or_init(|| calibrate().params)
}

/// A small deterministic Nelder-Mead minimiser over `R^7`.
fn nelder_mead<F: Fn(&[f64; 7]) -> f64>(f: F, x0: [f64; 7], iters: usize) -> [f64; 7] {
    const N: usize = 7;
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    // Initial simplex: x0 plus per-axis steps.
    let mut pts: Vec<[f64; 7]> = vec![x0];
    for i in 0..N {
        let mut p = x0;
        p[i] += 0.35;
        pts.push(p);
    }
    let mut vals: Vec<f64> = pts.iter().map(&f).collect();

    for _ in 0..iters {
        // Sort ascending by value.
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        idx.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
        let pts_sorted: Vec<[f64; 7]> = idx.iter().map(|&i| pts[i]).collect();
        let vals_sorted: Vec<f64> = idx.iter().map(|&i| vals[i]).collect();
        pts = pts_sorted;
        vals = vals_sorted;

        if vals[N] - vals[0] < 1e-14 {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = [0.0; 7];
        for p in pts.iter().take(N) {
            for (c, &x) in centroid.iter_mut().zip(p.iter()) {
                *c += x / N as f64;
            }
        }
        let worst = pts[N];
        let mut reflect = [0.0; 7];
        for i in 0..N {
            reflect[i] = centroid[i] + alpha * (centroid[i] - worst[i]);
        }
        let fr = f(&reflect);
        if fr < vals[0] {
            // Try expansion.
            let mut expand = [0.0; 7];
            for i in 0..N {
                expand[i] = centroid[i] + gamma * (reflect[i] - centroid[i]);
            }
            let fe = f(&expand);
            if fe < fr {
                pts[N] = expand;
                vals[N] = fe;
            } else {
                pts[N] = reflect;
                vals[N] = fr;
            }
        } else if fr < vals[N - 1] {
            pts[N] = reflect;
            vals[N] = fr;
        } else {
            // Contraction.
            let mut contract = [0.0; 7];
            for i in 0..N {
                contract[i] = centroid[i] + rho * (worst[i] - centroid[i]);
            }
            let fc = f(&contract);
            if fc < vals[N] {
                pts[N] = contract;
                vals[N] = fc;
            } else {
                // Shrink toward the best point.
                let best = pts[0];
                for p in pts.iter_mut().skip(1) {
                    for i in 0..N {
                        p[i] = best[i] + sigma * (p[i] - best[i]);
                    }
                }
                for (v, p) in vals.iter_mut().zip(pts.iter()).skip(1) {
                    *v = f(p);
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..pts.len()).collect();
    idx.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
    pts[idx[0]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table2_within_tolerance() {
        let report = calibrate();
        assert!(
            report.rms_rel_err < 0.10,
            "rms relative error {:.3} too large",
            report.rms_rel_err
        );
        assert!(
            report.max_rel_err < 0.25,
            "worst relative error {:.3} too large",
            report.max_rel_err
        );
        // All coefficients must be physical (positive, sane magnitude).
        let p = report.params.to_vec();
        assert!(p.iter().all(|&x| x > 0.0 && x < 500.0), "params {p:?}");
    }

    #[test]
    fn calibrated_params_are_cached_and_deterministic() {
        let a = paper_calibrated_params();
        let b = paper_calibrated_params();
        assert_eq!(a, b);
        let fresh = calibrate().params;
        assert!((a.compute_dual_fj - fresh.compute_dual_fj).abs() < 1e-9);
    }

    #[test]
    fn separator_savings_direction_is_reproduced() {
        let p = paper_calibrated_params();
        for precision in [Precision::P2, Precision::P4, Precision::P8] {
            let wo = table2_energy_fj(Table2Op::Mult, precision, false, &p);
            let w = table2_energy_fj(Table2Op::Mult, precision, true, &p);
            assert!(w < wo, "{precision}: {w} !< {wo}");
        }
    }

    #[test]
    fn nelder_mead_minimises_a_quadratic() {
        let target = [1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0];
        let f = |x: &[f64; 7]| -> f64 {
            x.iter()
                .zip(target.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let sol = nelder_mead(f, [0.0; 7], 4000);
        for (s, t) in sol.iter().zip(target.iter()) {
            assert!((s - t).abs() < 0.01, "{sol:?}");
        }
    }
}
