//! Transistor-count area model (the 5.2 % overhead claim).
//!
//! The paper keeps the 6T cell and array structure untouched; all additions
//! live in the column periphery (BL booster, FA-Logics, muxes, FFs) plus the
//! BL separator and three dummy rows. The model counts transistors per
//! column, prices them at a 28 nm logic density, and compares against the
//! bit-cell array area.

use bpimc_array::ArrayGeometry;

/// Area model constants and per-column transistor budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// 6T bit-cell area, um^2 (28 nm high-density cell).
    pub cell_area_um2: f64,
    /// Average drawn area per peripheral logic transistor including local
    /// routing, um^2.
    pub logic_area_per_t_um2: f64,
    /// Booster transistors per column (P0/N0/N1/reset on both BLT and BLB).
    pub boost_t_per_col: usize,
    /// BL separator pass-gate transistors per column.
    pub separator_t_per_col: usize,
    /// Write driver transistors per column.
    pub driver_t_per_col: usize,
    /// Shared Y-path transistors per peripheral unit (single-ended SA pair,
    /// FA-Logics, logic unit, MX0-MX2, write-back latch).
    pub ypath_t_per_unit: usize,
    /// Multiplier FF transistors per 2-bit FF unit.
    pub ff_t_per_unit: usize,
}

impl AreaModel {
    /// The default 28 nm budget.
    pub fn default_28nm() -> Self {
        Self {
            cell_area_um2: 0.13,
            // Custom pitch-matched column layout is denser than standard
            // cells (~0.03 um^2/T); 0.022 reflects hand layout under the
            // array pitch.
            logic_area_per_t_um2: 0.022,
            boost_t_per_col: 8,
            separator_t_per_col: 2,
            driver_t_per_col: 2,
            ypath_t_per_unit: 62,
            ff_t_per_unit: 24,
        }
    }

    /// Bit-cell array area of a geometry (main rows only), um^2.
    pub fn array_area_um2(&self, g: &ArrayGeometry) -> f64 {
        (g.rows * g.cols) as f64 * self.cell_area_um2
    }

    /// Dummy-row area, um^2 (reported separately; the paper's overhead
    /// figure covers the added periphery).
    pub fn dummy_area_um2(&self, g: &ArrayGeometry) -> f64 {
        (g.dummy_rows * g.cols) as f64 * self.cell_area_um2
    }

    /// Peripheral transistors added per macro.
    pub fn peripheral_transistors(&self, g: &ArrayGeometry) -> usize {
        let per_col = self.boost_t_per_col + self.separator_t_per_col + self.driver_t_per_col;
        let units = g.peripheral_units();
        // One 2-bit FF unit per pair of columns served (max precision tiling).
        let ff_units = g.cols / 2;
        per_col * g.cols + self.ypath_t_per_unit * units + self.ff_t_per_unit * ff_units
    }

    /// Added peripheral area per macro, um^2.
    pub fn peripheral_area_um2(&self, g: &ArrayGeometry) -> f64 {
        self.peripheral_transistors(g) as f64 * self.logic_area_per_t_um2
    }

    /// The paper's headline figure: peripheral area overhead relative to
    /// the bit-cell array area, as a fraction.
    pub fn overhead_fraction(&self, g: &ArrayGeometry) -> f64 {
        self.peripheral_area_um2(g) / self.array_area_um2(g)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::default_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_the_papers_5_2_percent() {
        let m = AreaModel::default_28nm();
        let g = ArrayGeometry::paper_macro();
        let ovh = m.overhead_fraction(&g) * 100.0;
        assert!((ovh - 5.2).abs() < 0.5, "overhead {ovh:.2} %");
    }

    #[test]
    fn overhead_shrinks_with_taller_arrays() {
        // Peripheral cost is per column; more rows amortise it.
        let m = AreaModel::default_28nm();
        let short = ArrayGeometry {
            rows: 64,
            ..ArrayGeometry::paper_macro()
        };
        let tall = ArrayGeometry {
            rows: 256,
            ..ArrayGeometry::paper_macro()
        };
        assert!(m.overhead_fraction(&tall) < m.overhead_fraction(&short));
    }

    #[test]
    fn dummy_rows_are_small() {
        let m = AreaModel::default_28nm();
        let g = ArrayGeometry::paper_macro();
        let frac = m.dummy_area_um2(&g) / m.array_area_um2(&g);
        assert!((frac - 3.0 / 128.0).abs() < 1e-12);
    }
}
