//! Activity-driven energy model.
//!
//! The executor (`bpimc-core`) logs, per cycle, how many columns computed,
//! how many were written back (and whether the BL separator shielded them or
//! the write inverted the read data), and how many multiplier FF bits
//! clocked. This module turns those counts into femtojoules using per-event
//! coefficients; [`crate::calibrate`] fits the coefficients to the paper's
//! Table II.
//!
//! Energies scale with `(V / 0.9)^2` (CV^2 dominated), which is exactly the
//! consistency the paper's own numbers exhibit: Table II's 274.8 fJ 8-bit
//! ADD at 0.9 V corresponds to Table III's 8.09 TOPS/W at 0.6 V.

use bpimc_array::CycleKind;
use bpimc_core::{ActivityLog, CycleActivity, ImcMacro, MacroConfig, Precision};

/// Per-event energy coefficients in femtojoules at the 0.9 V NN reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Per column of a dual-WL compute cycle (precharge + cells + boost +
    /// SA + FA logic).
    pub compute_dual_fj: f64,
    /// Per column of a single-WL access cycle.
    pub compute_single_fj: f64,
    /// Per column of a write-back swinging the full bit-line.
    pub wb_full_fj: f64,
    /// Per column of a write-back shielded by the BL separator.
    pub wb_shielded_fj: f64,
    /// Extra per column when the write inverts the just-read data (NOT).
    pub wb_invert_extra_fj: f64,
    /// Per multiplier FF bit event.
    pub ff_fj: f64,
    /// Fixed per cycle (WL driver, decoder, control).
    pub cycle_fixed_fj: f64,
}

impl EnergyParams {
    /// The CV^2 voltage scale factor relative to the 0.9 V reference.
    pub fn voltage_scale(vdd: f64) -> f64 {
        (vdd / 0.9) * (vdd / 0.9)
    }

    /// Energy of one logged cycle, femtojoules (at reference voltage).
    pub fn cycle_energy_fj(&self, c: &CycleActivity) -> f64 {
        let compute = match c.kind {
            CycleKind::Compute => c.compute_cols as f64 * self.compute_dual_fj,
            CycleKind::SingleAccess | CycleKind::ReadOnly => {
                c.compute_cols as f64 * self.compute_single_fj
            }
            CycleKind::WriteOnly => 0.0,
        };
        let wb_base = if c.wb_shielded {
            self.wb_shielded_fj
        } else {
            self.wb_full_fj
        };
        let wb_extra = if c.wb_inverting {
            self.wb_invert_extra_fj
        } else {
            0.0
        };
        let wb = c.wb_cols as f64 * (wb_base + wb_extra);
        compute + wb + c.ff_bits as f64 * self.ff_fj + self.cycle_fixed_fj
    }

    /// Energy of a slice of cycles, femtojoules.
    pub fn cycles_energy_fj(&self, cycles: &[CycleActivity]) -> f64 {
        cycles.iter().map(|c| self.cycle_energy_fj(c)).sum()
    }

    /// Energy of an entire activity log, femtojoules.
    pub fn log_energy_fj(&self, log: &ActivityLog) -> f64 {
        self.cycles_energy_fj(log.cycles())
    }

    /// All coefficients as a vector (for the calibration optimiser and
    /// sanity checks).
    pub fn to_vec(self) -> [f64; 7] {
        [
            self.compute_dual_fj,
            self.compute_single_fj,
            self.wb_full_fj,
            self.wb_shielded_fj,
            self.wb_invert_extra_fj,
            self.ff_fj,
            self.cycle_fixed_fj,
        ]
    }

    /// Builds coefficients from a vector (for the calibration optimiser).
    pub(crate) fn from_vec(v: [f64; 7]) -> Self {
        Self {
            compute_dual_fj: v[0],
            compute_single_fj: v[1],
            wb_full_fj: v[2],
            wb_shielded_fj: v[3],
            wb_invert_extra_fj: v[4],
            ff_fj: v[5],
            cycle_fixed_fj: v[6],
        }
    }
}

/// The operations of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table2Op {
    /// Per-lane addition.
    Add,
    /// Per-lane subtraction (with or without separator).
    Sub,
    /// Per-lane multiplication (with or without separator).
    Mult,
}

impl Table2Op {
    /// All Table II operations.
    pub const ALL: [Table2Op; 3] = [Table2Op::Add, Table2Op::Sub, Table2Op::Mult];
}

/// Measures the per-word energy of one operation by running it on a
/// minimal-width macro (one lane) and pricing the logged activity.
///
/// This mirrors how the paper reports Table II: energy *per operation* on
/// one word, at 0.9 V.
pub fn table2_energy_fj(
    op: Table2Op,
    precision: Precision,
    separator_on: bool,
    params: &EnergyParams,
) -> f64 {
    let bits = precision.bits();
    let cols = match op {
        Table2Op::Mult => 2 * bits,
        _ => bits,
    };
    let mut mac = ImcMacro::new(MacroConfig::with_cols(cols).with_separator(separator_on));
    match op {
        Table2Op::Add => {
            mac.write_words(0, precision, &[1]).expect("operand fits");
            mac.write_words(1, precision, &[2]).expect("operand fits");
            mac.clear_activity();
            mac.add(0, 1, 2, precision).expect("add runs");
        }
        Table2Op::Sub => {
            mac.write_words(0, precision, &[3]).expect("operand fits");
            mac.write_words(1, precision, &[1]).expect("operand fits");
            mac.clear_activity();
            mac.sub(0, 1, 2, precision).expect("sub runs");
        }
        Table2Op::Mult => {
            mac.write_mult_operands(0, precision, &[3])
                .expect("operand fits");
            mac.write_mult_operands(1, precision, &[2])
                .expect("operand fits");
            mac.clear_activity();
            mac.mult(0, 1, 2, precision).expect("mult runs");
        }
    }
    params.log_energy_fj(mac.activity())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_params() -> EnergyParams {
        EnergyParams {
            compute_dual_fj: 1.0,
            compute_single_fj: 1.0,
            wb_full_fj: 1.0,
            wb_shielded_fj: 0.5,
            wb_invert_extra_fj: 0.0,
            ff_fj: 0.1,
            cycle_fixed_fj: 2.0,
        }
    }

    #[test]
    fn voltage_scale_is_quadratic() {
        assert!((EnergyParams::voltage_scale(0.9) - 1.0).abs() < 1e-12);
        assert!((EnergyParams::voltage_scale(0.6) - 4.0 / 9.0).abs() < 1e-12);
        assert!((EnergyParams::voltage_scale(1.8) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_energy_grows_with_precision() {
        let p = unit_params();
        let e2 = table2_energy_fj(Table2Op::Add, Precision::P2, true, &p);
        let e8 = table2_energy_fj(Table2Op::Add, Precision::P8, true, &p);
        assert!(e8 > 2.0 * e2, "e2 {e2} e8 {e8}");
    }

    #[test]
    fn separator_saves_energy_on_sub_and_mult_only() {
        let p = unit_params();
        for op in [Table2Op::Sub, Table2Op::Mult] {
            let with = table2_energy_fj(op, Precision::P8, true, &p);
            let without = table2_energy_fj(op, Precision::P8, false, &p);
            assert!(with < without, "{op:?}: {with} !< {without}");
        }
        // ADD writes to the main array; the separator cannot help.
        let with = table2_energy_fj(Table2Op::Add, Precision::P8, true, &p);
        let without = table2_energy_fj(Table2Op::Add, Precision::P8, false, &p);
        assert_eq!(with, without);
    }

    #[test]
    fn mult_energy_is_superlinear_in_precision() {
        let p = unit_params();
        let e2 = table2_energy_fj(Table2Op::Mult, Precision::P2, false, &p);
        let e4 = table2_energy_fj(Table2Op::Mult, Precision::P4, false, &p);
        let e8 = table2_energy_fj(Table2Op::Mult, Precision::P8, false, &p);
        assert!(e4 / e2 > 2.0, "quadratic-ish growth: {e2} {e4} {e8}");
        assert!(e8 / e4 > 2.0);
    }

    #[test]
    fn inverting_write_costs_extra() {
        let mut p = unit_params();
        p.wb_invert_extra_fj = 5.0;
        let base = unit_params();
        let with = table2_energy_fj(Table2Op::Sub, Precision::P8, true, &p);
        let without_extra = table2_energy_fj(Table2Op::Sub, Precision::P8, true, &base);
        // The NOT cycle writes 8 inverted columns: +40 fJ.
        assert!((with - without_extra - 40.0).abs() < 1e-9);
    }
}
