//! TOPS/W efficiency (Fig. 8 right, Table III).
//!
//! With one operation costing `E` joules, the efficiency is simply `1/E`
//! operations per joule; the voltage dependence is the CV^2 law. The
//! paper's headline numbers are reproduced at 0.6 V: 8.09 TOPS/W for 8-bit
//! ADD and 0.68 TOPS/W for 8-bit MULT (Table III — note the abstract swaps
//! the two by mistake; Table II + the CV^2 law confirm the Table III
//! assignment).

use crate::calibrate::paper_calibrated_params;
use crate::energy::{table2_energy_fj, EnergyParams, Table2Op};
use bpimc_core::Precision;

/// TOPS/W evaluator bound to a set of energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopsModel {
    params: EnergyParams,
}

impl TopsModel {
    /// A model using the Table II-calibrated coefficients.
    pub fn paper_calibrated() -> Self {
        Self {
            params: paper_calibrated_params(),
        }
    }

    /// A model with explicit coefficients.
    pub fn with_params(params: EnergyParams) -> Self {
        Self { params }
    }

    /// Energy of one operation at `vdd`, femtojoules.
    pub fn op_energy_fj(
        &self,
        op: Table2Op,
        precision: Precision,
        separator: bool,
        vdd: f64,
    ) -> f64 {
        table2_energy_fj(op, precision, separator, &self.params) * EnergyParams::voltage_scale(vdd)
    }

    /// Tera-operations per second per watt (= operations per picojoule).
    pub fn tops_per_watt(
        &self,
        op: Table2Op,
        precision: Precision,
        separator: bool,
        vdd: f64,
    ) -> f64 {
        let fj = self.op_energy_fj(op, precision, separator, vdd);
        // 1 / (fJ) op/J = 1e15/fj ops/J; TOPS/W = ops/J / 1e12.
        1e3 / fj
    }

    /// `(vdd, TOPS/W)` sweep for the Fig. 8 (right) curves.
    pub fn sweep(
        &self,
        op: Table2Op,
        precision: Precision,
        separator: bool,
        voltages: &[f64],
    ) -> Vec<(f64, f64)> {
        voltages
            .iter()
            .map(|&v| (v, self.tops_per_watt(op, precision, separator, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_at_0v6() {
        let m = TopsModel::paper_calibrated();
        let add = m.tops_per_watt(Table2Op::Add, Precision::P8, true, 0.6);
        let mult = m.tops_per_watt(Table2Op::Mult, Precision::P8, true, 0.6);
        // Paper (Table III): ADD 8.09, MULT 0.68 at 0.6 V.
        assert!((add - 8.09).abs() / 8.09 < 0.15, "ADD {add:.2} TOPS/W");
        assert!((mult - 0.68).abs() / 0.68 < 0.15, "MULT {mult:.2} TOPS/W");
    }

    #[test]
    fn efficiency_falls_with_voltage() {
        let m = TopsModel::paper_calibrated();
        let lo = m.tops_per_watt(Table2Op::Add, Precision::P8, true, 0.6);
        let hi = m.tops_per_watt(Table2Op::Add, Precision::P8, true, 1.1);
        assert!(lo > 3.0 * hi, "CV^2: {lo} vs {hi}");
    }

    #[test]
    fn add_is_roughly_10x_mult_as_the_fig8_axis_note_says() {
        // The paper plots ADD TOPS/W on a x10 axis — the two curves are an
        // order of magnitude apart.
        let m = TopsModel::paper_calibrated();
        let add = m.tops_per_watt(Table2Op::Add, Precision::P8, true, 0.9);
        let mult = m.tops_per_watt(Table2Op::Mult, Precision::P8, true, 0.9);
        let ratio = add / mult;
        assert!((8.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sweep_shape() {
        let m = TopsModel::paper_calibrated();
        let s = m.sweep(Table2Op::Mult, Precision::P8, true, &[0.6, 0.8, 1.0]);
        assert_eq!(s.len(), 3);
        assert!(s[0].1 > s[1].1 && s[1].1 > s[2].1);
    }
}
