//! The per-cycle delay component breakdown (Fig. 8 left).

use crate::scaling::DelayScaling;
use bpimc_array::CyclePhase;
use bpimc_device::Env;

/// Per-phase delays of one computing cycle, seconds, at a given condition.
///
/// The reference values (0.9 V, NN) are the paper's own published breakdown:
/// precharge 60 ps (10.0 %), WL activation 140 ps (23.2 %), BL sensing
/// 130 ps (21.6 %), 16-bit adder logic 222 ps (36.8 %), write-back 51 ps
/// (8.5 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentDelays {
    /// BL precharge (with BSTRS reset folded in), seconds.
    pub precharge: f64,
    /// WL activation (the short pulse), seconds.
    pub wl_activate: f64,
    /// BL swing + sensing (boost + SA), seconds.
    pub sense: f64,
    /// Column logic for a 16-bit carry chain, seconds.
    pub logic_16b: f64,
    /// Write-back (separator on), seconds.
    pub writeback: f64,
}

impl ComponentDelays {
    /// The paper's breakdown at the 0.9 V NN reference.
    pub fn paper_reference() -> Self {
        Self {
            precharge: 60e-12,
            wl_activate: 140e-12,
            sense: 130e-12,
            logic_16b: 222e-12,
            writeback: 51e-12,
        }
    }

    /// The breakdown scaled to an environment.
    pub fn at(env: &Env) -> Self {
        let k = DelayScaling::paper_fit().delay_factor(env);
        let r = Self::paper_reference();
        Self {
            precharge: r.precharge * k,
            wl_activate: r.wl_activate * k,
            sense: r.sense * k,
            logic_16b: r.logic_16b * k,
            writeback: r.writeback * k,
        }
    }

    /// The delay of one phase.
    pub fn phase(&self, p: CyclePhase) -> f64 {
        match p {
            CyclePhase::Precharge => self.precharge,
            CyclePhase::WlActivate => self.wl_activate,
            CyclePhase::Sense => self.sense,
            CyclePhase::Logic => self.logic_16b,
            CyclePhase::WriteBack => self.writeback,
        }
    }

    /// Sum of all five components (the paper's "1 cycle" stack, 603 ps at
    /// reference).
    pub fn total(&self) -> f64 {
        self.precharge + self.wl_activate + self.sense + self.logic_16b + self.writeback
    }

    /// The pipeline-visible cycle time: precharge is hidden under the
    /// previous cycle's logic + write-back phases, so the critical path is
    /// WL + sense + logic + write-back (543 ps at reference -> 2.25 GHz at
    /// 1.0 V).
    pub fn cycle_time(&self) -> f64 {
        self.wl_activate + self.sense + self.logic_16b + self.writeback
    }

    /// The fraction of the total stack each phase occupies, in the paper's
    /// plotting order.
    pub fn fractions(&self) -> [(CyclePhase, f64); 5] {
        let t = self.total();
        CyclePhase::ALL.map(|p| (p, self.phase(p) / t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_percentages_match_the_paper() {
        let d = ComponentDelays::paper_reference();
        assert!((d.total() - 603e-12).abs() < 1e-15);
        let f: Vec<f64> = d.fractions().iter().map(|(_, x)| *x * 100.0).collect();
        // Paper: 10.0 %, 23.2 %, 21.6 %, 36.8 %, 8.5 %.
        for (got, want) in f.iter().zip([10.0, 23.2, 21.6, 36.8, 8.5]) {
            assert!((got - want).abs() < 0.15, "{got} vs {want}");
        }
    }

    #[test]
    fn cycle_time_excludes_precharge() {
        let d = ComponentDelays::paper_reference();
        assert!((d.cycle_time() - 543e-12).abs() < 1e-15);
    }

    #[test]
    fn scaling_is_uniform() {
        let lo = ComponentDelays::at(&Env::nominal().with_vdd(0.7));
        let ref_ = ComponentDelays::paper_reference();
        let k = lo.total() / ref_.total();
        assert!(k > 1.5, "0.7 V must be much slower");
        assert!((lo.writeback / ref_.writeback - k).abs() < 1e-9);
    }
}
