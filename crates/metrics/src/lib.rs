//! Timing, energy, area and efficiency models of the macro.
//!
//! The paper's evaluation quantities are produced here:
//!
//! * [`scaling`] — the voltage/corner scaling law shared by all delay
//!   models, fitted to the paper's published operating points (2.25 GHz at
//!   1.0 V, 372 MHz at 0.6 V);
//! * [`delay`] — the cycle-delay component breakdown of Fig. 8 (left):
//!   BL precharge 60 ps, WL activation 140 ps, BL sensing 130 ps, 16-bit
//!   adder logic 222 ps, write-back 51 ps at 0.9 V;
//! * [`fa_timing`] — critical path of the transmission-gate carry-select FA
//!   vs a logic-gate ripple FA (Fig. 7(b): 1.8-2.2x);
//! * [`freq`] — maximum clock frequency vs supply (Fig. 8 right);
//! * [`energy`] + [`calibrate`] — per-operation energy from executor
//!   activity logs, with component coefficients calibrated against the
//!   paper's Table II by Nelder-Mead;
//! * [`tops`] — TOPS/W for ADD and MULT vs voltage (Fig. 8 right,
//!   Table III);
//! * [`area`] — transistor-count area model reproducing the 5.2 % overhead
//!   claim.

pub mod area;
pub mod calibrate;
pub mod delay;
pub mod energy;
pub mod fa_timing;
pub mod freq;
pub mod scaling;
pub mod tops;

pub use area::AreaModel;
pub use calibrate::{paper_calibrated_params, CalibrationReport, PAPER_TABLE2};
pub use delay::ComponentDelays;
pub use energy::{EnergyParams, Table2Op};
pub use fa_timing::FaKind;
pub use freq::FrequencyModel;
pub use scaling::DelayScaling;
pub use tops::TopsModel;
