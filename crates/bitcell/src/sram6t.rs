//! The 6T SRAM bit-cell: sizing, device set and netlist construction.

use bpimc_circuit::{Circuit, NodeId};
use bpimc_device::{MismatchModel, Mosfet, VtFlavor};
use rand::Rng;

/// Drawn sizes (nanometres) of the three cell device types.
///
/// Defaults follow a typical 28 nm high-density 6T cell: a read beta ratio
/// (pull-down / access) of 120/90 and a weak pull-up, which is the balance
/// the read-disturb experiments hinge on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSizing {
    /// Pull-down NMOS width.
    pub w_pd_nm: f64,
    /// Pull-up PMOS width.
    pub w_pu_nm: f64,
    /// Access NMOS width.
    pub w_ax_nm: f64,
    /// Channel length for all cell devices.
    pub l_nm: f64,
}

impl CellSizing {
    /// The default high-density 28 nm cell.
    pub fn hd28() -> Self {
        Self {
            w_pd_nm: 120.0,
            w_pu_nm: 60.0,
            w_ax_nm: 90.0,
            l_nm: 30.0,
        }
    }

    /// Read beta ratio (pull-down strength over access strength).
    pub fn beta(&self) -> f64 {
        self.w_pd_nm / self.w_ax_nm
    }
}

impl Default for CellSizing {
    fn default() -> Self {
        Self::hd28()
    }
}

/// The six transistors of one cell, each possibly carrying a sampled local
/// threshold shift.
///
/// Naming: `_l` devices form the inverter driving node `q` (the BLT side),
/// `_r` the inverter driving `qb` (the BLB side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDevices {
    /// Left pull-down (drives `q` low when `qb` high).
    pub pd_l: Mosfet,
    /// Right pull-down.
    pub pd_r: Mosfet,
    /// Left pull-up.
    pub pu_l: Mosfet,
    /// Right pull-up.
    pub pu_r: Mosfet,
    /// Left access (BLT to `q`).
    pub ax_l: Mosfet,
    /// Right access (BLB to `qb`).
    pub ax_r: Mosfet,
}

impl CellDevices {
    /// The nominal (mismatch-free) device set for a sizing.
    pub fn nominal(sizing: CellSizing) -> Self {
        Self {
            pd_l: Mosfet::nmos(VtFlavor::Rvt, sizing.w_pd_nm, sizing.l_nm),
            pd_r: Mosfet::nmos(VtFlavor::Rvt, sizing.w_pd_nm, sizing.l_nm),
            pu_l: Mosfet::pmos(VtFlavor::Rvt, sizing.w_pu_nm, sizing.l_nm),
            pu_r: Mosfet::pmos(VtFlavor::Rvt, sizing.w_pu_nm, sizing.l_nm),
            ax_l: Mosfet::nmos(VtFlavor::Rvt, sizing.w_ax_nm, sizing.l_nm),
            ax_r: Mosfet::nmos(VtFlavor::Rvt, sizing.w_ax_nm, sizing.l_nm),
        }
    }

    /// Draws a mismatched instance of every device.
    pub fn sampled<R: Rng + ?Sized>(sizing: CellSizing, mm: &MismatchModel, rng: &mut R) -> Self {
        let n = Self::nominal(sizing);
        Self {
            pd_l: mm.sample(&n.pd_l, rng),
            pd_r: mm.sample(&n.pd_r, rng),
            pu_l: mm.sample(&n.pu_l, rng),
            pu_r: mm.sample(&n.pu_r, rng),
            ax_l: mm.sample(&n.ax_l, rng),
            ax_r: mm.sample(&n.ax_r, rng),
        }
    }
}

/// The internal storage nodes of a built cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellNodes {
    /// True-side storage node (connects to BLT through the left access).
    pub q: NodeId,
    /// Complement-side storage node.
    pub qb: NodeId,
}

/// Intrinsic storage-node capacitance (beyond the attached device caps).
const CELL_NODE_CAP: f64 = 0.10e-15;

/// Instantiates a 6T cell into `ckt`.
///
/// `stores_one` sets the initial state: `true` puts `q` at VDD (`Q = 1`).
/// The word-line node `wl` gates both access devices; `vdd` supplies the
/// pull-ups.
#[allow(clippy::too_many_arguments)]
pub fn build_cell(
    ckt: &mut Circuit,
    devs: &CellDevices,
    label: &str,
    blt: NodeId,
    blb: NodeId,
    wl: NodeId,
    vdd: NodeId,
    stores_one: bool,
) -> CellNodes {
    let vdd_v = ckt.env().vdd;
    let (q0, qb0) = if stores_one {
        (vdd_v, 0.0)
    } else {
        (0.0, vdd_v)
    };
    let q = ckt.add_node(&format!("{label}.q"), CELL_NODE_CAP, q0);
    let qb = ckt.add_node(&format!("{label}.qb"), CELL_NODE_CAP, qb0);
    let gnd = ckt.gnd();
    // Cross-coupled inverters.
    ckt.add_mosfet(devs.pd_l, q, qb, gnd);
    ckt.add_mosfet(devs.pu_l, q, qb, vdd);
    ckt.add_mosfet(devs.pd_r, qb, q, gnd);
    ckt.add_mosfet(devs.pu_r, qb, q, vdd);
    // Access devices (bidirectional pass).
    ckt.add_mosfet(devs.ax_l, blt, wl, q);
    ckt.add_mosfet(devs.ax_r, blb, wl, qb);
    CellNodes { q, qb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_circuit::{SimOptions, Waveform};
    use bpimc_device::Env;
    use bpimc_stats::seeded_rng;

    fn read_bench(stores_one: bool, v_wl: f64) -> (Circuit, CellNodes, NodeId, NodeId) {
        let env = Env::nominal();
        let mut ckt = Circuit::new(env);
        let vdd = ckt.add_source("vdd", Waveform::dc(env.vdd));
        let wl = ckt.add_source("wl", Waveform::step(0.0, v_wl, 100e-12, 15e-12));
        let blt = ckt.add_node("blt", 18e-15, env.vdd);
        let blb = ckt.add_node("blb", 18e-15, env.vdd);
        let devs = CellDevices::nominal(CellSizing::hd28());
        let nodes = build_cell(&mut ckt, &devs, "c0", blt, blb, wl, vdd, stores_one);
        (ckt, nodes, blt, blb)
    }

    #[test]
    fn cell_holds_state_without_access() {
        let (ckt, nodes, ..) = read_bench(true, 0.0); // WL never rises (v_wl = 0)
        let tr = ckt.run(&SimOptions::for_window(2e-9));
        assert!(tr.last_voltage(nodes.q) > 0.85);
        assert!(tr.last_voltage(nodes.qb) < 0.05);
    }

    #[test]
    fn read_discharges_the_correct_bitline() {
        // Q = 0: BLT discharges through the left access; BLB stays high.
        let (ckt, _nodes, blt, blb) = read_bench(false, 0.9);
        let tr = ckt.run(&SimOptions::for_window(4e-9));
        assert!(tr.last_voltage(blt) < 0.45, "BLT should discharge");
        assert!(tr.last_voltage(blb) > 0.8, "BLB should stay near VDD");
    }

    #[test]
    fn wlud_read_is_slower() {
        let (ckt_full, _, blt_f, _) = read_bench(false, 0.9);
        let (ckt_ud, _, blt_u, _) = read_bench(false, 0.55);
        let opts = SimOptions::for_window(6e-9);
        let tr_f = ckt_full.run(&opts);
        let tr_u = ckt_ud.run(&opts);
        use bpimc_circuit::Edge;
        let t_f = tr_f.cross_time(blt_f, 0.45, Edge::Falling, 0.0).unwrap();
        let t_u = tr_u.cross_time(blt_u, 0.45, Edge::Falling, 0.0).unwrap();
        assert!(t_u > 2.0 * t_f, "WLUD {t_u} vs full {t_f}");
    }

    #[test]
    fn nominal_cell_survives_a_normal_read() {
        // Reading a cell storing 1 must not flip it at nominal conditions.
        let (ckt, nodes, ..) = read_bench(true, 0.9);
        let tr = ckt.run(&SimOptions::for_window(4e-9));
        assert!(tr.last_voltage(nodes.q) > tr.last_voltage(nodes.qb));
    }

    #[test]
    fn sampled_devices_differ() {
        let mut rng = seeded_rng(4);
        let mm = MismatchModel::nominal();
        let a = CellDevices::sampled(CellSizing::hd28(), &mm, &mut rng);
        let b = CellDevices::sampled(CellSizing::hd28(), &mm, &mut rng);
        assert_ne!(a.pd_l.dvt(), b.pd_l.dvt());
    }

    #[test]
    fn beta_ratio_default() {
        let s = CellSizing::hd28();
        assert!((s.beta() - 120.0 / 90.0).abs() < 1e-12);
    }
}
