//! The BL boosting circuit of the paper's Fig. 3.
//!
//! Operation: before the WL pulse the mirror node is reset to VSS (BSTRS).
//! The LVT PMOS `P0` watches the bit-line: once the short WL pulse has let
//! the cells sag the BL by roughly an LVT threshold, `P0` conducts and
//! charges the mirror node, which turns on the large LVT `N0`/`N1` stack and
//! finishes the BL discharge far faster than the cells could — positive
//! feedback. If the computation result is "high" (no cell pulls), the BL
//! never sags, `P0` stays off and the booster never fires.

use bpimc_circuit::{Circuit, NodeId, Waveform};
use bpimc_device::{MismatchModel, Mosfet, VtFlavor};
use rand::Rng;

/// Drawn sizes (nanometres) of the booster devices.
///
/// They are deliberately much larger than cell transistors: the paper notes
/// the boost path "has larger discharge path than that of SRAM cell", which
/// is also why its delay *variance* is small (Pelgrom: sigma ~ 1/sqrt(WL)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostSizing {
    /// BL-sensing PMOS `P0` width.
    pub w_p0_nm: f64,
    /// Pull-down stack widths (`N0` mirror-gated, `N1` enable-gated).
    pub w_n_nm: f64,
    /// Mirror reset NMOS width.
    pub w_rst_nm: f64,
    /// Channel length for all booster devices.
    pub l_nm: f64,
}

impl BoostSizing {
    /// Default booster sizing.
    pub fn default_28nm() -> Self {
        Self {
            w_p0_nm: 320.0,
            w_n_nm: 400.0,
            w_rst_nm: 100.0,
            l_nm: 30.0,
        }
    }
}

impl Default for BoostSizing {
    fn default() -> Self {
        Self::default_28nm()
    }
}

/// The booster's device set (all LVT, per the paper, except the reset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostDevices {
    /// BL-sensing PMOS.
    pub p0: Mosfet,
    /// Mirror-gated pull-down.
    pub n0: Mosfet,
    /// Enable-gated pull-down.
    pub n1: Mosfet,
    /// Mirror reset device (gated by BSTRS).
    pub nrst: Mosfet,
}

impl BoostDevices {
    /// Nominal (mismatch-free) booster.
    pub fn nominal(s: BoostSizing) -> Self {
        Self {
            p0: Mosfet::pmos(VtFlavor::Lvt, s.w_p0_nm, s.l_nm),
            n0: Mosfet::nmos(VtFlavor::Lvt, s.w_n_nm, s.l_nm),
            n1: Mosfet::nmos(VtFlavor::Lvt, s.w_n_nm, s.l_nm),
            nrst: Mosfet::nmos(VtFlavor::Rvt, s.w_rst_nm, s.l_nm),
        }
    }

    /// Draws a mismatched instance (the booster varies far less than cells
    /// thanks to its large devices, but it still varies).
    pub fn sampled<R: Rng + ?Sized>(s: BoostSizing, mm: &MismatchModel, rng: &mut R) -> Self {
        let n = Self::nominal(s);
        Self {
            p0: mm.sample(&n.p0, rng),
            n0: mm.sample(&n.n0, rng),
            n1: mm.sample(&n.n1, rng),
            nrst: mm.sample(&n.nrst, rng),
        }
    }
}

/// Intrinsic mirror-node capacitance.
const MIRROR_CAP: f64 = 0.20e-15;

/// Instantiates a booster watching bit-line `bl`.
///
/// `bstrs` and `bsten` are the reset and enable control nodes. Returns the
/// mirror node for observation.
pub fn build_boost(
    ckt: &mut Circuit,
    devs: &BoostDevices,
    label: &str,
    bl: NodeId,
    bstrs: NodeId,
    bsten: NodeId,
    vdd: NodeId,
) -> NodeId {
    let mirror = ckt.add_node(&format!("{label}.mirror"), MIRROR_CAP, 0.0);
    let mid = ckt.add_node(&format!("{label}.mid"), 0.15e-15, 0.0);
    let gnd = ckt.gnd();
    // P0: source = VDD, gate = BL, drain = mirror.
    ckt.add_mosfet(devs.p0, mirror, bl, vdd);
    // Reset: mirror to ground while BSTRS high.
    ckt.add_mosfet(devs.nrst, mirror, bstrs, gnd);
    // Discharge stack: BL -> N0 -> mid -> N1 -> gnd.
    ckt.add_mosfet(devs.n0, bl, mirror, mid);
    ckt.add_mosfet(devs.n1, mid, bsten, gnd);
    mirror
}

/// Standard control waveforms for one computing cycle.
///
/// BSTRS pulses high during precharge (resetting the mirror) and returns low
/// `margin` before the WL pulse; BSTEN rises with the end of the reset and
/// stays high for the evaluation.
pub fn boost_controls(vdd: f64, t_wl: f64) -> (Waveform, Waveform) {
    let t_edge = 10e-12;
    let reset_end = (t_wl - 30e-12).max(20e-12);
    let bstrs = Waveform::pulse(0.0, vdd, 5e-12, reset_end - 5e-12, t_edge);
    let bsten = Waveform::step(0.0, vdd, reset_end, t_edge);
    (bstrs, bsten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_circuit::SimOptions;
    use bpimc_device::Env;

    /// Builds a lone booster on a BL with a weak constant pull-down standing
    /// in for a cell, or no pull at all.
    fn boost_bench(cell_pulls: bool) -> (Circuit, NodeId, NodeId) {
        let env = Env::nominal();
        let mut ckt = Circuit::new(env);
        let vdd = ckt.add_source("vdd", Waveform::dc(env.vdd));
        let bl = ckt.add_node("bl", 18e-15, env.vdd);
        let t_wl = 200e-12;
        let (bstrs_w, bsten_w) = boost_controls(env.vdd, t_wl);
        let bstrs = ckt.add_source("bstrs", bstrs_w);
        let bsten = ckt.add_source("bsten", bsten_w);
        let devs = BoostDevices::nominal(BoostSizing::default_28nm());
        let mirror = build_boost(&mut ckt, &devs, "b", bl, bstrs, bsten, vdd);
        if cell_pulls {
            // A cell-strength pull-down active only during a 140 ps "WL pulse".
            let wl = ckt.add_source("wl", Waveform::pulse(0.0, env.vdd, t_wl, 140e-12, 15e-12));
            let cell = Mosfet::nmos(VtFlavor::Rvt, 60.0, 30.0);
            ckt.add_mosfet(cell, bl, wl, ckt.gnd());
        }
        (ckt, bl, mirror)
    }

    #[test]
    fn booster_fires_on_a_sagging_bl() {
        let (ckt, bl, mirror) = boost_bench(true);
        let tr = ckt.run(&SimOptions::for_window(2.5e-9));
        assert!(tr.last_voltage(mirror) > 0.5, "mirror should latch high");
        assert!(
            tr.last_voltage(bl) < 0.1,
            "boost should complete the discharge"
        );
    }

    #[test]
    fn booster_stays_quiet_on_a_high_bl() {
        let (ckt, bl, mirror) = boost_bench(false);
        let tr = ckt.run(&SimOptions::for_window(2.5e-9));
        assert!(
            tr.last_voltage(bl) > 0.8,
            "BL must stay high, got {}",
            tr.last_voltage(bl)
        );
        assert!(
            tr.last_voltage(mirror) < 0.3,
            "mirror must stay low, got {}",
            tr.last_voltage(mirror)
        );
    }

    #[test]
    fn disabled_booster_does_not_complete_the_discharge() {
        // Same sagging-BL bench but with BSTEN held low: the N0/N1 stack is
        // cut off, so the BL keeps whatever sag the cell pulse produced.
        let env = Env::nominal();
        let mut ckt = Circuit::new(env);
        let vdd = ckt.add_source("vdd", Waveform::dc(env.vdd));
        let bl = ckt.add_node("bl", 18e-15, env.vdd);
        let bstrs = ckt.add_source(
            "bstrs",
            Waveform::pulse(0.0, env.vdd, 5e-12, 150e-12, 10e-12),
        );
        let bsten = ckt.add_source("bsten", Waveform::dc(0.0));
        let devs = BoostDevices::nominal(BoostSizing::default_28nm());
        let _mirror = build_boost(&mut ckt, &devs, "b", bl, bstrs, bsten, vdd);
        let wl = ckt.add_source(
            "wl",
            Waveform::pulse(0.0, env.vdd, 200e-12, 140e-12, 15e-12),
        );
        ckt.add_mosfet(Mosfet::nmos(VtFlavor::Rvt, 60.0, 30.0), bl, wl, ckt.gnd());
        let tr = ckt.run(&SimOptions::for_window(2.5e-9));
        let v_bl = tr.last_voltage(bl);
        assert!(
            v_bl > 0.3,
            "without BSTEN the BL should retain most of its charge, got {v_bl}"
        );
    }

    #[test]
    fn control_waveforms_sequence_correctly() {
        let (bstrs, bsten) = boost_controls(0.9, 200e-12);
        // During reset: BSTRS high, BSTEN low.
        assert!(bstrs.at(50e-12) > 0.8);
        assert!(bsten.at(50e-12) < 0.1);
        // At WL time: reset released, enable on.
        assert!(bstrs.at(200e-12) < 0.1);
        assert!(bsten.at(200e-12) > 0.8);
    }
}
