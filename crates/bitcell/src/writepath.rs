//! The write-back path with and without the BL separator.
//!
//! Iterative operations (SUB, MULT) write intermediate values to the dummy
//! rows. The BL separator is a pass-gate that can disconnect the long,
//! high-capacitance main-array bit-line segment from the short dummy-row
//! segment, so a dummy write only swings a few femtofarads — the paper
//! credits it with both write-back delay and energy reduction.

use bpimc_circuit::{Circuit, CircuitError, Edge, SimOptions, Waveform};
use bpimc_device::{Env, Mosfet, VtFlavor};

/// Per-row bit-line capacitance (matches the compute bench).
const BL_CAP_PER_ROW: f64 = 0.10e-15;
/// Extra wiring/mux capacitance on the dummy segment.
const DUMMY_EXTRA_CAP: f64 = 1.2e-15;

/// A write-driver + separator + bit-line-segment bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePathBench {
    /// Main-array rows on the long BL segment.
    pub main_rows: usize,
    /// Dummy rows on the short segment (the paper uses 3).
    pub dummy_rows: usize,
    /// Operating environment.
    pub env: Env,
    /// Write driver NMOS/PMOS width (nm).
    pub w_driver_nm: f64,
    /// Separator pass-gate width (nm).
    pub w_sep_nm: f64,
}

impl WritePathBench {
    /// The paper's configuration: 128 main rows, 3 dummy rows.
    pub fn paper_column(env: Env) -> Self {
        Self {
            main_rows: 128,
            dummy_rows: 3,
            env,
            w_driver_nm: 500.0,
            w_sep_nm: 400.0,
        }
    }

    /// Simulates one write-back (driving the dummy segment low from VDD) and
    /// returns the time for the dummy-segment BL to fall below 10% of VDD.
    ///
    /// With `separator_on`, the pass-gate between the segments is off and
    /// only the dummy capacitance swings; otherwise the main segment loads
    /// the driver too.
    ///
    /// # Errors
    ///
    /// Returns an error if the segment never completes the swing in the
    /// simulated window.
    pub fn writeback_delay(&self, separator_on: bool) -> Result<f64, CircuitError> {
        let vdd_v = self.env.vdd;
        let mut ckt = Circuit::new(self.env);
        let vdd = ckt.add_source("vdd", Waveform::dc(vdd_v));

        let c_dummy = self.dummy_rows as f64 * BL_CAP_PER_ROW + DUMMY_EXTRA_CAP;
        let c_main = self.main_rows as f64 * BL_CAP_PER_ROW;
        let bl_dummy = ckt.add_node("bl_dummy", c_dummy, vdd_v);
        let bl_main = ckt.add_node("bl_main", c_main, vdd_v);

        // Separator: an NMOS/PMOS transmission gate between the segments.
        // `separator_on = true` means the paper's feature is ACTIVE, i.e. the
        // gate is OFF and the main BL is disconnected.
        let (g_n, g_p) = if separator_on {
            (0.0, vdd_v)
        } else {
            (vdd_v, 0.0)
        };
        let sep_n_gate = ckt.add_source("sep_n", Waveform::dc(g_n));
        let sep_p_gate = ckt.add_source("sep_p", Waveform::dc(g_p));
        ckt.add_mosfet(
            Mosfet::nmos(VtFlavor::Rvt, self.w_sep_nm, 30.0),
            bl_main,
            sep_n_gate,
            bl_dummy,
        );
        ckt.add_mosfet(
            Mosfet::pmos(VtFlavor::Rvt, self.w_sep_nm, 30.0),
            bl_main,
            sep_p_gate,
            bl_dummy,
        );

        // Write driver: pulls the dummy segment low when enabled at t0.
        let t0 = 50e-12;
        let en = ckt.add_source("wr_en", Waveform::step(0.0, vdd_v, t0, 10e-12));
        ckt.add_mosfet(
            Mosfet::nmos(VtFlavor::Rvt, self.w_driver_nm, 30.0),
            bl_dummy,
            en,
            ckt.gnd(),
        );
        let _ = vdd;

        let trace = ckt.run(&SimOptions::for_window(2.5e-9));
        let t_done = trace.cross_time(bl_dummy, 0.1 * vdd_v, Edge::Falling, t0)?;
        Ok(t_done - t0)
    }

    /// The capacitance that swings in one dummy write-back, farads.
    pub fn swung_capacitance(&self, separator_on: bool) -> f64 {
        let c_dummy = self.dummy_rows as f64 * BL_CAP_PER_ROW + DUMMY_EXTRA_CAP;
        if separator_on {
            c_dummy
        } else {
            c_dummy + self.main_rows as f64 * BL_CAP_PER_ROW
        }
    }

    /// CV^2 energy of one dummy write-back, joules.
    pub fn writeback_energy(&self, separator_on: bool) -> f64 {
        self.swung_capacitance(separator_on) * self.env.vdd * self.env.vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separator_cuts_writeback_delay() {
        let bench = WritePathBench::paper_column(Env::nominal());
        let with = bench.writeback_delay(true).unwrap();
        let without = bench.writeback_delay(false).unwrap();
        assert!(
            with < 0.4 * without,
            "with sep {with:.3e} should be much faster than without {without:.3e}"
        );
        // With the separator the write is tens of picoseconds, like the
        // paper's 51 ps write-back component.
        assert!(with > 5e-12 && with < 150e-12, "with = {with:.3e}");
    }

    #[test]
    fn separator_cuts_swung_capacitance() {
        let bench = WritePathBench::paper_column(Env::nominal());
        let c_on = bench.swung_capacitance(true);
        let c_off = bench.swung_capacitance(false);
        assert!(c_on < c_off);
        assert!((c_off - c_on - 128.0 * BL_CAP_PER_ROW).abs() < 1e-18);
    }

    #[test]
    fn energy_scales_with_vdd_squared() {
        let e06 = WritePathBench::paper_column(Env::nominal().with_vdd(0.6)).writeback_energy(true);
        let e12 = WritePathBench::paper_column(Env::nominal().with_vdd(1.2)).writeback_energy(true);
        assert!((e12 / e06 - 4.0).abs() < 1e-9);
    }
}
