//! The dual-WL bit-line computing test-bench.
//!
//! Two cells (operands A and B) share one column. Both word-lines are
//! activated and the bit-line pair evaluates `BLT = A AND B`,
//! `BLB = NOR(A, B)` — the primitive every operation of the paper is built
//! from. The bench supports the three word-line schemes the paper compares
//! (Fig. 1, Fig. 2, Fig. 7a):
//!
//! * [`WlScheme::FullStatic`] — full-VDD WL held high: fast but disturb-prone,
//! * [`WlScheme::Wlud`] — under-driven WL: safe but slow (the conventional fix),
//! * [`WlScheme::ShortBoost`] — the paper's full-VDD *short pulse* plus BL
//!   boosting: fast *and* safe.

use crate::boost::{boost_controls, build_boost, BoostDevices, BoostSizing};
use crate::senseamp::SenseAmp;
use crate::sram6t::{build_cell, CellDevices, CellNodes, CellSizing};
use bpimc_circuit::{Circuit, CircuitError, NodeId, SimOptions, Trace, Waveform};
use bpimc_device::Env;

/// Word-line drive scheme under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WlScheme {
    /// Full-VDD word-line held high for the whole access (conventional,
    /// disturb-prone).
    FullStatic,
    /// Word-line under-drive: the WL is held at `v_wl` (< VDD) for the whole
    /// access. The conventional read-disturb fix.
    Wlud {
        /// The under-driven word-line level in volts.
        v_wl: f64,
    },
    /// The paper's scheme: full-VDD WL pulse of `pulse_s` seconds, with the
    /// BL boosting circuit enabled to finish the swing.
    ShortBoost {
        /// WL pulse width (flat-top), seconds.
        pulse_s: f64,
    },
}

impl WlScheme {
    /// The paper's nominal short-pulse operating point (140 ps).
    pub fn short_boost_140ps() -> Self {
        WlScheme::ShortBoost { pulse_s: 140e-12 }
    }

    /// True when the booster is active in this scheme.
    pub fn uses_boost(&self) -> bool {
        matches!(self, WlScheme::ShortBoost { .. })
    }
}

/// Per-column capacitance of one row's worth of bit-line (wire + diffusion
/// of an unaccessed cell), farads.
const BL_CAP_PER_ROW: f64 = 0.10e-15;

/// WL activation start time inside the simulated window.
const T_WL: f64 = 0.20e-9;
/// WL rise/fall time.
const T_EDGE: f64 = 15e-12;

/// Everything observable about one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlOutcome {
    /// BL computing delay (WL activation to SA output), seconds. `None` when
    /// the compute result is "high" (no discharge — the SA reads 1).
    pub delay_s: Option<f64>,
    /// Worst instantaneous storage-node separation of cell A during the
    /// access, volts. Negative means the internal nodes crossed (flip).
    pub margin_a: f64,
    /// Same for cell B.
    pub margin_b: f64,
    /// Whether either cell ended the window flipped.
    pub flipped: bool,
    /// Final BLT voltage (for debugging/plotting).
    pub blt_final: f64,
}

impl BlOutcome {
    /// The worst disturb margin across both accessed cells.
    pub fn worst_margin(&self) -> f64 {
        self.margin_a.min(self.margin_b)
    }
}

/// The assembled dual-WL bench configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BlComputeBench {
    /// Number of rows hanging on the bit-line (sets its capacitance).
    pub rows: usize,
    /// Operating environment.
    pub env: Env,
    /// Word-line scheme under test.
    pub scheme: WlScheme,
    /// Cell sizing.
    pub sizing: CellSizing,
    /// Booster sizing (used only by [`WlScheme::ShortBoost`]).
    pub boost_sizing: BoostSizing,
    /// Sense amplifier model.
    pub sa: SenseAmp,
}

impl BlComputeBench {
    /// Creates a bench with default sizings.
    pub fn new(rows: usize, env: Env, scheme: WlScheme) -> Self {
        Self {
            rows,
            env,
            scheme,
            sizing: CellSizing::hd28(),
            boost_sizing: BoostSizing::default_28nm(),
            sa: SenseAmp::default_28nm(),
        }
    }

    /// The simulation window appropriate for the scheme (WLUD needs more
    /// time than the boosted scheme).
    pub fn window(&self) -> f64 {
        match self.scheme {
            WlScheme::Wlud { .. } => 6e-9,
            _ => 3e-9,
        }
    }

    /// The WL waveform for this scheme.
    fn wl_wave(&self) -> Waveform {
        let vdd = self.env.vdd;
        match self.scheme {
            WlScheme::FullStatic => Waveform::step(0.0, vdd, T_WL, T_EDGE),
            WlScheme::Wlud { v_wl } => Waveform::step(0.0, v_wl, T_WL, T_EDGE),
            WlScheme::ShortBoost { pulse_s } => Waveform::pulse(0.0, vdd, T_WL, pulse_s, T_EDGE),
        }
    }

    /// Builds the full netlist for stored operand values `a` and `b` with
    /// explicit device sets (so Monte-Carlo callers can inject mismatch).
    pub fn build(
        &self,
        cell_a: &CellDevices,
        cell_b: &CellDevices,
        boost_t: &BoostDevices,
        boost_b: &BoostDevices,
        a: bool,
        b: bool,
    ) -> (Circuit, BenchNodes) {
        let vdd_v = self.env.vdd;
        let mut ckt = Circuit::new(self.env);
        let vdd = ckt.add_source("vdd", Waveform::dc(vdd_v));
        let wl = ckt.add_source("wl", self.wl_wave());

        // Bit-line pair. The two accessed cells' diffusion caps are added by
        // their access devices; the remaining rows contribute lumped cap.
        let c_bl = (self.rows.saturating_sub(2)) as f64 * BL_CAP_PER_ROW;
        let blt = ckt.add_node("blt", c_bl.max(1e-15), vdd_v);
        let blb = ckt.add_node("blb", c_bl.max(1e-15), vdd_v);

        let nodes_a = build_cell(&mut ckt, cell_a, "cellA", blt, blb, wl, vdd, a);
        let nodes_b = build_cell(&mut ckt, cell_b, "cellB", blt, blb, wl, vdd, b);

        let (mirror_t, mirror_b) = if self.scheme.uses_boost() {
            let (bstrs_w, bsten_w) = boost_controls(vdd_v, T_WL);
            let bstrs = ckt.add_source("bstrs", bstrs_w);
            let bsten = ckt.add_source("bsten", bsten_w);
            let mt = build_boost(&mut ckt, boost_t, "boostT", blt, bstrs, bsten, vdd);
            let mb = build_boost(&mut ckt, boost_b, "boostB", blb, bstrs, bsten, vdd);
            (Some(mt), Some(mb))
        } else {
            (None, None)
        };

        let nodes = BenchNodes {
            blt,
            blb,
            cell_a: nodes_a,
            cell_b: nodes_b,
            mirror_t,
            mirror_b,
        };
        (ckt, nodes)
    }

    /// Runs the bench and measures the outcome.
    pub fn run(
        &self,
        cell_a: &CellDevices,
        cell_b: &CellDevices,
        boost_t: &BoostDevices,
        boost_b: &BoostDevices,
        a: bool,
        b: bool,
    ) -> Result<BlOutcome, CircuitError> {
        let (ckt, nodes) = self.build(cell_a, cell_b, boost_t, boost_b, a, b);
        let trace = ckt.run(&SimOptions::for_window(self.window()));
        Ok(self.measure(&trace, &nodes, a, b))
    }

    /// Extracts the outcome from a finished trace.
    pub fn measure(&self, trace: &Trace, nodes: &BenchNodes, a: bool, b: bool) -> BlOutcome {
        let vdd = self.env.vdd;
        let t_end = self.window();
        // AND on BLT discharges unless both cells store 1.
        let expect_discharge = !(a && b);
        let delay_s = if expect_discharge {
            self.sa.sense_delay(trace, nodes.blt, vdd, T_WL).ok()
        } else {
            None
        };
        let margin = |cell: &CellNodes, stores_one: bool| -> f64 {
            let (hi, lo) = if stores_one {
                (cell.q, cell.qb)
            } else {
                (cell.qb, cell.q)
            };
            // Worst instantaneous separation of the storage nodes during and
            // after the access window.
            let mut worst = f64::INFINITY;
            for (k, &t) in trace.times().iter().enumerate() {
                if t < T_WL {
                    continue;
                }
                let sep = trace.voltage_at_index(hi, k) - trace.voltage_at_index(lo, k);
                worst = worst.min(sep);
            }
            worst
        };
        let margin_a = margin(&nodes.cell_a, a);
        let margin_b = margin(&nodes.cell_b, b);
        let final_state =
            |cell: &CellNodes| trace.last_voltage(cell.q) > trace.last_voltage(cell.qb);
        let flipped = final_state(&nodes.cell_a) != a || final_state(&nodes.cell_b) != b;
        let _ = t_end;
        BlOutcome {
            delay_s,
            margin_a,
            margin_b,
            flipped,
            blt_final: trace.last_voltage(nodes.blt),
        }
    }

    /// Convenience: the mismatch-free BL computing delay for operand values
    /// `(a, b)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the BL never trips the SA (e.g. `a AND b = 1`).
    pub fn nominal_delay(&self, a: bool, b: bool) -> Result<f64, CircuitError> {
        let cell = CellDevices::nominal(self.sizing);
        let boost = BoostDevices::nominal(self.boost_sizing);
        let out = self.run(&cell, &cell, &boost, &boost, a, b)?;
        out.delay_s.ok_or(CircuitError::NoCrossing {
            node: "blt".to_string(),
            level: self.sa.trip_voltage(self.env.vdd),
        })
    }

    /// The WL activation time inside the window (for external measurements).
    pub fn t_wl() -> f64 {
        T_WL
    }
}

/// Observable nodes of a built bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchNodes {
    /// True bit-line (computes `A AND B`).
    pub blt: NodeId,
    /// Complement bit-line (computes `NOR(A, B)`).
    pub blb: NodeId,
    /// Storage nodes of operand-A's cell.
    pub cell_a: CellNodes,
    /// Storage nodes of operand-B's cell.
    pub cell_b: CellNodes,
    /// BLT booster mirror node (when boosting).
    pub mirror_t: Option<NodeId>,
    /// BLB booster mirror node (when boosting).
    pub mirror_b: Option<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal_outcome(scheme: WlScheme, a: bool, b: bool) -> BlOutcome {
        let bench = BlComputeBench::new(128, Env::nominal(), scheme);
        let cell = CellDevices::nominal(bench.sizing);
        let boost = BoostDevices::nominal(bench.boost_sizing);
        bench.run(&cell, &cell, &boost, &boost, a, b).unwrap()
    }

    #[test]
    fn and_truth_table_on_blt() {
        // BLT discharges (SA reads low) for 00, 01, 10; stays high for 11.
        for (a, b) in [(false, false), (false, true), (true, false)] {
            let out = nominal_outcome(WlScheme::short_boost_140ps(), a, b);
            assert!(out.delay_s.is_some(), "expected discharge for ({a},{b})");
        }
        let out = nominal_outcome(WlScheme::short_boost_140ps(), true, true);
        assert!(out.delay_s.is_none(), "BLT must stay high for (1,1)");
        assert!(out.blt_final > 0.7, "blt_final = {}", out.blt_final);
    }

    #[test]
    fn proposed_scheme_is_faster_than_wlud() {
        let wlud = nominal_outcome(WlScheme::Wlud { v_wl: 0.55 }, false, true);
        let prop = nominal_outcome(WlScheme::short_boost_140ps(), false, true);
        let (dw, dp) = (wlud.delay_s.unwrap(), prop.delay_s.unwrap());
        assert!(dp < 0.6 * dw, "proposed {dp:.3e} vs WLUD {dw:.3e}");
    }

    #[test]
    fn nominal_accesses_do_not_flip_cells() {
        for scheme in [WlScheme::Wlud { v_wl: 0.55 }, WlScheme::short_boost_140ps()] {
            let out = nominal_outcome(scheme, false, true);
            assert!(!out.flipped, "{scheme:?} flipped a nominal cell");
            assert!(
                out.worst_margin() > 0.1,
                "{scheme:?} margin {}",
                out.worst_margin()
            );
        }
    }

    #[test]
    fn full_static_wl_stresses_cells_harder_than_short_pulse() {
        let full = nominal_outcome(WlScheme::FullStatic, false, true);
        let short = nominal_outcome(WlScheme::short_boost_140ps(), false, true);
        assert!(
            full.worst_margin() < short.worst_margin(),
            "full {} vs short {}",
            full.worst_margin(),
            short.worst_margin()
        );
    }

    #[test]
    fn boosted_discharge_outruns_unboosted_short_pulse() {
        // Without the booster, a 140 ps pulse leaves the BL barely sagged.
        let bench = BlComputeBench::new(128, Env::nominal(), WlScheme::short_boost_140ps());
        let cell = CellDevices::nominal(bench.sizing);
        let boost = BoostDevices::nominal(bench.boost_sizing);
        let out = bench
            .run(&cell, &cell, &boost, &boost, false, true)
            .unwrap();
        assert!(out.delay_s.is_some(), "boosted scheme completes the swing");
        assert!(
            out.blt_final < 0.2,
            "boost should drive BLT low, got {}",
            out.blt_final
        );
    }
}
