//! Electrical models of the paper's SRAM cell and bit-line computing path.
//!
//! Everything here is assembled from [`bpimc_circuit`] netlists and simulated
//! with real transients — this is the substitute for the paper's post-layout
//! SPICE runs. The crate covers:
//!
//! * the 6T bit-cell ([`sram6t`]) with per-device mismatch sampling,
//! * the BL boosting circuit of Fig. 3 ([`boost`]): LVT P0 sensing the BL
//!   sag, mirror node, LVT N0/N1 pull-down stack — the positive-feedback
//!   accelerator that finishes the discharge the short WL pulse starts,
//! * the single-ended sense amplifier model ([`senseamp`]),
//! * the complete dual-WL bit-line computing test-bench ([`blbench`]) in all
//!   three schemes the paper compares: conventional full static WL, WLUD,
//!   and the proposed short WL + BL boost,
//! * read-disturb margin Monte-Carlo, failure-rate extrapolation, and
//!   iso-failure calibration ([`disturb`]) reproducing the 2.5e-5 operating
//!   points (WLUD at ~0.55 V, short pulse at ~140 ps),
//! * the write-back path with and without the BL separator ([`writepath`]).
//!
//! # Examples
//!
//! Compare the nominal (no-mismatch) BL computing delay of WLUD vs the
//! proposed scheme, as in the paper's Fig. 7(a):
//!
//! ```no_run
//! use bpimc_cell::blbench::{BlComputeBench, WlScheme};
//! use bpimc_device::Env;
//!
//! let wlud = BlComputeBench::new(128, Env::nominal(), WlScheme::Wlud { v_wl: 0.55 });
//! let prop = BlComputeBench::new(128, Env::nominal(), WlScheme::short_boost_140ps());
//! let d_wlud = wlud.nominal_delay(false, true).unwrap();
//! let d_prop = prop.nominal_delay(false, true).unwrap();
//! assert!(d_prop < d_wlud);
//! ```

pub mod blbench;
pub mod boost;
pub mod disturb;
pub mod senseamp;
pub mod sram6t;
pub mod writepath;

pub use blbench::{BlComputeBench, BlOutcome, WlScheme};
pub use boost::{BoostDevices, BoostSizing};
pub use disturb::{DisturbStudy, IsoFailureCalibration};
pub use senseamp::SenseAmp;
pub use sram6t::{CellDevices, CellSizing};
pub use writepath::WritePathBench;
