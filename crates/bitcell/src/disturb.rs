//! Read-disturb Monte-Carlo, failure-rate extrapolation and iso-failure
//! calibration.
//!
//! The paper compares its short-WL + boost scheme against WLUD *at equal
//! read-disturb failure rate* (2.5e-5, its Fig. 2). This module provides
//! that machinery: sample cell mismatch, simulate the dual-WL access,
//! extract the worst storage-node margin, fit a Gaussian tail and solve for
//! the scheme parameter (WLUD level, or pulse width) that hits the target
//! failure rate.

use crate::blbench::{BlComputeBench, BlOutcome, WlScheme};
use crate::boost::BoostDevices;
use crate::sram6t::CellDevices;
use bpimc_circuit::mc::{montecarlo, montecarlo_batch};
use bpimc_circuit::SimOptions;
use bpimc_device::{Env, MismatchModel};
use bpimc_stats::TailFit;
use rand::rngs::StdRng;

/// A Monte-Carlo disturb study over one bench configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DisturbStudy {
    bench: BlComputeBench,
    mismatch: MismatchModel,
}

impl DisturbStudy {
    /// Creates a study of `bench` under `mismatch`.
    pub fn new(bench: BlComputeBench, mismatch: MismatchModel) -> Self {
        Self { bench, mismatch }
    }

    /// The underlying bench.
    pub fn bench(&self) -> &BlComputeBench {
        &self.bench
    }

    /// Builds one mismatch-sampled instance of the bench netlist for the
    /// worst-case operand pattern (A = 0, B = 1: BLT discharges under cell
    /// B's high node while BLB chews at its low node).
    ///
    /// This method **owns the sampling-order contract** — cell A, cell B,
    /// BLT booster, BLB booster — for every execution path (batched,
    /// scalar reference, benchmarks), so per-sample draws can never drift
    /// apart between them.
    pub fn sampled_circuit(&self, rng: &mut StdRng) -> bpimc_circuit::Circuit {
        let mm = &self.mismatch;
        let cell_a = CellDevices::sampled(self.bench.sizing, mm, rng);
        let cell_b = CellDevices::sampled(self.bench.sizing, mm, rng);
        let boost_t = BoostDevices::sampled(self.bench.boost_sizing, mm, rng);
        let boost_b = BoostDevices::sampled(self.bench.boost_sizing, mm, rng);
        self.bench
            .build(&cell_a, &cell_b, &boost_t, &boost_b, false, true)
            .0
    }

    /// The observable nodes of this study's bench netlist (positional, so
    /// they name the nodes of every sampled instance too).
    pub fn bench_nodes(&self) -> crate::blbench::BenchNodes {
        let cell = CellDevices::nominal(self.bench.sizing);
        let boost = BoostDevices::nominal(self.bench.boost_sizing);
        self.bench
            .build(&cell, &cell, &boost, &boost, false, true)
            .1
    }

    /// Runs `n` Monte-Carlo samples through the structure-of-arrays batch
    /// engine and measures each outcome — the execution path behind both
    /// [`DisturbStudy::margins`] and [`DisturbStudy::delays`].
    fn outcomes_batch(&self, n: usize, seed: u64) -> Vec<BlOutcome> {
        let nodes = self.bench_nodes();
        let opts = SimOptions::for_window(self.bench.window());
        montecarlo_batch(
            n,
            seed,
            &opts,
            |_, rng| self.sampled_circuit(rng),
            |_, trace| self.bench.measure(trace, &nodes, false, true),
        )
    }

    /// Samples `n` disturb margins for the worst-case operand pattern
    /// (A = 0, B = 1), batched across instances — bit-identical to
    /// [`DisturbStudy::margins_scalar`] sample for sample.
    pub fn margins(&self, n: usize, seed: u64) -> Vec<f64> {
        self.outcomes_batch(n, seed)
            .iter()
            .map(BlOutcome::worst_margin)
            .collect()
    }

    /// [`DisturbStudy::margins`] on the scalar one-instance-at-a-time
    /// solver — the verified reference path the batch engine is pinned
    /// against. Same [`DisturbStudy::sampled_circuit`] draws, different
    /// solver.
    pub fn margins_scalar(&self, n: usize, seed: u64) -> Vec<f64> {
        let nodes = self.bench_nodes();
        let opts = SimOptions::for_window(self.bench.window());
        montecarlo(n, seed, |_, rng| {
            let trace = self.sampled_circuit(rng).run(&opts);
            self.bench
                .measure(&trace, &nodes, false, true)
                .worst_margin()
        })
    }

    /// Samples `n` BL computing delays for a discharging pattern (A=0, B=1),
    /// batched across instances — bit-identical to
    /// [`DisturbStudy::delays_scalar`] sample for sample.
    ///
    /// Samples whose BL never trips the SA within the window (deep slow-tail
    /// events) are reported as the window length, i.e. right-censored rather
    /// than dropped.
    pub fn delays(&self, n: usize, seed: u64) -> Vec<f64> {
        let window = self.bench.window();
        self.outcomes_batch(n, seed)
            .iter()
            .map(|out| out.delay_s.unwrap_or(window))
            .collect()
    }

    /// [`DisturbStudy::delays`] on the scalar one-instance-at-a-time
    /// solver — the verified reference path the batch engine is pinned
    /// against. Same [`DisturbStudy::sampled_circuit`] draws, different
    /// solver.
    pub fn delays_scalar(&self, n: usize, seed: u64) -> Vec<f64> {
        let nodes = self.bench_nodes();
        let window = self.bench.window();
        let opts = SimOptions::for_window(window);
        montecarlo(n, seed, |_, rng| {
            let trace = self.sampled_circuit(rng).run(&opts);
            let out = self.bench.measure(&trace, &nodes, false, true);
            out.delay_s.unwrap_or(window)
        })
    }

    /// Fits the margin distribution and returns the tail model; the failure
    /// probability is `P(margin < 0)`.
    pub fn failure_fit(&self, n: usize, seed: u64) -> TailFit {
        TailFit::from_margins(&self.margins(n, seed))
    }
}

/// Result of calibrating one scheme parameter to a target failure rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoFailureCalibration {
    /// The calibrated parameter value (volts for WLUD, seconds for the
    /// pulse width).
    pub param: f64,
    /// The achieved extrapolated failure probability at that parameter.
    pub achieved: f64,
    /// The target failure probability that was requested.
    pub target: f64,
}

/// Binary-searches the WLUD word-line level whose disturb failure rate hits
/// `target` (failure grows with WL level).
///
/// `n` Monte-Carlo samples are drawn per probe; 300-1000 gives a stable fit.
pub fn calibrate_wlud(
    rows: usize,
    env: Env,
    mismatch: MismatchModel,
    target: f64,
    n: usize,
    seed: u64,
) -> IsoFailureCalibration {
    calibrate(target, 0.45, env.vdd, 8, |v_wl| {
        let bench = BlComputeBench::new(rows, env, WlScheme::Wlud { v_wl });
        DisturbStudy::new(bench, mismatch)
            .failure_fit(n, seed)
            .failure_probability()
    })
}

/// Binary-searches the short-WL pulse width whose disturb failure rate hits
/// `target` (failure grows with pulse width).
pub fn calibrate_pulse(
    rows: usize,
    env: Env,
    mismatch: MismatchModel,
    target: f64,
    n: usize,
    seed: u64,
) -> IsoFailureCalibration {
    calibrate(target, 60e-12, 600e-12, 8, |pulse_s| {
        let bench = BlComputeBench::new(rows, env, WlScheme::ShortBoost { pulse_s });
        DisturbStudy::new(bench, mismatch)
            .failure_fit(n, seed)
            .failure_probability()
    })
}

/// Monotone bisection: `f` must be non-decreasing in its parameter.
fn calibrate<F: Fn(f64) -> f64>(
    target: f64,
    mut lo: f64,
    mut hi: f64,
    iters: usize,
    f: F,
) -> IsoFailureCalibration {
    let mut best = (lo + hi) / 2.0;
    let mut achieved = f(best);
    for _ in 0..iters {
        if achieved < target {
            lo = best;
        } else {
            hi = best;
        }
        best = (lo + hi) / 2.0;
        achieved = f(best);
    }
    IsoFailureCalibration {
        param: best,
        achieved,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_stats::Summary;

    /// Small-n smoke studies; the full-scale runs live in the bench harness.
    fn quick_study(scheme: WlScheme) -> DisturbStudy {
        let bench = BlComputeBench::new(128, Env::nominal(), scheme);
        DisturbStudy::new(bench, MismatchModel::nominal())
    }

    #[test]
    fn margins_are_positive_at_nominal_operating_points() {
        for scheme in [WlScheme::Wlud { v_wl: 0.55 }, WlScheme::short_boost_140ps()] {
            let m = quick_study(scheme).margins(24, 7);
            let s = Summary::from_slice(&m);
            assert!(s.min > 0.0, "{scheme:?}: min margin {}", s.min);
        }
    }

    #[test]
    fn full_static_wl_fails_much_more_often_than_wlud() {
        let full = quick_study(WlScheme::FullStatic).failure_fit(24, 3);
        let wlud = quick_study(WlScheme::Wlud { v_wl: 0.55 }).failure_fit(24, 3);
        assert!(
            full.failure_probability() > 10.0 * wlud.failure_probability(),
            "full {} vs wlud {}",
            full.failure_probability(),
            wlud.failure_probability()
        );
    }

    #[test]
    fn wlud_failure_grows_with_wl_level() {
        let lo = quick_study(WlScheme::Wlud { v_wl: 0.5 }).failure_fit(24, 11);
        let hi = quick_study(WlScheme::Wlud { v_wl: 0.75 }).failure_fit(24, 11);
        assert!(hi.failure_probability() > lo.failure_probability());
    }

    #[test]
    fn pulse_failure_grows_with_width() {
        let short = quick_study(WlScheme::ShortBoost { pulse_s: 100e-12 }).failure_fit(24, 13);
        let long = quick_study(WlScheme::ShortBoost { pulse_s: 450e-12 }).failure_fit(24, 13);
        assert!(
            long.failure_probability() > short.failure_probability(),
            "long {} vs short {}",
            long.failure_probability(),
            short.failure_probability()
        );
    }

    #[test]
    fn delays_are_censored_not_dropped() {
        let d = quick_study(WlScheme::short_boost_140ps()).delays(16, 5);
        assert_eq!(d.len(), 16);
        assert!(d.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn batched_studies_match_the_scalar_reference_bit_for_bit() {
        // 20 samples spans a cohort boundary at BATCH_COHORT = 16; every
        // per-sample measurement must agree with the scalar solver exactly.
        for scheme in [WlScheme::short_boost_140ps(), WlScheme::Wlud { v_wl: 0.55 }] {
            let s = quick_study(scheme);
            let d_batch = s.delays(20, 9);
            let d_scalar = s.delays_scalar(20, 9);
            assert_eq!(d_batch.len(), d_scalar.len());
            for (i, (a, b)) in d_batch.iter().zip(&d_scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{scheme:?} delay sample {i}");
            }
            let m_batch = s.margins(20, 31);
            let m_scalar = s.margins_scalar(20, 31);
            for (i, (a, b)) in m_batch.iter().zip(&m_scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{scheme:?} margin sample {i}");
            }
        }
    }
}
