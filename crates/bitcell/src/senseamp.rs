//! Single-ended sense amplifier model.
//!
//! The paper uses single-ended SAs on BLT and BLB producing `AB` and
//! `~(A+B)` for dual-WL accesses. For delay purposes an SA is a trip level
//! plus a resolve latency; the trip-crossing time comes from the simulated
//! bit-line waveform.

use bpimc_circuit::{CircuitError, Edge, NodeId, Trace};

/// Trip level (fraction of VDD) and resolve latency of the single-ended SA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    /// Input trip level as a fraction of VDD.
    pub trip_frac: f64,
    /// Internal resolve latency, seconds.
    pub resolve_s: f64,
}

impl SenseAmp {
    /// The default SA: trips at VDD/2 and resolves in 30 ps.
    pub fn default_28nm() -> Self {
        Self {
            trip_frac: 0.5,
            resolve_s: 30e-12,
        }
    }

    /// Absolute trip voltage at a given supply.
    pub fn trip_voltage(&self, vdd: f64) -> f64 {
        self.trip_frac * vdd
    }

    /// The sensing delay for a *discharging* bit-line: time from `t_from`
    /// (WL activation) until the BL crosses the trip level, plus resolve.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NoCrossing`] if the BL never reaches the trip
    /// level in the simulated window (i.e. the SA would output "high").
    pub fn sense_delay(
        &self,
        trace: &Trace,
        bl: NodeId,
        vdd: f64,
        t_from: f64,
    ) -> Result<f64, CircuitError> {
        let t_cross = trace.cross_time(bl, self.trip_voltage(vdd), Edge::Falling, t_from)?;
        Ok(t_cross - t_from + self.resolve_s)
    }

    /// Whether the SA output reads "low" (BL crossed the trip level) at any
    /// point after `t_from`.
    pub fn reads_low(&self, trace: &Trace, bl: NodeId, vdd: f64, t_from: f64) -> bool {
        trace
            .cross_time(bl, self.trip_voltage(vdd), Edge::Falling, t_from)
            .is_ok()
    }
}

impl Default for SenseAmp {
    fn default() -> Self {
        Self::default_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_circuit::{Circuit, SimOptions, Waveform};
    use bpimc_device::Env;

    fn discharging_trace() -> (Trace, NodeId) {
        let mut ckt = Circuit::new(Env::nominal());
        let bl = ckt.add_node("bl", 10e-15, 0.9);
        ckt.add_resistor(bl, ckt.gnd(), 20_000.0); // tau = 200 ps
        (ckt.run(&SimOptions::for_window(2e-9)), bl)
    }

    #[test]
    fn delay_includes_resolve() {
        let (tr, bl) = discharging_trace();
        let sa = SenseAmp::default_28nm();
        let d = sa.sense_delay(&tr, bl, 0.9, 0.0).unwrap();
        // RC to 50%: t = tau ln 2 = 138.6 ps, plus 30 ps resolve.
        assert!((d - (138.6e-12 + 30e-12)).abs() < 6e-12, "d = {d:.3e}");
    }

    #[test]
    fn high_bl_reads_high() {
        let mut ckt = Circuit::new(Env::nominal());
        let vdd = ckt.add_source("vdd", Waveform::dc(0.9));
        let bl = ckt.add_node("bl", 10e-15, 0.9);
        ckt.add_resistor(bl, vdd, 10_000.0); // held high
        let tr = ckt.run(&SimOptions::for_window(1e-9));
        let sa = SenseAmp::default_28nm();
        assert!(!sa.reads_low(&tr, bl, 0.9, 0.0));
        assert!(sa.sense_delay(&tr, bl, 0.9, 0.0).is_err());
    }

    #[test]
    fn trip_voltage_scales_with_vdd() {
        let sa = SenseAmp::default_28nm();
        assert_eq!(sa.trip_voltage(1.0), 0.5);
        assert_eq!(sa.trip_voltage(0.6), 0.3);
    }
}
