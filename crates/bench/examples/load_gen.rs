//! Load generator for the compute service: N concurrent clients, mixed
//! op/precision request streams, every response verified, requests/sec
//! reported. Exits non-zero on any dropped or incorrect response — CI uses
//! it as the server smoke test.
//!
//! ```text
//! cargo run --release -p bpimc-bench --example load_gen -- \
//!     [--clients 8] [--requests 50] [--macros N] [--addr HOST:PORT] \
//!     [--programs] [--stored] [--pipeline W] [--min-throughput R] \
//!     [--chaos [--chaos-seed S] [--restart]]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral port
//! (with fault injection enabled) and shut down gracefully at the end; each
//! client injects one deliberate panic mid-stream and checks that only that
//! request fails while the pool keeps serving.
//!
//! With `--programs` the clients issue multi-instruction `exec_program`
//! requests instead of the per-op mix: whole pipelines (staging writes,
//! fused add+shl, SUB, MULT, reductions, readbacks) in one round trip,
//! with every output host-verified and the reported per-instruction cycle
//! accounting checked against the program's static cost model.
//!
//! With `--stored` each client stores the four pipeline shapes **once**
//! (`store_program`) and then drives them with `run_stored`, rebinding the
//! write values per request — the validate-once/run-many fast path. The
//! same host verification applies: outputs and per-instruction cycles must
//! match the rebound program's static cost model exactly.
//!
//! `--pipeline W` keeps up to `W` requests in flight per client (the
//! protocol guarantees in-order responses per connection, so verification
//! just follows the request order). `W = 1` (default) is the synchronous
//! one-at-a-time stream; higher windows measure the server's capacity
//! instead of per-request wake-up latency. `--min-throughput R` exits
//! non-zero when the measured requests/sec land below `R`.
//!
//! `--chaos [--chaos-seed S]` spawns the in-process server with a seeded
//! deterministic [`FaultPlan`] (worker panics, delayed executions, stalled
//! writers, severed connections) and drives it with tolerant clients, each
//! holding a **durable session**: injected-fault errors are counted and
//! tolerated, and a severed connection is survived by reconnecting,
//! resuming the session by token, and resending the same seq-stamped
//! request (the server's replay guard makes every resend exactly-once).
//! The run fails on a *wrong* value, a lost session, or a final account
//! that is not byte-identical to replaying the executed ops through a
//! fault-free server — the correctness-under-fire smoke test.
//!
//! `--chaos --restart` is the crash-recovery smoke test: the server runs
//! as a **separate `repro serve` process** with `--state-dir`/`--fsync
//! always`, gets `SIGKILL`ed mid-load, and is restarted on the same port
//! against the same state directory. The clients ride the restart through
//! the same reconnect/resume/seq-replay machinery, and the run asserts
//! exactly what `--chaos` asserts — every session survives and every
//! account is byte-identical to its fault-free replay, i.e. the journal
//! recovered every billed op exactly once and re-executed none of the
//! replayed retries. Afterwards the server is shut down gracefully and
//! `repro state` must find the state directory clean.

use bpimc_bench::shapes::program_request;
use bpimc_core::{
    LogicOp, Precision, Program, RequestBody, ResponseBody, SessionActivity, StoredMeta,
    StoredTarget,
};
use bpimc_server::{Client, ClientError, FaultPlan, RetryPolicy, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    clients: u64,
    requests: u64,
    macros: Option<usize>,
    addr: Option<String>,
    programs: bool,
    stored: bool,
    pipeline: usize,
    min_throughput: Option<f64>,
    chaos: bool,
    chaos_seed: u64,
    restart: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        requests: 50,
        macros: None,
        addr: None,
        programs: false,
        stored: false,
        pipeline: 1,
        min_throughput: None,
        chaos: false,
        chaos_seed: 7,
        restart: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match a.as_str() {
            "--clients" => args.clients = num("--clients").max(1),
            "--requests" => args.requests = num("--requests").max(1),
            "--macros" => args.macros = Some(num("--macros").max(1) as usize),
            "--pipeline" => args.pipeline = num("--pipeline").max(1) as usize,
            "--min-throughput" => args.min_throughput = Some(num("--min-throughput") as f64),
            "--addr" => {
                args.addr = Some(it.next().unwrap_or_else(|| die("--addr needs HOST:PORT")))
            }
            "--programs" => args.programs = true,
            "--stored" => args.stored = true,
            "--chaos" => args.chaos = true,
            "--chaos-seed" => args.chaos_seed = num("--chaos-seed"),
            "--restart" => args.restart = true,
            other => die(&format!("unknown option '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The write values of a program's `write`/`write_mult` instructions in
/// submitted order — the full input binding that replays the program's
/// data through `run_stored`.
fn write_bindings(prog: &Program) -> Vec<Option<Vec<u64>>> {
    prog.instrs()
        .iter()
        .filter_map(|i| match i {
            bpimc_core::Instr::Write { values, .. }
            | bpimc_core::Instr::WriteMult { values, .. } => Some(Some(values.clone())),
            _ => None,
        })
        .collect()
}

/// What a response must look like to count as correct.
enum Expect {
    Scalar(u64),
    Words(Vec<u64>),
    /// Program outputs plus the static cost model's per-instruction
    /// cycles; `instrs` checks the per-instruction energy vector length.
    Report {
        outputs: Vec<Vec<u64>>,
        cycles: Vec<u64>,
        instrs: usize,
    },
    /// `store_program` ack carrying the expected bindable write count.
    Stored {
        writes: u64,
    },
    /// A contained injected fault: an error mentioning the panic.
    Fault,
    /// The session account at end of stream.
    Stats {
        requests: u64,
        errors: u64,
    },
}

fn check(expect: &Expect, body: &ResponseBody) -> bool {
    match (expect, body) {
        (Expect::Scalar(n), ResponseBody::Scalar(got)) => n == got,
        (Expect::Words(ws), ResponseBody::Words(got)) => ws == got,
        (
            Expect::Report {
                outputs,
                cycles,
                instrs,
            },
            ResponseBody::Program(r),
        ) => &r.outputs == outputs && &r.cycles == cycles && r.energy_fj.len() == *instrs,
        (Expect::Stored { writes }, ResponseBody::Stored(StoredMeta { writes: got, .. })) => {
            writes == got
        }
        (Expect::Fault, ResponseBody::Error(msg)) => msg.message.contains("panicked"),
        (Expect::Stats { requests, errors }, ResponseBody::Stats(s)) => {
            s.requests == *requests && s.errors == *errors
        }
        _ => false,
    }
}

/// The deterministic request stream one client drives: mixed per-op
/// requests, whole `exec_program` pipelines, or stored-program replays.
fn build_stream(
    c: u64,
    requests: u64,
    expect_faults: bool,
    programs: bool,
    stored: bool,
    stored_pids: &[u64],
) -> Vec<(RequestBody, Expect)> {
    let mut stream = Vec::with_capacity(requests as usize + 1);
    let panic_at = requests / 2;
    for r in 0..requests {
        if expect_faults && r == panic_at {
            stream.push((RequestBody::InjectPanic, Expect::Fault));
            continue;
        }
        let k = c * 7919 + r * 131;
        if stored {
            let variant = r % 4;
            let (prog, outputs) = program_request(k, variant);
            stream.push((
                RequestBody::RunStored {
                    target: StoredTarget::Pid(stored_pids[variant as usize]),
                    inputs: write_bindings(&prog),
                },
                Expect::Report {
                    outputs,
                    cycles: prog.instr_cycles(),
                    instrs: prog.instrs().len(),
                },
            ));
            continue;
        }
        if programs {
            let (prog, outputs) = program_request(k, r % 4);
            stream.push((
                RequestBody::ExecProgram {
                    instrs: prog.instrs().to_vec(),
                },
                Expect::Report {
                    outputs,
                    cycles: prog.instr_cycles(),
                    instrs: prog.instrs().len(),
                },
            ));
            continue;
        }
        let (body, expect) = match r % 5 {
            0 => {
                let x: Vec<u64> = (0..12).map(|i| (k + i * 3) % 256).collect();
                let w: Vec<u64> = (0..12).map(|i| (k + i * 5 + 1) % 256).collect();
                let dot: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                (
                    RequestBody::Dot {
                        precision: Precision::P8,
                        x,
                        w,
                    },
                    Expect::Scalar(dot),
                )
            }
            1 => {
                let a: Vec<u64> = (0..16).map(|i| (k + i) % 256).collect();
                let b: Vec<u64> = (0..16).map(|i| (k * 3 + i) % 256).collect();
                let sum: Vec<u64> = a.iter().zip(&b).map(|(x, y)| (x + y) & 0xFF).collect();
                (
                    RequestBody::Lanes {
                        op: bpimc_core::LaneOp::Add,
                        precision: Precision::P8,
                        a,
                        b,
                    },
                    Expect::Words(sum),
                )
            }
            2 => {
                let a: Vec<u64> = (0..8).map(|i| (k + i) % 16).collect();
                let b: Vec<u64> = (0..8).map(|i| (k * 5 + i) % 16).collect();
                let prod: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
                (
                    RequestBody::Lanes {
                        op: bpimc_core::LaneOp::Mult,
                        precision: Precision::P4,
                        a,
                        b,
                    },
                    Expect::Words(prod),
                )
            }
            3 => {
                let a: Vec<u64> = (0..4).map(|i| (k * 251 + i) % 65536).collect();
                let b: Vec<u64> = (0..4).map(|i| (k * 509 + i) % 65536).collect();
                let diff: Vec<u64> = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| x.wrapping_sub(*y) & 0xFFFF)
                    .collect();
                (
                    RequestBody::Lanes {
                        op: bpimc_core::LaneOp::Sub,
                        precision: Precision::P16,
                        a,
                        b,
                    },
                    Expect::Words(diff),
                )
            }
            _ => {
                let a: Vec<u64> = (0..32).map(|i| (k + i * 3) % 4).collect();
                let b: Vec<u64> = (0..32).map(|i| (k * 7 + i) % 4).collect();
                let xor: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
                (
                    RequestBody::Lanes {
                        op: bpimc_core::LaneOp::Logic(LogicOp::Xor),
                        precision: Precision::P2,
                        a,
                        b,
                    },
                    Expect::Words(xor),
                )
            }
        };
        stream.push((body, expect));
    }
    // The session account must agree on totals at the end of the stream.
    let setup = if stored { stored_pids.len() as u64 } else { 0 };
    stream.push((
        RequestBody::Stats,
        Expect::Stats {
            requests: requests + setup,
            errors: u64::from(expect_faults),
        },
    ));
    stream
}

/// One client's deterministic request stream; returns (ok, failed)
/// response counts, where "failed" includes any mismatch.
fn drive_client(
    addr: SocketAddr,
    c: u64,
    requests: u64,
    expect_faults: bool,
    programs: bool,
    stored: bool,
    window: usize,
) -> (u64, u64) {
    let mut pipe = match Client::connect(addr) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("client {c}: connect failed: {e}");
            return (0, requests);
        }
    };
    let mut ok = 0u64;
    let mut bad = 0u64;

    // Stored mode: store the four pipeline shapes once, synchronously.
    let mut stored_pids = Vec::new();
    if stored {
        for variant in 0..4u64 {
            let (shape, _) = program_request(0, variant);
            let writes = write_bindings(&shape).len() as u64;
            let body = RequestBody::StoreProgram {
                instrs: shape.instrs().to_vec(),
                name: None,
            };
            match pipe.call(body) {
                Ok(resp) if check(&Expect::Stored { writes }, &resp.body) => {
                    let ResponseBody::Stored(meta) = resp.body else {
                        unreachable!("checked above");
                    };
                    stored_pids.push(meta.pid);
                    ok += 1;
                }
                other => {
                    eprintln!("client {c}: store_program failed: {other:?}");
                    return (0, requests);
                }
            }
        }
    }

    let stream = build_stream(c, requests, expect_faults, programs, stored, &stored_pids);
    let mut pending: std::collections::VecDeque<(u64, &Expect, &'static str)> =
        std::collections::VecDeque::new();
    let verify = |pipe: &mut Client,
                  pending: &mut std::collections::VecDeque<(u64, &Expect, &'static str)>,
                  ok: &mut u64,
                  bad: &mut u64| {
        let (id, expect, name) = pending.pop_front().expect("pending request");
        match pipe.recv() {
            Ok(resp) if resp.id == id && check(expect, &resp.body) => *ok += 1,
            Ok(resp) => {
                *bad += 1;
                eprintln!("client {c}: {name} (id {id}) mismatch: {:?}", resp.body);
            }
            Err(e) => {
                *bad += 1;
                eprintln!("client {c}: {name} (id {id}) failed: {e}");
            }
        }
    };
    for (body, expect) in &stream {
        let name = match expect {
            Expect::Scalar(_) => "dot",
            Expect::Words(_) => "lanes",
            Expect::Report { .. } => {
                if stored {
                    "run_stored"
                } else {
                    "exec_program"
                }
            }
            Expect::Stored { .. } => "store_program",
            Expect::Fault => "inject_panic",
            Expect::Stats { .. } => "stats",
        };
        while pending.len() >= window {
            verify(&mut pipe, &mut pending, &mut ok, &mut bad);
        }
        match pipe.send(body.clone()) {
            Ok(id) => pending.push_back((id, expect, name)),
            Err(e) => {
                bad += 1;
                eprintln!("client {c}: send failed: {e}");
            }
        }
    }
    while !pending.is_empty() {
        verify(&mut pipe, &mut pending, &mut ok, &mut bad);
    }
    (ok, bad)
}

/// One chaos client's run: a durable session driven synchronously
/// through the op mix against a faulting server. The client opens a
/// session up front and lets the [`RetryPolicy`] machinery survive
/// severed connections — reconnect, resume by token, resend the same
/// seq; the server's replay guard makes every resend exactly-once.
/// Injected-fault errors are counted and tolerated; a *wrong* value, a
/// lost session, or a final account that disagrees with a fault-free
/// replay of the executed ops is a failure. Returns
/// `(ok, bad, tolerated_faults, reconnects)`.
fn drive_chaos_client(
    addr: SocketAddr,
    replay_addr: SocketAddr,
    c: u64,
    requests: u64,
    retry: RetryPolicy,
    progress: &AtomicU64,
) -> (u64, u64, u64, u64) {
    let mut stream = build_stream(c, requests, false, false, false, &[]);
    // The trailing stats self-check is replaced below by the stronger
    // exact-replay assertion.
    stream.pop();
    let mut client = match Client::connect(addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("chaos client {c}: connect failed: {e}");
            progress.fetch_add(requests, Ordering::SeqCst);
            return (0, requests, 0, 0);
        }
    };
    client.set_retry_policy(Some(retry));
    let token = match client.open_session() {
        Ok(info) => info.token,
        Err(e) => {
            eprintln!("chaos client {c}: open_session failed: {e}");
            progress.fetch_add(requests, Ordering::SeqCst);
            return (0, requests, 0, 0);
        }
    };
    let (mut ok, mut bad, mut faults) = (0u64, 0u64, 0u64);
    let mut executed: Vec<RequestBody> = Vec::new();
    for (body, expect) in &stream {
        progress.fetch_add(1, Ordering::SeqCst);
        let outcome = match body.clone() {
            RequestBody::Dot { precision, x, w } => {
                client.dot(precision, &x, &w).map(ResponseBody::Scalar)
            }
            RequestBody::Lanes {
                op,
                precision,
                a,
                b,
            } => client.lanes(op, precision, &a, &b).map(ResponseBody::Words),
            other => unreachable!("chaos mix is dot/lanes only, got {other:?}"),
        };
        match outcome {
            Ok(got) if check(expect, &got) => {
                ok += 1;
                executed.push(body.clone());
            }
            Ok(got) => {
                bad += 1;
                eprintln!("chaos client {c}: wrong value: {got:?}");
            }
            Err(ClientError::Server(err)) if err.message.contains("panicked") => faults += 1,
            Err(e) => {
                bad += 1;
                eprintln!("chaos client {c}: op failed: {e}");
            }
        }
    }
    // Zero lost sessions: however many drops hit, this client must still
    // hold the token it opened (a failed resume clears it).
    if client.session_token() != Some(token.as_str()) {
        bad += 1;
        eprintln!("chaos client {c}: session lost across reconnects");
    }
    // Exact accounting across every drop and resend: the durable account
    // must show each op executed (and billed) exactly once — the counts
    // match the observed outcomes, and the cycle/energy totals are
    // byte-identical to replaying the successful ops through a pristine
    // fault-free server (the same execution path down to the ImcMacro,
    // summed in the same order).
    match client.stats() {
        Ok(stats) if stats.requests == ok + faults && stats.errors == faults => {
            match replay_account(replay_addr, &executed) {
                Ok(replay)
                    if replay.cycles == stats.cycles && replay.energy_fj == stats.energy_fj => {}
                Ok(replay) => {
                    bad += 1;
                    eprintln!(
                        "chaos client {c}: account diverged from fault-free replay: \
                         billed {} cycles / {} fJ, replay says {} / {}",
                        stats.cycles, stats.energy_fj, replay.cycles, replay.energy_fj
                    );
                }
                Err(e) => {
                    bad += 1;
                    eprintln!("chaos client {c}: replay failed: {e}");
                }
            }
        }
        Ok(stats) => {
            bad += 1;
            eprintln!(
                "chaos client {c}: account counts off: {} requests / {} errors billed, \
                 observed {} + {} faults",
                stats.requests,
                stats.errors,
                ok + faults,
                faults
            );
        }
        Err(e) => {
            bad += 1;
            eprintln!("chaos client {c}: final stats failed: {e}");
        }
    }
    (ok, bad, faults, client.reconnects())
}

/// Replays an executed op stream against a pristine fault-free server and
/// returns the resulting session account — the ground truth the chaos
/// session's billing must match byte-for-byte.
fn replay_account(addr: SocketAddr, ops: &[RequestBody]) -> Result<SessionActivity, ClientError> {
    let mut client = Client::connect(addr)?;
    for body in ops {
        match body.clone() {
            RequestBody::Dot { precision, x, w } => {
                client.dot(precision, &x, &w)?;
            }
            RequestBody::Lanes {
                op,
                precision,
                a,
                b,
            } => {
                client.lanes(op, precision, &a, &b)?;
            }
            other => unreachable!("chaos mix is dot/lanes only, got {other:?}"),
        }
    }
    client.stats()
}

/// The seeded chaos schedule `--chaos` serves under: every fault type in
/// the plan fires at a few percent, plus explicit `inject_panic` support.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        panic_per_mille: 30,
        delay_per_mille: 20,
        delay_ms: 2,
        stall_per_mille: 20,
        stall_ms: 2,
        drop_per_mille: 15,
        inject_panic_op: true,
    }
}

fn main() {
    let args = parse_args();
    if args.stored && args.programs {
        die("--stored already drives program pipelines; drop --programs");
    }
    if args.chaos && args.addr.is_some() {
        die("--chaos spawns its own in-process server; drop --addr");
    }
    if args.chaos && (args.stored || args.programs) {
        die("--chaos drives the plain idempotent op mix; drop --stored/--programs");
    }
    if args.restart && !args.chaos {
        die("--restart extends the chaos run; add --chaos");
    }
    if args.restart {
        run_restart(&args);
        return;
    }
    let spawned = match &args.addr {
        Some(_) => None,
        None => {
            let mut config = ServerConfig {
                faults: if args.chaos {
                    chaos_plan(args.chaos_seed)
                } else {
                    FaultPlan::inject_panic_only()
                },
                ..ServerConfig::default()
            };
            if let Some(m) = args.macros {
                config.macros = m;
                config.batch_max = (16 * m).max(64);
            }
            let handle = Server::bind("127.0.0.1:0", config.clone())
                .unwrap_or_else(|e| die(&format!("bind: {e}")));
            println!(
                "spawned in-process server on {} ({} macros{})",
                handle.local_addr(),
                config.macros,
                if args.chaos {
                    format!(", chaos seed {}", args.chaos_seed)
                } else {
                    String::new()
                }
            );
            Some(handle)
        }
    };
    let addr: SocketAddr = match (&args.addr, &spawned) {
        (Some(a), _) => a
            .parse()
            .unwrap_or_else(|e| die(&format!("bad --addr: {e}"))),
        (None, Some(h)) => h.local_addr(),
        (None, None) => unreachable!(),
    };
    if args.chaos {
        run_chaos(addr, &args, spawned.expect("--chaos always spawns"));
        return;
    }
    // Against an external server we do not know whether faults are enabled,
    // so only the in-process run exercises injection.
    let expect_faults = spawned.is_some();

    let t0 = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let requests = args.requests;
            let programs = args.programs;
            let stored = args.stored;
            let window = args.pipeline;
            std::thread::spawn(move || {
                drive_client(addr, c, requests, expect_faults, programs, stored, window)
            })
        })
        .collect();
    let mut total_ok = 0u64;
    let mut total_bad = 0u64;
    for w in workers {
        let (ok, bad) = w.join().unwrap_or((0, 1));
        total_ok += ok;
        total_bad += bad;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // Stats checks and stored-shape setup ride the stream but only the
    // `requests` workload counts toward the reported throughput.
    let total = args.clients * args.requests;
    let per_client_extra = 1 + if args.stored { 4 } else { 0 };
    let expected_responses = total + args.clients * per_client_extra;
    let rate = total as f64 / elapsed;
    println!(
        "{} clients x {} requests (window {}): {total} total in {elapsed:.3} s = {rate:.0} requests/sec",
        args.clients, args.requests, args.pipeline
    );
    if let Some(handle) = spawned {
        handle.shutdown();
        println!("server shut down cleanly");
    }
    if total_bad > 0 || total_ok != expected_responses {
        die(&format!(
            "{total_bad} dropped/incorrect responses out of {expected_responses}"
        ));
    }
    println!("all {expected_responses} responses correct, zero dropped");
    if let Some(min) = args.min_throughput {
        if rate < min {
            die(&format!(
                "throughput {rate:.0} requests/sec below the {min:.0} floor"
            ));
        }
        println!("throughput {rate:.0} requests/sec >= {min:.0} floor");
    }
}

/// The `--chaos` run: tolerant concurrent clients — each holding a
/// durable session that survives every injected connection drop — against
/// the seeded fault plan, then a clean drain. Every response must be
/// either correct or an injected fault, every session must survive to the
/// end, and every account must match a fault-free replay exactly.
fn run_chaos(addr: SocketAddr, args: &Args, handle: bpimc_server::ServerHandle) {
    // The accounting ground truth comes from a second, fault-free server:
    // the same executed ops replayed there must bill identical totals.
    let replay = Server::bind("127.0.0.1:0", ServerConfig::default())
        .unwrap_or_else(|e| die(&format!("replay bind: {e}")));
    let replay_addr = replay.local_addr();
    let retry = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(100),
    };
    let t0 = Instant::now();
    let progress = Arc::new(AtomicU64::new(0));
    let workers = spawn_chaos_clients(addr, replay_addr, args, retry, &progress);
    let (ok, bad, faults, reconnects) = join_chaos_clients(workers);
    let elapsed = t0.elapsed().as_secs_f64();
    let total = args.clients * args.requests;
    println!(
        "chaos: {} clients x {} requests in {elapsed:.3} s — {ok} correct, \
         {faults} injected faults tolerated, {reconnects} reconnects survived by resumption",
        args.clients, args.requests
    );
    handle.shutdown();
    replay.shutdown();
    println!("server drained and shut down cleanly under chaos");
    if bad > 0 || ok + faults != total {
        die(&format!(
            "{bad} wrong/lost responses out of {total} under chaos"
        ));
    }
    println!(
        "all {total} chaos responses accounted for: zero wrong values, zero lost sessions, \
         every account byte-identical to its fault-free replay"
    );
}

fn spawn_chaos_clients(
    addr: SocketAddr,
    replay_addr: SocketAddr,
    args: &Args,
    retry: RetryPolicy,
    progress: &Arc<AtomicU64>,
) -> Vec<std::thread::JoinHandle<(u64, u64, u64, u64)>> {
    (0..args.clients)
        .map(|c| {
            let requests = args.requests;
            let progress = progress.clone();
            std::thread::spawn(move || {
                drive_chaos_client(addr, replay_addr, c, requests, retry, &progress)
            })
        })
        .collect()
}

fn join_chaos_clients(
    workers: Vec<std::thread::JoinHandle<(u64, u64, u64, u64)>>,
) -> (u64, u64, u64, u64) {
    let (mut ok, mut bad, mut faults, mut reconnects) = (0u64, 0u64, 0u64, 0u64);
    for w in workers {
        let (o, b, f, r) = w.join().unwrap_or((0, 1, 0, 0));
        ok += o;
        bad += b;
        faults += f;
        reconnects += r;
    }
    (ok, bad, faults, reconnects)
}

/// Locates the `repro` binary the `--restart` mode serves with: the
/// `REPRO_BIN` env var when set, else the sibling of this example in the
/// same cargo target profile directory.
fn repro_bin() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("REPRO_BIN") {
        return p.into();
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&format!("current_exe: {e}")));
    // target/<profile>/examples/load_gen -> target/<profile>/repro
    let bin = exe
        .parent()
        .and_then(|p| p.parent())
        .map(|d| d.join(format!("repro{}", std::env::consts::EXE_SUFFIX)))
        .unwrap_or_else(|| die("cannot locate the repro binary next to this example"));
    if !bin.exists() {
        die(&format!(
            "{} not built; run `cargo build -p bpimc-bench --bin repro` first \
             (or point REPRO_BIN at it)",
            bin.display()
        ));
    }
    bin
}

/// One `repro serve` child process with durable state, its address parsed
/// from the serve banner. Stdout keeps draining on a thread so the child
/// can never block on a full pipe.
struct ServedProc {
    child: std::process::Child,
    addr: SocketAddr,
}

fn spawn_served(
    repro: &std::path::Path,
    addr: &str,
    state_dir: &std::path::Path,
    seed: u64,
) -> ServedProc {
    use std::io::BufRead as _;
    // The same fault mix `chaos_plan` injects in-process, so the restart
    // run is chaos *plus* a crash, not instead of one.
    let plan = chaos_plan(seed);
    let mut child = std::process::Command::new(repro)
        .args(["serve", "--addr", addr, "--fsync", "always", "--state-dir"])
        .arg(state_dir)
        .args([
            "--chaos-seed".into(),
            plan.seed.to_string(),
            "--chaos-panic-pm".into(),
            plan.panic_per_mille.to_string(),
            "--chaos-delay-pm".into(),
            plan.delay_per_mille.to_string(),
            "--chaos-delay-ms".into(),
            plan.delay_ms.to_string(),
            "--chaos-stall-pm".into(),
            plan.stall_per_mille.to_string(),
            "--chaos-stall-ms".into(),
            plan.stall_ms.to_string(),
            "--chaos-drop-pm".into(),
            plan.drop_per_mille.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawning {}: {e}", repro.display())));
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let mut served = None;
    for line in lines.by_ref() {
        let line = line.unwrap_or_else(|e| die(&format!("reading serve banner: {e}")));
        // "serving on 127.0.0.1:PORT with N macros (...)"
        if let Some(rest) = line.strip_prefix("serving on ") {
            let addr = rest.split_whitespace().next().and_then(|a| a.parse().ok());
            served = Some(addr.unwrap_or_else(|| die(&format!("bad serve banner: {line}"))));
            break;
        }
    }
    let addr = served.unwrap_or_else(|| {
        let _ = child.kill();
        die("serve exited without printing its address")
    });
    std::thread::spawn(move || for _ in lines {});
    ServedProc { child, addr }
}

/// The `--chaos --restart` run: the served process is `SIGKILL`ed
/// mid-load and restarted on the same port against the same `--state-dir`,
/// and every `--chaos` invariant must hold across the crash — plus a
/// clean `repro state` verdict on the surviving state directory.
fn run_restart(args: &Args) {
    let repro = repro_bin();
    let state_dir = std::env::temp_dir().join(format!("bpimc-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir)
        .unwrap_or_else(|e| die(&format!("creating {}: {e}", state_dir.display())));
    let first = spawn_served(&repro, "127.0.0.1:0", &state_dir, args.chaos_seed);
    let addr = first.addr;
    println!(
        "spawned repro serve on {addr} (state dir {})",
        state_dir.display()
    );
    let replay = Server::bind("127.0.0.1:0", ServerConfig::default())
        .unwrap_or_else(|e| die(&format!("replay bind: {e}")));
    // Generous backoff: the clients must ride out the kill-to-recovery
    // window, not just a severed connection.
    let retry = RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(250),
    };
    let t0 = Instant::now();
    let progress = Arc::new(AtomicU64::new(0));
    let workers = spawn_chaos_clients(addr, replay.local_addr(), args, retry, &progress);
    // SIGKILL once roughly a third of the workload has executed — far
    // enough in for durable state to matter, early enough that the
    // recovered server serves real load.
    let total = args.clients * args.requests;
    while progress.load(Ordering::SeqCst) < total.div_ceil(3) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut child = first.child;
    child.kill().unwrap_or_else(|e| die(&format!("kill: {e}")));
    let _ = child.wait();
    println!(
        "SIGKILLed the serving process after {} of {total} ops; restarting on {addr}",
        progress.load(Ordering::SeqCst)
    );
    let second = spawn_served(&repro, &addr.to_string(), &state_dir, args.chaos_seed);
    assert_eq!(second.addr, addr, "the restart must reuse the port");
    let (ok, bad, faults, reconnects) = join_chaos_clients(workers);
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "restart: {} clients x {} requests in {elapsed:.3} s — {ok} correct, \
         {faults} injected faults tolerated, {reconnects} reconnects survived",
        args.clients, args.requests
    );
    // Graceful shutdown over the wire, then the state dir must audit
    // clean (final snapshot + clean-shutdown marker).
    let mut closer =
        Client::connect(addr).unwrap_or_else(|e| die(&format!("shutdown connect: {e}")));
    closer
        .shutdown_server()
        .unwrap_or_else(|e| die(&format!("graceful shutdown: {e}")));
    let mut child = second.child;
    let status = child.wait().unwrap_or_else(|e| die(&format!("wait: {e}")));
    if !status.success() {
        die(&format!("restarted server exited with {status}"));
    }
    replay.shutdown();
    let audit = std::process::Command::new(&repro)
        .args(["state", "--state-dir"])
        .arg(&state_dir)
        .status()
        .unwrap_or_else(|e| die(&format!("repro state: {e}")));
    if !audit.success() {
        die("repro state found corruption after a kill -9 + restart run");
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    if bad > 0 || ok + faults != total {
        die(&format!(
            "{bad} wrong/lost responses out of {total} across the kill -9 restart"
        ));
    }
    println!(
        "all {total} responses accounted for across kill -9 + restart: zero lost sessions, \
         every account byte-identical to its fault-free replay, state directory clean"
    );
}
