//! Load generator for the compute service: N concurrent clients, mixed
//! op/precision request streams, every response verified, requests/sec
//! reported. Exits non-zero on any dropped or incorrect response — CI uses
//! it as the server smoke test.
//!
//! ```text
//! cargo run --release -p bpimc-bench --example load_gen -- \
//!     [--clients 8] [--requests 50] [--macros N] [--addr HOST:PORT] [--programs]
//! ```
//!
//! Without `--addr` an in-process server is spawned on an ephemeral port
//! (with fault injection enabled) and shut down gracefully at the end; each
//! client injects one deliberate panic mid-stream and checks that only that
//! request fails while the pool keeps serving.
//!
//! With `--programs` the clients issue multi-instruction `exec_program`
//! requests instead of the per-op mix: whole pipelines (staging writes,
//! fused add+shl, SUB, MULT, reductions, readbacks) in one round trip,
//! with every output host-verified and the reported per-instruction cycle
//! accounting checked against the program's static cost model.

use bpimc_core::prog::ProgramBuilder;
use bpimc_core::{LaneOp, LogicOp, Precision, Program};
use bpimc_server::{Client, ClientError, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::Instant;

struct Args {
    clients: u64,
    requests: u64,
    macros: Option<usize>,
    addr: Option<String>,
    programs: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        requests: 50,
        macros: None,
        addr: None,
        programs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match a.as_str() {
            "--clients" => args.clients = num("--clients").max(1),
            "--requests" => args.requests = num("--requests").max(1),
            "--macros" => args.macros = Some(num("--macros").max(1) as usize),
            "--addr" => {
                args.addr = Some(it.next().unwrap_or_else(|| die("--addr needs HOST:PORT")))
            }
            "--programs" => args.programs = true,
            other => die(&format!("unknown option '{other}'")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Builds one deterministic multi-instruction pipeline plus its expected
/// outputs (host-computed), keyed by the request counter so every client
/// exercises dot, fused add+shl / sub, reduction and logic pipelines.
fn program_request(k: u64, variant: u64) -> (Program, Vec<Vec<u64>>) {
    let mut b = ProgramBuilder::new();
    match variant {
        0 => {
            // Dot-style: two staging writes, one MULT, products out.
            let p = Precision::P8;
            let x: Vec<u64> = (0..8).map(|i| (k + i * 3) % 256).collect();
            let w: Vec<u64> = (0..8).map(|i| (k * 5 + i + 1) % 256).collect();
            let rx = b.write_mult(p, x.clone());
            let rw = b.write_mult(p, w.clone());
            let prod = b.mult(rx, rw, p);
            b.read_products(prod, p, 8);
            let expect = x.iter().zip(&w).map(|(a, c)| a * c).collect();
            (b.finish(), vec![expect])
        }
        1 => {
            // Fused add+shl (lowered to the hardware add_shift) plus SUB.
            let p = Precision::P8;
            let x: Vec<u64> = (0..16).map(|i| (k + i) % 256).collect();
            let y: Vec<u64> = (0..16).map(|i| (k * 3 + i) % 256).collect();
            let rx = b.write(p, x.clone());
            let ry = b.write(p, y.clone());
            let s = b.add(rx, ry, p);
            let d = b.shl(s, p);
            b.read(d, p, 16);
            let e = b.sub(rx, ry, p);
            b.read(e, p, 16);
            let doubled = x
                .iter()
                .zip(&y)
                .map(|(a, c)| ((a + c) << 1) & 0xFF)
                .collect();
            let diff = x
                .iter()
                .zip(&y)
                .map(|(a, c)| a.wrapping_sub(*c) & 0xFF)
                .collect();
            (b.finish(), vec![doubled, diff])
        }
        2 => {
            // In-memory reduction over four staged rows.
            let p = Precision::P8;
            let rows: Vec<Vec<u64>> = (0..4)
                .map(|j| (0..16).map(|i| (k * (j + 2) + i * 7) % 256).collect())
                .collect();
            let regs: Vec<_> = rows.iter().map(|r| b.write(p, r.clone())).collect();
            let total = b.reduce_add(&regs, p);
            b.read(total, p, 16);
            let expect = (0..16)
                .map(|i| rows.iter().map(|r| r[i]).sum::<u64>() & 0xFF)
                .collect();
            (b.finish(), vec![expect])
        }
        _ => {
            // 2-bit logic with an inversion chained on.
            let p = Precision::P2;
            let x: Vec<u64> = (0..32).map(|i| (k + i * 3) % 4).collect();
            let y: Vec<u64> = (0..32).map(|i| (k * 7 + i) % 4).collect();
            let rx = b.write(p, x.clone());
            let ry = b.write(p, y.clone());
            let xo = b.logic(LogicOp::Xor, rx, ry);
            let inv = b.not(xo);
            b.read(xo, p, 32);
            b.read(inv, p, 32);
            let xor: Vec<u64> = x.iter().zip(&y).map(|(a, c)| a ^ c).collect();
            let nxor = xor.iter().map(|v| !v & 3).collect();
            (b.finish(), vec![xor, nxor])
        }
    }
}

/// One client's deterministic request stream; returns (ok, failed)
/// response counts, where "failed" includes any mismatch.
fn drive_client(
    addr: SocketAddr,
    c: u64,
    requests: u64,
    expect_faults: bool,
    programs: bool,
) -> (u64, u64) {
    let mut client = match Client::connect(addr) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("client {c}: connect failed: {e}");
            return (0, requests);
        }
    };
    let mut ok = 0u64;
    let mut bad = 0u64;
    fn tally(ok: &mut u64, bad: &mut u64, c: u64, name: &str, pass: bool) {
        if pass {
            *ok += 1;
        } else {
            *bad += 1;
            eprintln!("client {c}: {name} mismatch");
        }
    }
    let panic_at = requests / 2;
    for r in 0..requests {
        if expect_faults && r == panic_at {
            // The contained-fault check: exactly this request errors.
            match client.inject_panic() {
                Err(ClientError::Server(msg)) if msg.contains("panicked") => ok += 1,
                other => {
                    bad += 1;
                    eprintln!("client {c}: inject_panic not contained: {other:?}");
                }
            }
            continue;
        }
        let k = c * 7919 + r * 131;
        if programs {
            // Whole pipelines in one round trip: outputs host-verified,
            // per-instruction cycles checked against the static cost
            // model (the fused shl must bill 0 there).
            let (prog, expect) = program_request(k, r % 4);
            match client.exec_program(&prog) {
                Ok(report) => {
                    let pass = report.outputs == expect
                        && report.cycles == prog.instr_cycles()
                        && report.total_cycles() == prog.cycles()
                        && report.energy_fj.len() == prog.instrs().len();
                    tally(&mut ok, &mut bad, c, "exec_program", pass);
                }
                Err(e) => {
                    bad += 1;
                    eprintln!("client {c}: exec_program failed: {e}");
                }
            }
            continue;
        }
        match r % 5 {
            0 => {
                let x: Vec<u64> = (0..12).map(|i| (k + i * 3) % 256).collect();
                let w: Vec<u64> = (0..12).map(|i| (k + i * 5 + 1) % 256).collect();
                let expect: u64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                tally(
                    &mut ok,
                    &mut bad,
                    c,
                    "dot",
                    client.dot(Precision::P8, &x, &w).ok() == Some(expect),
                );
            }
            1 => {
                let a: Vec<u64> = (0..16).map(|i| (k + i) % 256).collect();
                let b: Vec<u64> = (0..16).map(|i| (k * 3 + i) % 256).collect();
                let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| (x + y) & 0xFF).collect();
                tally(
                    &mut ok,
                    &mut bad,
                    c,
                    "add",
                    client.lanes(LaneOp::Add, Precision::P8, &a, &b).ok() == Some(expect),
                );
            }
            2 => {
                let a: Vec<u64> = (0..8).map(|i| (k + i) % 16).collect();
                let b: Vec<u64> = (0..8).map(|i| (k * 5 + i) % 16).collect();
                let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
                tally(
                    &mut ok,
                    &mut bad,
                    c,
                    "mult",
                    client.lanes(LaneOp::Mult, Precision::P4, &a, &b).ok() == Some(expect),
                );
            }
            3 => {
                let a: Vec<u64> = (0..4).map(|i| (k * 251 + i) % 65536).collect();
                let b: Vec<u64> = (0..4).map(|i| (k * 509 + i) % 65536).collect();
                let expect: Vec<u64> = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| x.wrapping_sub(*y) & 0xFFFF)
                    .collect();
                tally(
                    &mut ok,
                    &mut bad,
                    c,
                    "sub16",
                    client.lanes(LaneOp::Sub, Precision::P16, &a, &b).ok() == Some(expect),
                );
            }
            _ => {
                let a: Vec<u64> = (0..32).map(|i| (k + i * 3) % 4).collect();
                let b: Vec<u64> = (0..32).map(|i| (k * 7 + i) % 4).collect();
                let expect: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
                tally(
                    &mut ok,
                    &mut bad,
                    c,
                    "xor2",
                    client
                        .lanes(LaneOp::Logic(LogicOp::Xor), Precision::P2, &a, &b)
                        .ok()
                        == Some(expect),
                );
            }
        }
    }
    // The session account must agree on totals: every request answered,
    // only the injected fault failed.
    match client.stats() {
        Ok(stats) => {
            let expected_errors = u64::from(expect_faults);
            if stats.requests != requests || stats.errors != expected_errors {
                bad += 1;
                eprintln!(
                    "client {c}: session account off: {} requests / {} errors (expected {requests} / {expected_errors})",
                    stats.requests, stats.errors
                );
            } else {
                println!(
                    "client {c}: {} requests, {} hw cycles, {:.1} pJ billed",
                    stats.requests,
                    stats.cycles,
                    stats.energy_fj / 1000.0
                );
            }
        }
        Err(e) => {
            bad += 1;
            eprintln!("client {c}: stats failed: {e}");
        }
    }
    (ok, bad)
}

fn main() {
    let args = parse_args();
    let spawned = match &args.addr {
        Some(_) => None,
        None => {
            let mut config = ServerConfig {
                fault_injection: true,
                ..ServerConfig::default()
            };
            if let Some(m) = args.macros {
                config.macros = m;
                config.batch_max = 4 * m;
            }
            let handle =
                Server::bind("127.0.0.1:0", config).unwrap_or_else(|e| die(&format!("bind: {e}")));
            println!(
                "spawned in-process server on {} ({} macros)",
                handle.local_addr(),
                config.macros
            );
            Some(handle)
        }
    };
    let addr: SocketAddr = match (&args.addr, &spawned) {
        (Some(a), _) => a
            .parse()
            .unwrap_or_else(|e| die(&format!("bad --addr: {e}"))),
        (None, Some(h)) => h.local_addr(),
        (None, None) => unreachable!(),
    };
    // Against an external server we do not know whether faults are enabled,
    // so only the in-process run exercises injection.
    let expect_faults = spawned.is_some();

    let t0 = Instant::now();
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let requests = args.requests;
            let programs = args.programs;
            std::thread::spawn(move || drive_client(addr, c, requests, expect_faults, programs))
        })
        .collect();
    let mut total_ok = 0u64;
    let mut total_bad = 0u64;
    for w in workers {
        let (ok, bad) = w.join().unwrap_or((0, 1));
        total_ok += ok;
        total_bad += bad;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total = args.clients * args.requests;
    println!(
        "{} clients x {} requests: {total} total in {elapsed:.3} s = {:.0} requests/sec",
        args.clients,
        args.requests,
        total as f64 / elapsed
    );
    if let Some(handle) = spawned {
        handle.shutdown();
        println!("server shut down cleanly");
    }
    if total_bad > 0 || total_ok != total {
        die(&format!(
            "{total_bad} dropped/incorrect responses out of {total}"
        ));
    }
    println!("all {total} responses correct, zero dropped");
}
