//! Experiment harness: one runner per figure/table of the paper.
//!
//! Every experiment of the paper's evaluation section has a module here
//! that regenerates its rows/series from the workspace's simulators and
//! models, returning a structured result (so tests can assert shapes) with
//! a `Display` implementation that prints the same table/series the paper
//! reports.
//!
//! The `repro` binary drives them:
//!
//! ```text
//! cargo run --release -p bpimc-bench --bin repro -- all
//! cargo run --release -p bpimc-bench --bin repro -- fig2 --samples 2000
//! ```
//!
//! | runner | paper artefact |
//! |---|---|
//! | [`experiments::fig2`]   | Fig. 2 — MC distribution of BL computing delay |
//! | [`experiments::fig7a`]  | Fig. 7(a) — BL computing delay per process corner |
//! | [`experiments::fig7b`]  | Fig. 7(b) — FA critical path vs supply voltage |
//! | [`experiments::fig8`]   | Fig. 8 — cycle breakdown, Fmax and TOPS/W vs VDD |
//! | [`experiments::fig9`]   | Fig. 9 — cycles/op vs BL size, proposed vs bit-serial |
//! | [`experiments::table1`] | Table I — supported operations and cycle counts |
//! | [`experiments::table2`] | Table II — energy per operation |
//! | [`experiments::table3`] | Table III — comparison with the state of the art |
//! | [`experiments::ablation`] | ablations: pulse width, booster removed, separator off |
//! | [`experiments::vrange`] | circuit-level 0.6-1.1 V supply-range validation |

pub mod experiments;
pub mod shapes;
pub mod textfmt;
