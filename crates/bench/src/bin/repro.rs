//! `repro` — regenerate the paper's figures and tables from the simulators.
//!
//! ```text
//! repro all                 # everything (fig2 with default sample count)
//! repro fig2 --samples 2000
//! repro fig7a fig7b fig8 fig9 table1 table2 table3
//! repro all --json          # also write BENCH_repro.json with wall-clock
//!                           # and simulated-cycle numbers
//! repro serve               # run the multi-client compute service
//!     [--addr 127.0.0.1:7171] [--macros N] [--write-timeout-ms MS]
//!     [--max-cycles-per-sec N] [--max-energy-fj-per-sec N]
//!     [--max-inflight N] [--max-program-instrs N] [--max-stored-programs N]
//!     [--chaos-seed S] [--chaos-panic-pm N] [--chaos-delay-pm N]
//!     [--chaos-delay-ms MS] [--chaos-stall-pm N] [--chaos-stall-ms MS]
//!     [--chaos-drop-pm N]
//!     [--fault-injection]   # honour explicit inject_panic requests only
//!     [--state-dir DIR]     # crash-safe durable state: write-ahead
//!     [--fsync always|interval:<ms>|never]  # journal + snapshots in DIR
//! repro state --state-dir DIR   # inspect/verify a state directory:
//!                           # record counts, CRC failures, truncation
//!                           # point, per-session summary; non-zero exit
//!                           # on corruption
//! repro check-bench         # regression gate: compare current cycles and
//!     [--baseline FILE]     # micro-timings against BENCH_repro.json
//! repro lint --builtin      # static program-quality gate: lint the
//!     [FILE|-]              # canonical load_gen shapes + nn templates,
//!                           # and/or programs in wire request lines;
//!                           # non-zero exit on error/warn diagnostics
//! ```

use bpimc_bench::experiments::{
    ablation, fig2, fig7a, fig7b, fig8, fig9, table1, table2, table3, vrange,
};
use bpimc_core::{ImcMacro, MacroConfig, Precision};
use bpimc_nn::{
    chunks_per_class, classify_bindings, classify_from_outputs, classify_program, dot_program,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The serving throughput PR 2 committed (~5k requests/sec with 8
/// synchronous clients on the 2-core CI container). The check-bench gate
/// requires the current pipelined measurement to stay at least
/// [`SERVED_SPEEDUP_FLOOR`] times above it.
const PR2_SERVED_REQ_PER_S: f64 = 5000.0;
/// Required speedup of `served_req_per_s` over the PR-2 baseline.
const SERVED_SPEEDUP_FLOOR: f64 = 2.0;
/// Perf-history sidecar: `repro --json` appends one record per run;
/// `check-bench` prints the trend against the latest entries.
const HISTORY_PATH: &str = "BENCH_history.jsonl";

/// Wall-clock + simulated-cycle numbers this PR and future perf PRs are
/// measured by. Written to `BENCH_repro.json` by `--json`.
struct BenchReport {
    samples: usize,
    seed: u64,
    /// True when fig2 ran, i.e. `samples`/`seed` describe a real run.
    ran_fig2: bool,
    experiments: Vec<(String, f64)>,
}

/// The pre-refactor (seed, commit 85e31a3) numbers, measured on the same
/// host as this PR's rewrite so the speedup claims in the PR are anchored
/// in the artefact itself. See CHANGES.md for the methodology.
const BASELINE_JSON: &str = r#"{
    "commit": "85e31a3 (seed, per-bit engine, fixed-step integrator)",
    "fig2_samples2000_wall_s": 53.5,
    "nn_eval_400x64_p8_wall_s": 2.300,
    "mult_p8_128col_us": 12.98,
    "reduce_add_8rows_us": 7.15
  }"#;

impl BenchReport {
    fn record<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.experiments
            .push((name.to_string(), t0.elapsed().as_secs_f64()));
        out
    }

    /// Simulated per-op cycle counts (Table I ground truth, precision-swept)
    /// plus the supplied host measurements. Pure serialization: the caller
    /// measures (`micro_timings`) and records history.
    fn to_json(&self, report: &MicroReport) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n");
        if self.ran_fig2 {
            // Only a run that included fig2 has meaningful sample counts.
            let _ = writeln!(s, "  \"samples\": {},", self.samples);
            let _ = writeln!(s, "  \"seed\": {},", self.seed);
        }
        s.push_str("  \"experiments_wall_s\": {\n");
        for (i, (name, secs)) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(s, "    \"{name}\": {secs:.4}{comma}");
        }
        s.push_str("  },\n  \"simulated_cycles\": {\n");
        let cycles = simulated_cycles();
        for (i, (name, c)) in cycles.iter().enumerate() {
            let comma = if i + 1 < cycles.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {c}{comma}");
        }
        s.push_str("  },\n  \"micro_us\": {\n");
        for (i, (name, us)) in report.micro.iter().enumerate() {
            let comma = if i + 1 < report.micro.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {us:.3}{comma}");
        }
        s.push_str("  },\n  \"throughput\": {\n");
        let _ = writeln!(
            s,
            "    \"served_req_per_s\": {:.0}",
            report.served_req_per_s
        );
        let _ = writeln!(s, "  }},\n  \"baseline_pre_refactor\": {BASELINE_JSON}\n}}");
        s
    }
}

/// One line per `repro --json` run, appended to `BENCH_history.jsonl` — the
/// criterion-free perf history `check-bench` prints trends from. Each
/// record is a standalone JSON object (timestamp, micro timings,
/// throughput), so the file is greppable and survives baseline rewrites.
fn append_history(samples: usize, ran_fig2: bool, report: &MicroReport) {
    use std::io::Write as _;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = format!("{{\"ts\":{ts}");
    if ran_fig2 {
        let _ = write!(line, ",\"samples\":{samples}");
    }
    line.push_str(",\"micro_us\":{");
    for (i, (name, us)) in report.micro.iter().enumerate() {
        let comma = if i + 1 < report.micro.len() { "," } else { "" };
        let _ = write!(line, "\"{name}\":{us:.3}{comma}");
    }
    let _ = write!(
        line,
        "}},\"served_req_per_s\":{:.0}}}",
        report.served_req_per_s
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(HISTORY_PATH)
        .and_then(|mut f| writeln!(f, "{line}"));
    match appended {
        Ok(()) => eprintln!("appended perf record to {HISTORY_PATH}"),
        Err(e) => eprintln!("warning: could not append to {HISTORY_PATH}: {e}"),
    }
}

/// Prints each current metric against the median of the last `n` history
/// records (purely informational — the hard gates are the baseline
/// comparisons). Silent when no history exists yet.
fn print_history_trend(report: &MicroReport, n: usize) {
    let Ok(text) = std::fs::read_to_string(HISTORY_PATH) else {
        println!("history no {HISTORY_PATH} yet (run `repro all --json` to start one)");
        return;
    };
    let records: Vec<bpimc_core::json::Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| bpimc_core::json::Json::parse(l).ok())
        .collect();
    if records.is_empty() {
        return;
    }
    let recent = &records[records.len().saturating_sub(n)..];
    println!(
        "history trend vs the last {} record(s) in {HISTORY_PATH}:",
        recent.len()
    );
    let median_of = |pick: &dyn Fn(&bpimc_core::json::Json) -> Option<f64>| -> Option<f64> {
        let mut vals: Vec<f64> = recent.iter().filter_map(pick).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        Some(vals[vals.len() / 2])
    };
    for (name, current) in &report.micro {
        let key = name.clone();
        if let Some(med) = median_of(&move |r: &bpimc_core::json::Json| {
            r.get("micro_us")
                .and_then(|m| m.get(&key))
                .and_then(|v| v.as_f64())
        }) {
            let delta = if med > 0.0 {
                100.0 * (current - med) / med
            } else {
                0.0
            };
            println!("history {name:<22} {current:.3} us vs median {med:.3} ({delta:+.0}%)");
        }
    }
    if let Some(med) =
        median_of(&|r: &bpimc_core::json::Json| r.get("served_req_per_s").and_then(|v| v.as_f64()))
    {
        let cur = report.served_req_per_s;
        let delta = if med > 0.0 {
            100.0 * (cur - med) / med
        } else {
            0.0
        };
        println!("history served_req_per_s       {cur:.0} vs median {med:.0} ({delta:+.0}%)");
    }
}

/// Runs each Table I op once and reports its hardware cycle count.
fn simulated_cycles() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for p in [Precision::P2, Precision::P4, Precision::P8, Precision::P16] {
        let mut mac = ImcMacro::new(MacroConfig::paper_macro());
        mac.write_words(0, p, &[1]).expect("fits");
        mac.write_words(1, p, &[2]).expect("fits");
        let add = mac.add(0, 1, 2, p).expect("add");
        let sub = mac.sub(0, 1, 3, p).expect("sub");
        let mut mm = ImcMacro::new(MacroConfig::paper_macro());
        mm.write_mult_operands(0, p, &[1]).expect("fits");
        mm.write_mult_operands(1, p, &[2]).expect("fits");
        let mult = mm.mult(0, 1, 2, p).expect("mult");
        let bits = p.bits();
        out.push((format!("add_p{bits}"), add));
        out.push((format!("sub_p{bits}"), sub));
        out.push((format!("mult_p{bits}"), mult));
    }
    // The program executor's static cost model for a 16-feature P8 dot
    // pipeline (2 chunks of write/write/mult/read) — hardware ground
    // truth for the `exec_program` path, asserted against the activity
    // log by executing it.
    let x: Vec<u64> = (0..16).collect();
    let prog = dot_program(Precision::P8, &x, &x, 128);
    let mut pm = ImcMacro::new(MacroConfig::paper_macro());
    let run = prog.run(&mut pm).expect("dot program runs");
    assert_eq!(run.total_cycles(), prog.cycles(), "cost model diverged");
    out.push(("program_dot16_p8".to_string(), run.total_cycles()));
    out
}

/// Host-side measurements `check-bench` gates: micro timings of the hot
/// ops/pipelines, the relative executor-overhead ratios (medians over
/// interleaved rounds), and the served request throughput.
struct MicroReport {
    micro: Vec<(String, f64)>,
    /// Compiled-program / raw-method-call pipeline time (16-feature dot).
    compiled_ratio: f64,
    /// Compiled-optimized / compiled-unoptimized pipeline time on the
    /// same dot — proof that `optimize()` never slows a tight program.
    optimized_ratio: f64,
    /// Classify-via-compiled-template / raw-method-call classify time.
    classify_ratio: f64,
    /// Pipelined mixed-stream requests/sec against an in-process server.
    served_req_per_s: f64,
}

/// Quick host-side timings of the hot macro ops and pipelines
/// (microseconds per op; small sample, indicative rather than statistical
/// — `cargo bench` has the criterion versions). Ratios are medians over
/// interleaved measurement rounds, so host frequency drift and
/// noisy-neighbor bursts land on both sides equally.
fn micro_timings() -> MicroReport {
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    mac.write_mult_operands(0, p, &[123; 8]).expect("fits");
    mac.write_mult_operands(1, p, &[45; 8]).expect("fits");
    let n = 2000;
    let t0 = Instant::now();
    for _ in 0..n {
        mac.mult(0, 1, 2, p).expect("mult");
        mac.clear_activity();
    }
    let mult_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
    for r in 0..8 {
        mac.write_words(3 + r, p, &[(r as u64 * 31) % 256; 16])
            .expect("fits");
    }
    let rows: Vec<usize> = (3..11).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        mac.reduce_add(&rows, 12, p).expect("reduce");
        mac.clear_activity();
    }
    let reduce_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
    // The program-executor overhead gate: the same 16-feature dot pipeline
    // once as a validated+lowered Program run, once as raw method calls.
    // Regression-gated (10x) so the executor's bookkeeping (validation,
    // lowering, span accounting) never grows into the hot path's budget.
    let x: Vec<u64> = (0..16).map(|i| (i * 37) % 256).collect();
    let w: Vec<u64> = (0..16).map(|i| (i * 53) % 256).collect();
    let prog = dot_program(p, &x, &w, mac.cols());
    // The validate-once-run-many fast path: the same pipeline pre-resolved
    // into a flat op array, so repeat runs skip validation and lowering
    // entirely.
    let compiled = prog.compile(mac.config()).expect("pipeline validates");
    // The optimizer on the same canonical pipeline: it is already tight,
    // so the pass pipeline finds nothing — this times the analysis cost a
    // `store_program` pays when `optimize_programs` is on, and yields the
    // compiled-optimized variant check-bench gates against the
    // unoptimized compile.
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(prog.optimize());
    }
    let optimize_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;
    let optimized = prog.optimize();
    assert!(
        optimized.cycles() <= prog.cycles(),
        "optimize never adds cycles"
    );
    let compiled_opt = optimized
        .compile(mac.config())
        .expect("optimized pipeline validates");
    let lanes = p.product_lanes(mac.cols());
    // The three pipeline variants are measured in interleaved rounds so
    // host frequency drift (common on shared CI machines) lands on all of
    // them equally. check-bench gates the compiled/raw ratio as the
    // *median over rounds* — a noisy-neighbor burst that lands on a few
    // rounds shifts the mean but not the median.
    let rounds = 16;
    let per_round = n / rounds;
    let mut program_s = 0.0f64;
    let mut compiled_rounds = Vec::with_capacity(rounds);
    let mut opt_rounds = Vec::with_capacity(rounds);
    let mut raw_rounds = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..per_round {
            prog.run(&mut mac).expect("program runs");
            mac.clear_activity();
        }
        program_s += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..per_round {
            compiled.run(&mut mac).expect("compiled program runs");
            mac.clear_activity();
        }
        compiled_rounds.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..per_round {
            compiled_opt.run(&mut mac).expect("optimized program runs");
            mac.clear_activity();
        }
        opt_rounds.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..per_round {
            for (xc, wc) in x.chunks(lanes).zip(w.chunks(lanes)) {
                mac.write_mult_operands(0, p, xc).expect("fits");
                mac.write_mult_operands(1, p, wc).expect("fits");
                mac.mult(0, 1, 2, p).expect("mult");
                mac.read_products(2, p, xc.len()).expect("read");
            }
            mac.clear_activity();
        }
        raw_rounds.push(t0.elapsed().as_secs_f64());
    }
    let denom = (rounds * per_round) as f64;
    let program_us = program_s * 1e6 / denom;
    let compiled_us = compiled_rounds.iter().sum::<f64>() * 1e6 / denom;
    let compiled_opt_us = opt_rounds.iter().sum::<f64>() * 1e6 / denom;
    let raw_us = raw_rounds.iter().sum::<f64>() * 1e6 / denom;
    let median_ratio = |a: &[f64], b: &[f64]| -> f64 {
        let mut ratios: Vec<f64> = a.iter().zip(b).map(|(x, y)| x / y).collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    let ratio_median = median_ratio(&compiled_rounds, &raw_rounds);
    let optimized_ratio = median_ratio(&opt_rounds, &compiled_rounds);

    // The serving hot path: one whole classification (all C prototype
    // dots) through the per-model compiled template with the sample's
    // chunks rebound, against the same work as raw ImcMacro method calls
    // with host scoring. This is exactly what a `classify` request runs.
    let protos: Vec<Vec<u64>> = (0..4)
        .map(|c| (0..16).map(|i| (c * 37 + i * 11 + 3) % 256).collect())
        .collect();
    let norms = bpimc_nn::prototype_norms(&mut mac, p, &protos);
    mac.clear_activity();
    let dim = 16usize;
    let template = classify_program(p, &protos, &vec![0u64; dim], mac.cols())
        .compile(mac.config())
        .expect("classify template compiles");
    let chunks = chunks_per_class(p, dim, mac.cols());
    let xq: Vec<u64> = (0..dim as u64).map(|i| (i * 29 + 5) % 256).collect();
    let cls_n = 400usize;
    let cls_per_round = cls_n / rounds;
    let mut cls_prog_rounds = Vec::with_capacity(rounds);
    let mut cls_raw_rounds = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..cls_per_round {
            let inputs = classify_bindings(p, protos.len(), &xq, mac.cols());
            let outputs = template
                .run_outputs(&mut mac, &inputs)
                .expect("template runs");
            let got = classify_from_outputs(&outputs, chunks, &norms);
            assert!(got < protos.len());
            mac.clear_activity();
        }
        cls_prog_rounds.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..cls_per_round {
            let mut best: Option<(usize, f64)> = None;
            for (c, (w_q, &ww)) in protos.iter().zip(&norms).enumerate() {
                let mut xw = 0u64;
                for (xc, wc) in xq.chunks(lanes).zip(w_q.chunks(lanes)) {
                    mac.write_mult_operands(0, p, xc).expect("fits");
                    mac.write_mult_operands(1, p, wc).expect("fits");
                    mac.mult(0, 1, 2, p).expect("mult");
                    xw += mac
                        .read_products(2, p, xc.len())
                        .expect("read")
                        .iter()
                        .sum::<u64>();
                }
                let score = xw as f64 - ww as f64 / 2.0;
                if best.is_none() || score > best.expect("set").1 {
                    best = Some((c, score));
                }
            }
            assert!(best.expect("classified").0 < protos.len());
            mac.clear_activity();
        }
        cls_raw_rounds.push(t0.elapsed().as_secs_f64());
    }
    let cls_denom = (rounds * cls_per_round) as f64;
    let classify_program_us = cls_prog_rounds.iter().sum::<f64>() * 1e6 / cls_denom;
    let classify_raw_us = cls_raw_rounds.iter().sum::<f64>() * 1e6 / cls_denom;
    let classify_ratio = median_ratio(&cls_prog_rounds, &cls_raw_rounds);

    // The headline Monte-Carlo workload at smoke scale: 200 fig2 samples
    // through the structure-of-arrays batch transient engine. Wall-gated
    // like the other host timings so the batched path cannot silently
    // regress toward the scalar cost.
    let t0 = Instant::now();
    let fig2 = bpimc_bench::experiments::fig2::run(200, 2020);
    assert_eq!(fig2.samples, 200, "fig2 smoke ran");
    let fig2_us = t0.elapsed().as_secs_f64() * 1e6;

    let served_req_per_s = serve_throughput();
    MicroReport {
        micro: vec![
            ("mult_p8_128col_us".into(), mult_us),
            ("reduce_add_8rows_us".into(), reduce_us),
            ("program_pipeline_us".into(), program_us),
            ("program_optimize_us".into(), optimize_us),
            ("compiled_pipeline_us".into(), compiled_us),
            ("compiled_pipeline_opt_us".into(), compiled_opt_us),
            ("raw_pipeline_us".into(), raw_us),
            ("classify_program_us".into(), classify_program_us),
            ("classify_raw_us".into(), classify_raw_us),
            ("fig2_mc200_us".into(), fig2_us),
        ],
        compiled_ratio: ratio_median,
        optimized_ratio,
        classify_ratio,
        served_req_per_s,
    }
}

/// Measures the compute service's mixed-stream throughput: an in-process
/// server on an ephemeral port, 4 concurrent clients pipelining a window
/// of 16 light dot/add requests each over real TCP. This is the
/// `served_req_per_s` number check-bench gates against the PR-2 committed
/// ~5k requests/sec baseline.
fn serve_throughput() -> f64 {
    use bpimc_core::{LaneOp, RequestBody, ResponseBody};
    let handle = bpimc_server::Server::bind("127.0.0.1:0", bpimc_server::ServerConfig::default())
        .expect("bind ephemeral serving bench");
    let addr = handle.local_addr();
    let clients = 4u64;
    let per = 600u64;
    let window = 16u64;
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = bpimc_server::Client::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut received = 0u64;
                while received < per {
                    while sent < per && sent - received < window {
                        let k = (c * 97 + sent) % 256;
                        let body = if sent.is_multiple_of(2) {
                            RequestBody::Dot {
                                precision: Precision::P8,
                                x: vec![k, 2, 3, 4, 5, 6, 7, 8],
                                w: vec![8, 7, 6, 5, 4, 3, 2, 1],
                            }
                        } else {
                            RequestBody::Lanes {
                                op: LaneOp::Add,
                                precision: Precision::P8,
                                a: vec![k, 20, 30, 40],
                                b: vec![9, 9, 9, 9],
                            }
                        };
                        client.send(body).expect("send");
                        sent += 1;
                    }
                    let resp = client.recv().expect("recv");
                    assert!(
                        !matches!(resp.body, ResponseBody::Error(_)),
                        "served an error: {:?}",
                        resp.body
                    );
                    received += 1;
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("serving bench client");
    }
    let rate = (clients * per) as f64 / t0.elapsed().as_secs_f64();
    handle.shutdown();
    rate
}

/// `repro serve`: run the line-delimited-JSON compute service until a
/// client sends `{"op":"shutdown"}` (see the README's Serving section).
///
/// Beyond `--addr`/`--macros`, the flags map onto the server's guardrail
/// and chaos knobs: `--max-*` set per-session limits ([`SessionLimits`]),
/// `--chaos-*` build a seeded deterministic [`FaultPlan`],
/// `--fault-injection` only makes the server honour explicit
/// `inject_panic` requests (it injects nothing by itself), and
/// `--session-ttl-ms` / `--max-sessions` / `--max-registry-programs`
/// bound the durable-session registry (how long a detached session
/// lingers before the sweeper collects it, and the global caps on
/// sessions and registry-wide stored programs).
///
/// [`SessionLimits`]: bpimc_server::SessionLimits
/// [`FaultPlan`]: bpimc_server::FaultPlan
fn serve(args: &[String]) {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = bpimc_server::ServerConfig::default();
    let mut state_dir: Option<String> = None;
    let mut fsync: Option<bpimc_server::FsyncPolicy> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match a.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--addr needs HOST:PORT"))
            }
            "--macros" => {
                config.macros = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--macros needs a positive number"));
                config.batch_max = 4 * config.macros;
            }
            // Honour explicit `inject_panic` requests; injects nothing by
            // itself (for scheduled chaos use the `--chaos-*` flags).
            "--fault-injection" => config.faults.inject_panic_op = true,
            "--chaos-seed" => config.faults.seed = num("--chaos-seed"),
            "--chaos-panic-pm" => config.faults.panic_per_mille = num("--chaos-panic-pm") as u16,
            "--chaos-delay-pm" => config.faults.delay_per_mille = num("--chaos-delay-pm") as u16,
            "--chaos-delay-ms" => config.faults.delay_ms = num("--chaos-delay-ms"),
            "--chaos-stall-pm" => config.faults.stall_per_mille = num("--chaos-stall-pm") as u16,
            "--chaos-stall-ms" => config.faults.stall_ms = num("--chaos-stall-ms"),
            "--chaos-drop-pm" => config.faults.drop_per_mille = num("--chaos-drop-pm") as u16,
            "--max-cycles-per-sec" => {
                config.limits.max_cycles_per_sec = Some(num("--max-cycles-per-sec"))
            }
            "--max-energy-fj-per-sec" => {
                config.limits.max_energy_fj_per_sec = Some(num("--max-energy-fj-per-sec") as f64)
            }
            "--max-inflight" => config.limits.max_inflight = Some(num("--max-inflight")),
            "--max-program-instrs" => {
                config.limits.max_program_instrs = Some(num("--max-program-instrs") as usize)
            }
            "--max-stored-programs" => {
                config.limits.max_stored_programs = num("--max-stored-programs") as usize
            }
            "--write-timeout-ms" => {
                config.write_timeout =
                    std::time::Duration::from_millis(num("--write-timeout-ms").max(1))
            }
            "--session-ttl-ms" => {
                config.session_ttl =
                    std::time::Duration::from_millis(num("--session-ttl-ms").max(1))
            }
            "--max-sessions" => config.max_sessions = num("--max-sessions").max(1) as usize,
            "--max-registry-programs" => {
                config.max_registry_programs = num("--max-registry-programs").max(1) as usize
            }
            "--state-dir" => {
                state_dir = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--state-dir needs a PATH")),
                )
            }
            "--fsync" => {
                let spec = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--fsync needs always|interval:<ms>|never"));
                fsync = Some(
                    bpimc_server::FsyncPolicy::parse(&spec)
                        .unwrap_or_else(|e| die(&format!("--fsync: {e}"))),
                );
            }
            other => die(&format!("unknown serve option '{other}'")),
        }
    }
    match state_dir {
        Some(dir) => {
            let mut state = bpimc_server::StateConfig::new(std::path::PathBuf::from(dir));
            if let Some(policy) = fsync {
                state.fsync = policy;
            }
            config.state = Some(state);
        }
        None if fsync.is_some() => die("--fsync needs --state-dir"),
        None => {}
    }
    let handle = bpimc_server::Server::bind(addr.as_str(), config.clone())
        .unwrap_or_else(|e| die(&format!("binding {addr}: {e}")));
    println!(
        "serving on {} with {} macros (queue {}, batch {}, write timeout {:?})",
        handle.local_addr(),
        config.macros,
        config.queue_capacity,
        config.batch_max,
        config.write_timeout,
    );
    if config.faults.is_active() {
        println!(
            "chaos plan: seed {} panic {}‰ delay {}‰/{} ms stall {}‰/{} ms drop {}‰",
            config.faults.seed,
            config.faults.panic_per_mille,
            config.faults.delay_per_mille,
            config.faults.delay_ms,
            config.faults.stall_per_mille,
            config.faults.stall_ms,
            config.faults.drop_per_mille,
        );
    }
    if config.faults.inject_panic_op {
        println!("explicit inject_panic requests are honoured");
    }
    if let Some(state) = &config.state {
        println!(
            "durable state in {} (fsync {})",
            state.dir.display(),
            state.fsync
        );
    }
    println!("send {{\"id\":1,\"op\":\"shutdown\"}} to stop");
    handle.join();
    println!("server stopped");
}

/// `repro state --state-dir DIR`: offline inspection of a durable-state
/// directory — what a restarting server would recover. Prints every
/// snapshot and journal generation with record counts and CRC failures,
/// the recovery path (warm or replay) and truncation point, and a
/// per-session summary of the recovered registry. Exits non-zero when any
/// file carries a torn or corrupt record, so recovery tests and operators
/// can assert on it.
fn state_cmd(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--state-dir" => dir = it.next().cloned(),
            other if dir.is_none() && !other.starts_with("--") => dir = Some(other.to_string()),
            other => die(&format!("unknown state option '{other}'")),
        }
    }
    let dir = dir.unwrap_or_else(|| die("state needs --state-dir DIR (or a bare DIR)"));
    let report = bpimc_server::inspect(std::path::Path::new(&dir))
        .unwrap_or_else(|e| die(&format!("inspecting {dir}: {e}")));
    let file_line = |kind: &str, f: &bpimc_server::FileReport| {
        let chosen = if kind == "snapshot" && Some(f.gen) == report.chosen_snapshot {
            "  <- recovery base"
        } else {
            ""
        };
        match &f.corruption {
            Some(c) => println!(
                "{kind} gen {}: {} records, CORRUPT at byte {} ({} bytes dropped: {}){chosen}",
                f.gen, f.records, c.offset, c.dropped_bytes, c.reason
            ),
            None => println!("{kind} gen {}: {} records, clean{chosen}", f.gen, f.records),
        }
    };
    for f in &report.snapshots {
        file_line("snapshot", f);
    }
    for f in &report.journals {
        file_line("journal", f);
    }
    match report.clean_marker {
        Some(gen) => println!("clean-shutdown marker names gen {gen}"),
        None => println!("no clean-shutdown marker (crash or mid-run copy)"),
    }
    if report.warm {
        println!("recovery path: warm (snapshot only, journal replay skipped)");
    } else {
        println!(
            "recovery path: snapshot {} + {} replayed journal events",
            report
                .chosen_snapshot
                .map(|g| g.to_string())
                .unwrap_or_else(|| "none".into()),
            report.replayed_events
        );
    }
    println!("{} recovered sessions:", report.sessions.len());
    for s in &report.sessions {
        println!(
            "  {}: {} requests ({} errors), {} cycles, {:.1} fJ, {} programs, last_seq {}, {} replay entries{}",
            s.token,
            s.stats.requests,
            s.stats.errors,
            s.stats.cycles,
            s.stats.energy_fj,
            s.programs,
            s.last_seq.map(|q| q.to_string()).unwrap_or_else(|| "-".into()),
            s.replay,
            if s.detached_since_ms.is_some() {
                " (detached)"
            } else {
                ""
            },
        );
    }
    if report.corrupt() {
        for (file, c) in &report.corruptions {
            eprintln!(
                "corruption in {file} at byte {}: {} ({} bytes dropped)",
                c.offset, c.reason, c.dropped_bytes
            );
        }
        std::process::exit(1);
    }
    println!("state directory is clean");
}

/// `repro check-bench`: the CI regression gate. Simulated cycle counts are
/// hardware ground truth and must match the baseline **exactly**; host
/// micro-timings vary with the machine, so they only fail when more than
/// `TOLERANCE_FACTOR` slower than the recorded baseline (catching
/// order-of-magnitude regressions without flaking on slower CI hosts).
/// `repro lint` — the static program-quality gate.
///
/// Lints the canonical benchmark pipelines (`--builtin`: the four
/// `load_gen --programs` shapes plus the `bpimc_nn` dot and classify
/// templates) and/or the programs embedded in a file of wire request
/// lines (`store_program` / `exec_program` / `lint_program` ops; `-`
/// reads stdin, other lines are skipped). Prints every diagnostic and
/// exits non-zero if any carries error or warn severity — perf notes
/// are advisory and do not fail the gate.
fn lint_cmd(args: &[String]) {
    use bpimc_core::{Program, Request, RequestBody, Severity};

    let mut builtin = false;
    let mut path: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--builtin" => builtin = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => die(&format!("unknown lint option '{other}'")),
        }
    }
    if !builtin && path.is_none() {
        die("lint needs --builtin and/or a FILE of wire request lines ('-' for stdin)");
    }
    let mac = ImcMacro::new(MacroConfig::paper_macro());
    let config = *mac.config();
    let mut programs: Vec<(String, Program)> = Vec::new();
    if builtin {
        for variant in 0..bpimc_bench::shapes::SHAPE_COUNT {
            let (prog, _) = bpimc_bench::shapes::program_request(31 + variant, variant);
            programs.push((format!("shape/{variant}"), prog));
        }
        let p = Precision::P8;
        let x: Vec<u64> = (0..24).map(|i| (i * 11) % 256).collect();
        let w: Vec<u64> = (0..24).map(|i| (i * 7 + 3) % 256).collect();
        let protos: Vec<Vec<u64>> = (0..3)
            .map(|c| (0..24).map(|i| (i * 5 + c * 17) % 256).collect())
            .collect();
        programs.push(("nn/dot".into(), dot_program(p, &x, &w, mac.cols())));
        programs.push((
            "nn/classify".into(),
            classify_program(p, &protos, &x, mac.cols()),
        ));
    }
    if let Some(p) = &path {
        let text = if p == "-" {
            use std::io::Read as _;
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .unwrap_or_else(|e| die(&format!("reading stdin: {e}")));
            s
        } else {
            std::fs::read_to_string(p).unwrap_or_else(|e| die(&format!("reading {p}: {e}")))
        };
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let req = Request::parse(line).unwrap_or_else(|e| die(&format!("{p}:{}: {e}", ln + 1)));
            let instrs = match req.body {
                RequestBody::StoreProgram { instrs, .. }
                | RequestBody::ExecProgram { instrs }
                | RequestBody::LintProgram { instrs } => instrs,
                _ => continue,
            };
            programs.push((format!("{p}:{}", ln + 1), Program::new(instrs)));
        }
    }

    let (mut errors, mut warns, mut perfs) = (0usize, 0usize, 0usize);
    for (name, prog) in &programs {
        for d in prog.lint(&config) {
            println!(
                "{name}: {} {} [{}..{}] {}",
                d.severity.name(),
                d.code,
                d.span.start,
                d.span.end,
                d.message
            );
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warn => warns += 1,
                Severity::Perf => perfs += 1,
            }
        }
    }
    println!(
        "linted {} program(s): {errors} error(s), {warns} warning(s), {perfs} perf note(s)",
        programs.len()
    );
    if errors + warns > 0 {
        die("lint gate failed: error- or warn-severity diagnostics present");
    }
}

fn check_bench(args: &[String]) {
    const TOLERANCE_FACTOR: f64 = 10.0;
    let mut baseline_path = "BENCH_repro.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_path = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--baseline needs a path"))
            }
            other => die(&format!("unknown check-bench option '{other}'")),
        }
    }
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| die(&format!("reading {baseline_path}: {e}")));
    let baseline = bpimc_core::json::Json::parse(&text)
        .unwrap_or_else(|e| die(&format!("parsing {baseline_path}: {e}")));

    // Both directions are gated: a current measurement missing from the
    // baseline fails, and a baseline entry with no current counterpart
    // fails too — deleting or renaming a benchmark must not silently
    // shrink the gate.
    fn orphaned_baseline_keys(
        section: &bpimc_core::json::Json,
        label: &str,
        current_names: &[String],
        failures: &mut usize,
    ) {
        if let bpimc_core::json::Json::Obj(fields) = section {
            for (name, _) in fields {
                if !current_names.iter().any(|n| n == name) {
                    println!("{label} {name:<22} in baseline but no longer measured  FAIL");
                    *failures += 1;
                }
            }
        }
    }

    let mut failures = 0usize;
    let current_cycles = simulated_cycles();
    let cycles_base = baseline
        .get("simulated_cycles")
        .unwrap_or_else(|| die("baseline has no simulated_cycles"));
    for (name, current) in &current_cycles {
        match cycles_base.get(name).and_then(|v| v.as_u64()) {
            Some(recorded) if recorded == *current => {
                println!("cycles  {name:<16} {current} == baseline");
            }
            Some(recorded) => {
                println!("cycles  {name:<16} {current} != baseline {recorded}  FAIL");
                failures += 1;
            }
            None => {
                println!("cycles  {name:<16} {current} (not in baseline)  FAIL");
                failures += 1;
            }
        }
    }
    let cycle_names: Vec<String> = current_cycles.into_iter().map(|(n, _)| n).collect();
    orphaned_baseline_keys(cycles_base, "cycles ", &cycle_names, &mut failures);

    let report = micro_timings();
    let micro_base = baseline
        .get("micro_us")
        .unwrap_or_else(|| die("baseline has no micro_us"));
    for (name, current) in &report.micro {
        match micro_base.get(name).and_then(|v| v.as_f64()) {
            Some(recorded) if *current <= recorded * TOLERANCE_FACTOR => {
                println!("micro   {name:<22} {current:.3} us (baseline {recorded:.3}, limit {TOLERANCE_FACTOR}x)");
            }
            Some(recorded) => {
                println!(
                    "micro   {name:<22} {current:.3} us > {TOLERANCE_FACTOR}x baseline {recorded:.3}  FAIL"
                );
                failures += 1;
            }
            None => {
                println!("micro   {name:<22} {current:.3} us (not in baseline)  FAIL");
                failures += 1;
            }
        }
    }
    // The executor-overhead gates are *relative*, measured within one
    // process: the pre-resolved program paths must stay close to raw
    // method calls no matter the host. The gated values are medians over
    // interleaved measurement rounds, so neither frequency drift nor a
    // noisy-neighbor burst on a few rounds can flake them. (The absolute
    // 10x gates above still bound every timing against the baseline.)
    const COMPILED_OVERHEAD_FACTOR: f64 = 1.25;
    let ratio_median = report.compiled_ratio;
    if ratio_median <= COMPILED_OVERHEAD_FACTOR {
        println!(
            "ratio   compiled/raw pipeline   {ratio_median:.2}x median (limit {COMPILED_OVERHEAD_FACTOR}x)"
        );
    } else {
        println!(
            "ratio   compiled/raw pipeline   {ratio_median:.2}x median > {COMPILED_OVERHEAD_FACTOR}x  FAIL"
        );
        failures += 1;
    }
    // Opt-in program optimization must never cost runtime: the canonical
    // dot pipeline is already tight, so its optimized compile has to run
    // within measurement noise of the unoptimized one.
    const OPTIMIZED_PIPELINE_FACTOR: f64 = 1.05;
    let opt_ratio = report.optimized_ratio;
    if opt_ratio <= OPTIMIZED_PIPELINE_FACTOR {
        println!(
            "ratio   optimized/compiled      {opt_ratio:.2}x median (limit {OPTIMIZED_PIPELINE_FACTOR}x)"
        );
    } else {
        println!(
            "ratio   optimized/compiled      {opt_ratio:.2}x median > {OPTIMIZED_PIPELINE_FACTOR}x  FAIL"
        );
        failures += 1;
    }
    // The one-program classify acceptance: a whole served classification
    // through the compiled template must stay within 1.1x of raw ImcMacro
    // method calls.
    const CLASSIFY_OVERHEAD_FACTOR: f64 = 1.1;
    let cls_ratio = report.classify_ratio;
    if cls_ratio <= CLASSIFY_OVERHEAD_FACTOR {
        println!(
            "ratio   classify prog/raw       {cls_ratio:.2}x median (limit {CLASSIFY_OVERHEAD_FACTOR}x)"
        );
    } else {
        println!(
            "ratio   classify prog/raw       {cls_ratio:.2}x median > {CLASSIFY_OVERHEAD_FACTOR}x  FAIL"
        );
        failures += 1;
    }
    // Serving throughput: must hold the tentpole speedup over the PR-2
    // committed ~5k req/s, and must not collapse an order of magnitude
    // below its own recorded baseline.
    let served = report.served_req_per_s;
    let served_floor = PR2_SERVED_REQ_PER_S * SERVED_SPEEDUP_FLOOR;
    if served >= served_floor {
        println!(
            "served  req/s                   {served:.0} (floor {served_floor:.0} = {SERVED_SPEEDUP_FLOOR}x PR-2 baseline {PR2_SERVED_REQ_PER_S:.0})"
        );
    } else {
        println!("served  req/s                   {served:.0} < floor {served_floor:.0}  FAIL");
        failures += 1;
    }
    match baseline
        .get("throughput")
        .and_then(|t| t.get("served_req_per_s"))
        .and_then(|v| v.as_f64())
    {
        Some(recorded) if served >= recorded / TOLERANCE_FACTOR => {
            println!(
                "served  vs baseline             {served:.0} (baseline {recorded:.0}, floor /{TOLERANCE_FACTOR})"
            );
        }
        Some(recorded) => {
            println!(
                "served  vs baseline             {served:.0} < baseline {recorded:.0} / {TOLERANCE_FACTOR}  FAIL"
            );
            failures += 1;
        }
        None => {
            println!("served  req/s not in baseline  FAIL");
            failures += 1;
        }
    }
    let micro_names: Vec<String> = report.micro.iter().map(|(n, _)| n.clone()).collect();
    orphaned_baseline_keys(micro_base, "micro  ", &micro_names, &mut failures);
    print_history_trend(&report, 5);
    if failures > 0 {
        die(&format!(
            "{failures} bench regression(s) against {baseline_path}"
        ));
    }
    println!("bench check passed against {baseline_path}");
}

/// `repro model-check`: explores every registered concurrency model (the
/// stats claim-queue suite and the server queue/outbox/rate-window suite)
/// under the deterministic schedule explorer. Each model runs `--seeds`
/// seeded schedules (even seeds random, odd seeds PCT at `--depth`);
/// `--seed S` pins a single schedule — the replay knob printed by every
/// failure — and `--model NAME` restricts the run to one model. Failing
/// schedules print their replay line and full trace, and write a trace
/// artifact under `$BPIMC_MODEL_TRACE_DIR` when set.
#[cfg(feature = "model")]
fn model_check(args: &[String]) {
    use bpimc_stats::sync::model::{explore, write_trace_artifact, ExploreConfig};
    let mut cfg = ExploreConfig::from_env(16);
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match a.as_str() {
            "--seeds" => cfg.seeds = num("--seeds"),
            "--depth" => cfg.depth = num("--depth") as u32,
            "--max-steps" => cfg.max_steps = num("--max-steps"),
            "--exhaustive" => cfg.exhaustive = Some(num("--exhaustive")),
            "--seed" => {
                // Pin the matrix to exactly this seed: byte-identical
                // replay of a reported failure.
                cfg.base_seed = num("--seed");
                cfg.seeds = 1;
            }
            "--model" => {
                only = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--model needs a model NAME")),
                );
            }
            other => die(&format!("unknown model-check option '{other}'")),
        }
    }
    let specs: Vec<_> = bpimc_stats::sync::models::MODELS
        .iter()
        .chain(bpimc_server::models::MODELS.iter())
        .filter(|s| only.as_deref().is_none_or(|n| n == s.name))
        .collect();
    if specs.is_empty() {
        die(&format!(
            "no model named '{}' (try model-check with no --model to list all)",
            only.unwrap_or_default()
        ));
    }
    let mut failed = 0usize;
    for spec in &specs {
        match explore(spec.name, &cfg, spec.run) {
            Ok(stats) => println!(
                "ok    {:<38} {} schedules, {} points (longest {})  [{}]",
                spec.name, stats.executions, stats.steps, stats.max_steps_seen, spec.invariant
            ),
            Err(failure) => {
                failed += 1;
                write_trace_artifact(&failure);
                println!("FAIL  {:<38} [{}]", spec.name, spec.invariant);
                eprintln!("{failure}");
            }
        }
    }
    if failed > 0 {
        die(&format!("{failed} of {} model(s) failed", specs.len()));
    }
    println!("model check passed ({} models)", specs.len());
}

/// Without the `model` feature the deterministic scheduler is compiled
/// out (the sync shim is plain `std::sync`), so there is nothing to
/// explore — point at the right build instead of silently passing.
#[cfg(not(feature = "model"))]
fn model_check(_args: &[String]) {
    die(
        "this binary was built without the 'model' feature; rebuild with:\n  \
         cargo run -p bpimc-bench --features model --bin repro -- model-check",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro [all|fig2|fig7a|fig7b|fig8|fig9|table1|table2|table3|ablation|vrange]... [--samples N] [--seed S] [--json]");
        eprintln!(
            "       repro serve [--addr HOST:PORT] [--macros N] [--write-timeout-ms MS] [--max-* limits] [--chaos-* plan] [--fault-injection (honour inject_panic only)] [--state-dir DIR] [--fsync always|interval:<ms>|never]"
        );
        eprintln!("       repro state --state-dir DIR  (inspect/verify durable state; non-zero exit on corruption)");
        eprintln!("       repro check-bench [--baseline FILE]");
        eprintln!("       repro lint [--builtin] [FILE|-]");
        eprintln!("       repro model-check [--seeds N] [--depth D] [--model NAME] [--seed S] [--exhaustive BUDGET] [--max-steps N]  (needs --features model)");
        std::process::exit(2);
    }
    if args[0] == "serve" {
        serve(&args[1..]);
        return;
    }
    if args[0] == "state" {
        state_cmd(&args[1..]);
        return;
    }
    if args[0] == "model-check" {
        model_check(&args[1..]);
        return;
    }
    if args[0] == "check-bench" {
        check_bench(&args[1..]);
        return;
    }
    if args[0] == "lint" {
        lint_cmd(&args[1..]);
        return;
    }
    let mut samples = 800usize;
    let mut seed = 2020u64;
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--samples needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--json" => json = true,
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let mut report = BenchReport {
        samples,
        seed,
        ran_fig2: false,
        experiments: Vec::new(),
    };

    if want("table1") {
        println!("{}\n", report.record("table1", table1::run));
    }
    if want("fig7b") {
        println!("{}\n", report.record("fig7b", fig7b::run));
    }
    if want("fig8") {
        println!("{}\n", report.record("fig8", fig8::run));
    }
    if want("fig9") {
        println!("{}\n", report.record("fig9", fig9::run));
    }
    if want("table2") {
        println!("{}\n", report.record("table2", table2::run));
    }
    if want("table3") {
        println!("{}\n", report.record("table3", table3::run));
    }
    if want("vrange") {
        println!("{}\n", report.record("vrange", vrange::run));
    }
    if want("ablation") {
        println!("{}\n", report.record("ablation", ablation::run));
    }
    if want("fig7a") {
        println!("{}\n", report.record("fig7a", fig7a::run));
    }
    if want("fig2") {
        report.ran_fig2 = true;
        println!("{}\n", report.record("fig2", || fig2::run(samples, seed)));
    }

    if json {
        let micro = micro_timings();
        let path = "BENCH_repro.json";
        std::fs::write(path, report.to_json(&micro))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("wrote {path}");
        append_history(report.samples, report.ran_fig2, &micro);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
