//! `repro` — regenerate the paper's figures and tables from the simulators.
//!
//! ```text
//! repro all                 # everything (fig2 with default sample count)
//! repro fig2 --samples 2000
//! repro fig7a fig7b fig8 fig9 table1 table2 table3
//! ```

use bpimc_bench::experiments::{ablation, fig2, fig7a, fig7b, fig8, fig9, table1, table2, table3, vrange};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro [all|fig2|fig7a|fig7b|fig8|fig9|table1|table2|table3|ablation|vrange]... [--samples N] [--seed S]");
        std::process::exit(2);
    }
    let mut samples = 800usize;
    let mut seed = 2020u64;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--samples needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            other => wanted.push(other.to_string()),
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if want("table1") {
        println!("{}\n", table1::run());
    }
    if want("fig7b") {
        println!("{}\n", fig7b::run());
    }
    if want("fig8") {
        println!("{}\n", fig8::run());
    }
    if want("fig9") {
        println!("{}\n", fig9::run());
    }
    if want("table2") {
        println!("{}\n", table2::run());
    }
    if want("table3") {
        println!("{}\n", table3::run());
    }
    if want("vrange") {
        println!("{}\n", vrange::run());
    }
    if want("ablation") {
        println!("{}\n", ablation::run());
    }
    if want("fig7a") {
        println!("{}\n", fig7a::run());
    }
    if want("fig2") {
        println!("{}\n", fig2::run(samples, seed));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
