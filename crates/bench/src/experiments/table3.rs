//! Table III — comparison with the state of the art.
//!
//! The three cited competitor rows come from the literature constants in
//! `bpimc-baseline`; the "Prop." row is generated live from this
//! workspace's own models (area, frequency, efficiency).

use crate::textfmt::{ghz, TextTable};
use bpimc_array::ArrayGeometry;
use bpimc_baseline::{ComparisonRow, TABLE3_ROWS};
use bpimc_core::Precision;
use bpimc_device::Env;
use bpimc_metrics::energy::Table2Op;
use bpimc_metrics::{AreaModel, FrequencyModel, TopsModel};
use std::fmt;

/// The generated "Prop." row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProposedRow {
    /// Peripheral area overhead fraction (paper: 5.2 %).
    pub area_overhead: f64,
    /// Fmax at 1.0 V (paper: 2.25 GHz).
    pub fmax_hz: f64,
    /// Fmax at 0.6 V (paper: 372 MHz).
    pub fmax_0v6_hz: f64,
    /// 8-bit MULT TOPS/W at 0.6 V (paper: 0.68).
    pub tops_w_mult: f64,
    /// 8-bit ADD TOPS/W at 0.6 V (paper: 8.09).
    pub tops_w_add: f64,
}

/// The full Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// Cited competitor rows.
    pub cited: [ComparisonRow; 3],
    /// Our generated row.
    pub proposed: ProposedRow,
}

/// Builds the table.
pub fn run() -> Table3Result {
    let area = AreaModel::default_28nm();
    let freq = FrequencyModel;
    let tops = TopsModel::paper_calibrated();
    let proposed = ProposedRow {
        area_overhead: area.overhead_fraction(&ArrayGeometry::paper_macro()),
        fmax_hz: freq.fmax(&Env::nominal().with_vdd(1.0)),
        fmax_0v6_hz: freq.fmax(&Env::nominal().with_vdd(0.6)),
        tops_w_mult: tops.tops_per_watt(Table2Op::Mult, Precision::P8, true, 0.6),
        tops_w_add: tops.tops_per_watt(Table2Op::Add, Precision::P8, true, 0.6),
    };
    Table3Result {
        cited: TABLE3_ROWS,
        proposed,
    }
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — comparison with the state of the art")?;
        let mut t = TextTable::new([
            "design",
            "area ovh",
            "cell",
            "read-disturb fix",
            "supply",
            "array",
            "max freq",
            "reconfig",
            "TOPS/W MULT",
            "TOPS/W ADD",
        ]);
        for r in &self.cited {
            t.row([
                r.reference.to_string(),
                r.area_overhead
                    .map_or("-".into(), |a| format!("*{:.1} %", a * 100.0)),
                r.cell_type.to_string(),
                r.read_disturb_fix.to_string(),
                format!("{:.1}-{:.1} V", r.supply_v.0, r.supply_v.1),
                r.array_size.to_string(),
                format!("{} ({:.1} V)", ghz(r.max_freq_hz), r.max_freq_at_v),
                r.reconfigurable.to_string(),
                r.tops_w_mult.map_or("-".into(), |x| format!("{x:.2}")),
                r.tops_w_add.map_or("-".into(), |x| format!("{x:.2}")),
            ]);
        }
        let p = &self.proposed;
        t.row([
            "Prop. (this repro)".to_string(),
            format!("{:.1} %", p.area_overhead * 100.0),
            "6T cell".to_string(),
            "Short WL w/ BL Boosting".to_string(),
            "0.6-1.1 V".to_string(),
            "4 x 128 x 128".to_string(),
            format!("{} (1.0 V)", ghz(p.fmax_hz)),
            "2bit/4bit/8bit".to_string(),
            format!("{:.2} (0.6 V)", p.tops_w_mult),
            format!("{:.2} (0.6 V)", p.tops_w_add),
        ]);
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "* array area overhead not included for cited designs (paper footnote)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_row_matches_paper_headlines() {
        let r = run();
        let p = r.proposed;
        assert!(
            (p.area_overhead - 0.052).abs() < 0.005,
            "area {}",
            p.area_overhead
        );
        assert!((p.fmax_hz - 2.25e9).abs() / 2.25e9 < 0.02);
        assert!((p.fmax_0v6_hz - 372e6).abs() / 372e6 < 0.06);
        assert!((p.tops_w_mult - 0.68).abs() / 0.68 < 0.15);
        assert!((p.tops_w_add - 8.09).abs() / 8.09 < 0.15);
    }

    #[test]
    fn proposed_beats_the_bit_serial_baseline() {
        let r = run();
        let bit_serial = r.cited[1];
        assert!(r.proposed.fmax_hz > 4.0 * bit_serial.max_freq_hz);
        assert!(r.proposed.tops_w_mult > bit_serial.tops_w_mult.unwrap());
        assert!(r.proposed.tops_w_add > bit_serial.tops_w_add.unwrap());
    }

    #[test]
    fn display_renders_all_rows() {
        let s = format!("{}", run());
        assert!(s.contains("Prop. (this repro)"));
        assert!(s.contains("19' JSSC [2]"));
    }
}
