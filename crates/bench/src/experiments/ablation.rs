//! Ablation studies of the paper's three design choices.
//!
//! Not a figure in the paper, but the evaluation's implicit trade-offs made
//! explicit — each ablation removes one mechanism and measures what it was
//! buying:
//!
//! 1. **WL pulse width** (the 140 ps choice): BL delay and disturb margin
//!    vs pulse width. Short pulses rely on the booster; long pulses creep
//!    back toward the disturb-prone full-WL regime.
//! 2. **BL booster** (on/off at 140 ps): without it the short pulse leaves
//!    the bit-line barely discharged and the SA never trips.
//! 3. **BL separator** (on/off): per-operation energy of SUB/MULT.

use crate::textfmt::{ns, TextTable};
use bpimc_cell::blbench::{BlComputeBench, WlScheme};
use bpimc_cell::boost::BoostDevices;
use bpimc_cell::sram6t::CellDevices;
use bpimc_core::Precision;
use bpimc_device::Env;
use bpimc_metrics::energy::{table2_energy_fj, Table2Op};
use bpimc_metrics::paper_calibrated_params;
use std::fmt;

/// One pulse-width ablation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulsePoint {
    /// WL pulse width, seconds.
    pub pulse_s: f64,
    /// BL computing delay, seconds (`None` when the SA never trips).
    pub delay_s: Option<f64>,
    /// Worst nominal disturb margin, volts.
    pub margin_v: f64,
}

/// One separator ablation row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparatorPoint {
    /// Operation.
    pub op: Table2Op,
    /// Precision.
    pub precision: Precision,
    /// Energy with the separator, femtojoules.
    pub with_fj: f64,
    /// Energy without, femtojoules.
    pub without_fj: f64,
}

impl SeparatorPoint {
    /// Fractional energy saving from the separator.
    pub fn saving(&self) -> f64 {
        1.0 - self.with_fj / self.without_fj
    }
}

/// The full ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Pulse-width sweep (booster enabled).
    pub pulse_sweep: Vec<PulsePoint>,
    /// The 140 ps point with the booster disabled: final BL voltage (the
    /// swing the cells alone achieved) and whether the SA tripped.
    pub no_boost_blt_final: f64,
    /// Whether the SA tripped without the booster.
    pub no_boost_trips: bool,
    /// Separator energy ablation.
    pub separator: Vec<SeparatorPoint>,
}

/// Runs all three ablations at 0.9 V NN.
pub fn run() -> AblationResult {
    let env = Env::nominal();

    // 1. Pulse-width sweep — one batched solve over the six widths: the
    // sweep points share a topology and differ only in the WL waveform,
    // exactly the shape the SoA engine wants.
    let widths = [80e-12, 110e-12, 140e-12, 200e-12, 300e-12, 400e-12];
    let benches: Vec<BlComputeBench> = widths
        .iter()
        .map(|&pulse_s| BlComputeBench::new(128, env, WlScheme::ShortBoost { pulse_s }))
        .collect();
    let cell = CellDevices::nominal(benches[0].sizing);
    let boost = BoostDevices::nominal(benches[0].boost_sizing);
    let (circuits, node_sets): (Vec<_>, Vec<_>) = benches
        .iter()
        .map(|b| b.build(&cell, &cell, &boost, &boost, false, true))
        .unzip();
    let opts = bpimc_circuit::SimOptions::for_window(benches[0].window());
    let traces = bpimc_circuit::BatchSim::new(&circuits, &opts)
        .expect("sweep points share one topology")
        .run();
    let pulse_sweep = widths
        .iter()
        .zip(&benches)
        .zip(node_sets.iter().zip(&traces))
        .map(|((&pulse_s, bench), (nodes, trace))| {
            let out = bench.measure(trace, nodes, false, true);
            PulsePoint {
                pulse_s,
                delay_s: out.delay_s,
                margin_v: out.worst_margin(),
            }
        })
        .collect();

    // 2. Booster ablation: 140 ps pulse, BSTEN held low. Model by building
    // the FullStatic bench's cells with a pulse WL but no boost blocks:
    // reuse the ShortBoost scheme with zero-width booster devices is not
    // physical; instead use a bench with the boost scheme but measure what
    // the cells alone achieve by disabling via a non-boost scheme of equal
    // pulse: WlScheme::ShortBoost builds boosters, so emulate "no boost"
    // with a FullStatic-derived pulse bench: the Wlud scheme at full VDD
    // would hold the WL; we want a *pulse* without boost. The blbench
    // building blocks support this via a custom scheme: use ShortBoost and
    // then read the BL level just before the booster would fire is not
    // separable -- so approximate with a one-off circuit here.
    let (no_boost_blt_final, no_boost_trips) = no_boost_probe(env);

    // 3. Separator ablation.
    let params = paper_calibrated_params();
    let mut separator = Vec::new();
    for op in [Table2Op::Sub, Table2Op::Mult] {
        for p in [Precision::P2, Precision::P4, Precision::P8] {
            separator.push(SeparatorPoint {
                op,
                precision: p,
                with_fj: table2_energy_fj(op, p, true, &params),
                without_fj: table2_energy_fj(op, p, false, &params),
            });
        }
    }

    AblationResult {
        pulse_sweep,
        no_boost_blt_final,
        no_boost_trips,
        separator,
    }
}

/// A 140 ps pulse driving the standard two-cell column with NO booster:
/// how far do the cells alone get the bit-line?
fn no_boost_probe(env: Env) -> (f64, bool) {
    use bpimc_cell::sram6t::{build_cell, CellDevices, CellSizing};
    use bpimc_circuit::{Circuit, Edge, SimOptions, Waveform};
    let vdd_v = env.vdd;
    let mut ckt = Circuit::new(env);
    let vdd = ckt.add_source("vdd", Waveform::dc(vdd_v));
    let wl = ckt.add_source("wl", Waveform::pulse(0.0, vdd_v, 0.2e-9, 140e-12, 15e-12));
    let c_bl = 126.0 * 0.10e-15;
    let blt = ckt.add_node("blt", c_bl, vdd_v);
    let blb = ckt.add_node("blb", c_bl, vdd_v);
    let devs = CellDevices::nominal(CellSizing::hd28());
    let _a = build_cell(&mut ckt, &devs, "a", blt, blb, wl, vdd, false);
    let _b = build_cell(&mut ckt, &devs, "b", blt, blb, wl, vdd, true);
    let tr = ckt.run(&SimOptions::for_window(3e-9));
    let trips = tr
        .cross_time(blt, 0.5 * vdd_v, Edge::Falling, 0.2e-9)
        .is_ok();
    (tr.last_voltage(blt), trips)
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation 1 — WL pulse width (booster enabled, 0.9 V NN)")?;
        let mut t = TextTable::new(["pulse", "BL delay", "disturb margin"]);
        for p in &self.pulse_sweep {
            t.row([
                format!("{:.0} ps", p.pulse_s * 1e12),
                p.delay_s.map_or("no trip".into(), ns),
                format!("{:.0} mV", p.margin_v * 1e3),
            ]);
        }
        write!(f, "{}", t.render())?;

        writeln!(
            f,
            "\nAblation 2 — booster removed @ 140 ps pulse: BLT settles at {:.2} V, SA trips: {}",
            self.no_boost_blt_final, self.no_boost_trips
        )?;

        writeln!(f, "\nAblation 3 — BL separator energy savings")?;
        let mut t = TextTable::new(["op", "precision", "w/ sep [fJ]", "w/o sep [fJ]", "saving"]);
        for s in &self.separator {
            t.row([
                format!("{:?}", s.op),
                s.precision.to_string(),
                format!("{:.1}", s.with_fj),
                format!("{:.1}", s.without_fj),
                format!("{:.1} %", s.saving() * 100.0),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_width_trades_margin_for_nothing_beyond_the_knee() {
        let r = run();
        // Margin shrinks monotonically as the pulse lengthens.
        for w in r.pulse_sweep.windows(2) {
            assert!(
                w[1].margin_v <= w[0].margin_v + 1e-6,
                "margin must not grow with pulse width"
            );
        }
        // Every probed width still trips the SA (the booster finishes the
        // job even for an 80 ps pulse).
        assert!(r.pulse_sweep.iter().all(|p| p.delay_s.is_some()));
    }

    #[test]
    fn booster_is_load_bearing() {
        let r = run();
        assert!(
            !r.no_boost_trips,
            "without the booster a 140 ps pulse must not trip the SA"
        );
        assert!(
            r.no_boost_blt_final > 0.45,
            "cells alone leave most of the BL charge: {:.2} V",
            r.no_boost_blt_final
        );
    }

    #[test]
    fn separator_savings_match_the_papers_magnitude() {
        let r = run();
        for s in &r.separator {
            // Paper's Table II savings are ~10% (SUB) to ~20% (MULT).
            assert!(
                (0.02..0.35).contains(&s.saving()),
                "{:?} {}: saving {:.2}",
                s.op,
                s.precision,
                s.saving()
            );
        }
    }
}
