//! Table II — energy per operation, model vs paper.
//!
//! Prints the calibrated activity-model energies next to the paper's
//! SPICE-measured values with per-cell relative errors.

use crate::textfmt::TextTable;
use bpimc_metrics::calibrate::{calibrate, CalibrationReport};
use std::fmt;

/// The Table II reproduction: the full calibration report.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// The calibration fit and per-cell residuals.
    pub report: CalibrationReport,
}

/// Runs the calibration and packages the comparison.
pub fn run() -> Table2Result {
    Table2Result {
        report: calibrate(),
    }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — energy per operation [fJ] @ 0.9 V (model vs paper)"
        )?;
        let mut t = TextTable::new([
            "operation",
            "precision",
            "separator",
            "paper",
            "model",
            "rel. err",
        ]);
        for (cell, model, rel) in &self.report.cells {
            t.row([
                format!("{:?}", cell.op),
                cell.precision.to_string(),
                if cell.separator {
                    "w/".to_string()
                } else {
                    "w/o".to_string()
                },
                format!("{:.1}", cell.paper_fj),
                format!("{model:.1}"),
                format!("{:+.1} %", rel * 100.0),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "fit quality: rms {:.1} %, worst {:.1} %",
            self.report.rms_rel_err * 100.0,
            self.report.max_rel_err * 100.0
        )?;
        let p = self.report.params;
        writeln!(
            f,
            "fitted coefficients [fJ]: compute(dual) {:.2}, compute(single) {:.2}, wb(full) {:.2}, wb(shielded) {:.2}, wb(invert extra) {:.2}, ff {:.2}, fixed/cycle {:.2}",
            p.compute_dual_fj,
            p.compute_single_fj,
            p.wb_full_fj,
            p.wb_shielded_fj,
            p.wb_invert_extra_fj,
            p.ff_fj,
            p.cycle_fixed_fj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_report_covers_all_15_cells() {
        let r = run();
        assert_eq!(r.report.cells.len(), 15);
        assert!(r.report.rms_rel_err < 0.10);
        assert!(format!("{r}").contains("rms"));
    }
}
