//! Supply-range validation — the paper's "wide range of supply voltage,
//! from 0.6 V to 1.1 V" claim, checked at the *circuit* level.
//!
//! At each supply the dual-WL compute bench runs with the WL pulse width
//! scaled by the same self-timed delay law the clock follows (a real
//! macro's pulse generator tracks process/voltage). The experiment verifies
//! that the short-WL + boost scheme still completes the bit-line swing,
//! trips the SA and preserves the stored data at every point — and
//! cross-validates the transient simulator against the analytic
//! alpha-power scaling the frequency model uses.

use crate::textfmt::{ns, TextTable};
use bpimc_cell::blbench::{BlComputeBench, WlScheme};
use bpimc_cell::boost::BoostDevices;
use bpimc_cell::sram6t::CellDevices;
use bpimc_device::Env;
use bpimc_metrics::DelayScaling;
use std::fmt;

/// One supply point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VrangePoint {
    /// Supply voltage.
    pub vdd: f64,
    /// The scaled WL pulse width used, seconds.
    pub pulse_s: f64,
    /// Measured BL computing delay, seconds (`None` = scheme failed).
    pub delay_s: Option<f64>,
    /// Worst storage-node margin, volts.
    pub margin_v: f64,
    /// Whether a cell flipped.
    pub flipped: bool,
}

/// The supply sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct VrangeResult {
    /// Points over 0.6-1.1 V.
    pub points: Vec<VrangePoint>,
}

impl VrangeResult {
    /// True when the scheme operated correctly at every supply point.
    pub fn operational_everywhere(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.delay_s.is_some() && !p.flipped && p.margin_v > 0.05 * p.vdd)
    }

    /// Measured delay scaling (per point, relative to the 0.9 V point) next
    /// to the analytic model's prediction.
    pub fn scaling_comparison(&self) -> Vec<(f64, f64, f64)> {
        let d09 = self
            .points
            .iter()
            .find(|p| (p.vdd - 0.9).abs() < 1e-9)
            .and_then(|p| p.delay_s)
            .unwrap_or(f64::NAN);
        let law = DelayScaling::paper_fit();
        self.points
            .iter()
            .map(|p| {
                let measured = p.delay_s.map_or(f64::NAN, |d| d / d09);
                let predicted = law.delay_factor(&Env::nominal().with_vdd(p.vdd));
                (p.vdd, measured, predicted)
            })
            .collect()
    }
}

/// Runs the sweep.
pub fn run() -> VrangeResult {
    let law = DelayScaling::paper_fit();
    let supplies = [0.6, 0.7, 0.8, 0.9, 1.0, 1.1];
    let benches: Vec<(f64, f64, BlComputeBench)> = supplies
        .iter()
        .map(|&vdd| {
            let env = Env::nominal().with_vdd(vdd);
            // Self-timed pulse: the pulse generator is a replica delay
            // chain built from the booster's LVT devices, which degrade
            // far less at low supply than the RVT logic path the clock
            // follows — it deliberately under-tracks (~square root of the
            // clock law). A fully-tracked pulse would re-open the disturb
            // window at 0.6 V (run the ablation to see it).
            let pulse_s = 140e-12 * law.delay_factor(&env).sqrt();
            let bench = BlComputeBench::new(128, env, WlScheme::ShortBoost { pulse_s });
            (vdd, pulse_s, bench)
        })
        .collect();
    // One batched solve across the supply points: same topology, different
    // environment, waveforms and (via the environment) device parameters.
    let cell = CellDevices::nominal(benches[0].2.sizing);
    let boost = BoostDevices::nominal(benches[0].2.boost_sizing);
    let (circuits, node_sets): (Vec<_>, Vec<_>) = benches
        .iter()
        .map(|(_, _, b)| b.build(&cell, &cell, &boost, &boost, false, true))
        .unzip();
    let opts = bpimc_circuit::SimOptions::for_window(benches[0].2.window());
    let traces = bpimc_circuit::BatchSim::new(&circuits, &opts)
        .expect("sweep points share one topology")
        .run();
    let points = benches
        .iter()
        .zip(node_sets.iter().zip(&traces))
        .map(|((vdd, pulse_s, bench), (nodes, trace))| {
            let out = bench.measure(trace, nodes, false, true);
            VrangePoint {
                vdd: *vdd,
                pulse_s: *pulse_s,
                delay_s: out.delay_s,
                margin_v: out.worst_margin(),
                flipped: out.flipped,
            }
        })
        .collect();
    VrangeResult { points }
}

impl fmt::Display for VrangeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Supply-range validation — short WL + boost, 0.6-1.1 V (circuit level)"
        )?;
        let mut t = TextTable::new([
            "VDD",
            "pulse",
            "BL delay",
            "margin",
            "state",
            "delay vs model",
        ]);
        let scaling = self.scaling_comparison();
        for (p, (_, meas, pred)) in self.points.iter().zip(&scaling) {
            t.row([
                format!("{:.1} V", p.vdd),
                format!("{:.0} ps", p.pulse_s * 1e12),
                p.delay_s.map_or("FAIL".into(), ns),
                format!("{:.0} mV", p.margin_v * 1e3),
                if p.flipped {
                    "FLIPPED".into()
                } else {
                    "ok".to_string()
                },
                format!("x{meas:.2} (law x{pred:.2})"),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "operational at every point: {}",
            self.operational_everywhere()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operates_across_the_paper_supply_range() {
        let r = run();
        assert_eq!(r.points.len(), 6);
        assert!(r.operational_everywhere(), "{r}");
    }

    #[test]
    fn circuit_delay_scaling_tracks_the_analytic_law() {
        // Two independent layers: the transient simulator (physical device
        // model) and the alpha-power macro-model (fitted to the paper's
        // frequency points). Their voltage trends must agree within ~35%
        // over nearly a 5x dynamic range.
        let r = run();
        for (vdd, measured, predicted) in r.scaling_comparison() {
            if !(0.7..=1.1).contains(&vdd) || (vdd - 0.9).abs() < 1e-9 {
                // Below 0.7 V the LVT boost path dominates and legitimately
                // degrades less than the RVT-logic law; compare 0.7-1.1 V.
                continue;
            }
            let rel = (measured - predicted).abs() / predicted;
            assert!(
                rel < 0.40,
                "{vdd} V: measured x{measured:.2} vs law x{predicted:.2}"
            );
        }
    }

    #[test]
    fn margins_grow_with_supply() {
        let r = run();
        let m06 = r.points[0].margin_v;
        let m11 = r.points[5].margin_v;
        assert!(m11 > m06, "margin at 1.1 V ({m11}) vs 0.6 V ({m06})");
    }
}
