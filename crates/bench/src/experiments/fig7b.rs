//! Fig. 7(b) — FA critical path delay vs supply voltage.
//!
//! The proposed transmission-gate carry-select FA against a logic-gate
//! ripple FA, at 8- and 16-bit widths, swept over 0.7-1.1 V. The paper
//! reports a 1.8x-2.2x advantage.

use crate::textfmt::{ps, TextTable};
use bpimc_device::Env;
use bpimc_metrics::fa_timing::FaKind;
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7bPoint {
    /// Supply voltage.
    pub vdd: f64,
    /// Proposed FA critical path at 8 bits, seconds.
    pub prop_8b: f64,
    /// Logic-gate FA at 8 bits, seconds.
    pub logic_8b: f64,
    /// Proposed FA at 16 bits, seconds.
    pub prop_16b: f64,
    /// Logic-gate FA at 16 bits, seconds.
    pub logic_16b: f64,
}

/// The voltage sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7bResult {
    /// Points from 0.7 V to 1.1 V.
    pub points: Vec<Fig7bPoint>,
}

impl Fig7bResult {
    /// The (min, max) speedup across the sweep and both widths.
    pub fn speedup_band(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for p in &self.points {
            for s in [p.logic_8b / p.prop_8b, p.logic_16b / p.prop_16b] {
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        (lo, hi)
    }
}

/// Runs the sweep at the paper's voltages.
pub fn run() -> Fig7bResult {
    let points = (7..=11)
        .map(|dv| {
            let vdd = dv as f64 / 10.0;
            let env = Env::nominal().with_vdd(vdd);
            Fig7bPoint {
                vdd,
                prop_8b: FaKind::TgCarrySelect.critical_path(8, &env),
                logic_8b: FaKind::LogicGate.critical_path(8, &env),
                prop_16b: FaKind::TgCarrySelect.critical_path(16, &env),
                logic_16b: FaKind::LogicGate.critical_path(16, &env),
            }
        })
        .collect();
    Fig7bResult { points }
}

impl fmt::Display for Fig7bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7(b) — FA critical path vs supply (28 nm, NN)")?;
        let mut t = TextTable::new([
            "VDD",
            "Prop. FA (8b)",
            "Logic FA (8b)",
            "Prop. FA (16b)",
            "Logic FA (16b)",
            "speedup 16b",
        ]);
        for p in &self.points {
            t.row([
                format!("{:.1} V", p.vdd),
                ps(p.prop_8b),
                ps(p.logic_8b),
                ps(p.prop_16b),
                ps(p.logic_16b),
                format!("x{:.2}", p.logic_16b / p.prop_16b),
            ]);
        }
        write!(f, "{}", t.render())?;
        let (lo, hi) = self.speedup_band();
        writeln!(f, "speedup band (paper: 1.8x-2.2x): x{lo:.2} - x{hi:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpimc_metrics::fa_timing::speedup;

    #[test]
    fn band_matches_the_paper() {
        let r = run();
        assert_eq!(r.points.len(), 5);
        let (lo, hi) = r.speedup_band();
        assert!(lo >= 1.7 && hi <= 2.3, "band {lo}-{hi}");
    }

    #[test]
    fn delays_fall_with_voltage() {
        let r = run();
        assert!(r.points.windows(2).all(|w| w[1].prop_16b < w[0].prop_16b));
    }

    #[test]
    fn speedup_accessor_consistent() {
        let env = Env::nominal();
        let s = speedup(16, &env);
        assert!(s > 1.7 && s < 2.3);
    }
}
