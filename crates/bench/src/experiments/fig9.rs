//! Fig. 9 — cycles per operation vs BL size: bit-parallel vs bit-serial.
//!
//! The proposed architecture's parallelism grows with the row width (its
//! carry chain spans every column), while the conventional bit-serial
//! design keeps its published fixed 128-lane SIMD organisation — so the
//! proposed advantage widens with BL size, and 8-bit MULT crosses over
//! (slower than bit-serial) at BL = 128, exactly the paper's x1.19 label.
//!
//! Cycle counts for the proposed side are *measured* by running the
//! executor; the baseline uses its documented formulas. Two product
//! throughput countings are reported for MULT (see `DESIGN.md`): the
//! paper's dense counting (one word per `P` columns, the headline series)
//! and the strict product-lane counting our executor implements (one word
//! per `2P` columns, i.e. two interleaved passes).

use crate::textfmt::TextTable;
use bpimc_baseline::BitSerialCycles;
use bpimc_core::{ImcMacro, MacroConfig, Precision};
use std::fmt;

/// The swept BL sizes of the paper.
pub const BL_SIZES: [usize; 4] = [128, 256, 512, 1024];

/// One (operation, BL size) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Cell {
    /// Row width in columns.
    pub bl_size: usize,
    /// Proposed: measured cycles for one row-wide op.
    pub prop_cycles: u64,
    /// Proposed: words processed by that op (dense counting).
    pub prop_words: usize,
    /// Conventional: formula cycles.
    pub conv_cycles: u64,
    /// Conventional: fixed SIMD lanes.
    pub conv_words: usize,
}

impl Fig9Cell {
    /// Proposed cycles per word.
    pub fn prop_cpw(&self) -> f64 {
        self.prop_cycles as f64 / self.prop_words as f64
    }

    /// Conventional cycles per word.
    pub fn conv_cpw(&self) -> f64 {
        self.conv_cycles as f64 / self.conv_words as f64
    }

    /// The proposed/conventional ratio (the paper's figure labels).
    pub fn ratio(&self) -> f64 {
        self.prop_cpw() / self.conv_cpw()
    }
}

/// The full Fig. 9 result: ADD / SUB / MULT series over BL sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// 8-bit ADD cells.
    pub add: Vec<Fig9Cell>,
    /// 8-bit SUB cells.
    pub sub: Vec<Fig9Cell>,
    /// 8-bit MULT cells (dense word counting, the paper's).
    pub mult: Vec<Fig9Cell>,
    /// 8-bit MULT with strict product-lane counting (words per 2P columns).
    pub mult_strict: Vec<Fig9Cell>,
}

/// Runs the sweep with measured executor cycle counts at 8-bit precision.
pub fn run() -> Fig9Result {
    let p = Precision::P8;
    let bits = p.bits();
    let mut add = Vec::new();
    let mut sub = Vec::new();
    let mut mult = Vec::new();
    let mut mult_strict = Vec::new();
    for &bl in &BL_SIZES {
        let mut mac = ImcMacro::new(MacroConfig::with_cols(bl));
        let lanes = p.lanes(bl);
        let plane = p.product_lanes(bl);
        mac.write_words(0, p, &vec![7; lanes]).expect("fits");
        mac.write_words(1, p, &vec![9; lanes]).expect("fits");
        let c_add = mac.add(0, 1, 2, p).expect("add");
        let c_sub = mac.sub(0, 1, 3, p).expect("sub");
        mac.write_mult_operands(4, p, &vec![7; plane])
            .expect("fits");
        mac.write_mult_operands(5, p, &vec![9; plane])
            .expect("fits");
        let c_mult = mac.mult(4, 5, 6, p).expect("mult");

        add.push(Fig9Cell {
            bl_size: bl,
            prop_cycles: c_add,
            prop_words: lanes,
            conv_cycles: BitSerialCycles::add(bits),
            conv_words: BitSerialCycles::SIMD_LANES,
        });
        sub.push(Fig9Cell {
            bl_size: bl,
            prop_cycles: c_sub,
            prop_words: lanes,
            conv_cycles: BitSerialCycles::sub(bits),
            conv_words: BitSerialCycles::SIMD_LANES,
        });
        mult.push(Fig9Cell {
            bl_size: bl,
            prop_cycles: c_mult,
            prop_words: lanes, // dense counting (paper)
            conv_cycles: BitSerialCycles::mult(bits),
            conv_words: BitSerialCycles::SIMD_LANES,
        });
        mult_strict.push(Fig9Cell {
            bl_size: bl,
            prop_cycles: c_mult,
            prop_words: plane, // strict product lanes
            conv_cycles: BitSerialCycles::mult(bits),
            conv_words: BitSerialCycles::SIMD_LANES,
        });
    }
    Fig9Result {
        add,
        sub,
        mult,
        mult_strict,
    }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9 — cycles/operation vs BL size (8-bit ops)")?;
        for (name, series) in [
            ("ADD", &self.add),
            ("SUB", &self.sub),
            ("MULT (dense counting, paper)", &self.mult),
            ("MULT (strict product lanes)", &self.mult_strict),
        ] {
            writeln!(f, "\n  {name}:")?;
            let mut t = TextTable::new(["BL size", "Prop. cyc/op", "Conv. cyc/op", "ratio"]);
            for c in series {
                t.row([
                    c.bl_size.to_string(),
                    format!("{:.4}", c.prop_cpw()),
                    format!("{:.4}", c.conv_cpw()),
                    format!("x{:.2}", c.ratio()),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_the_paper_labels() {
        let r = run();
        // ADD at BL=128: x0.38; MULT (dense) at BL=128: x1.19.
        assert!(
            (r.add[0].ratio() - 0.38).abs() < 0.01,
            "{}",
            r.add[0].ratio()
        );
        assert!(
            (r.mult[0].ratio() - 1.19).abs() < 0.01,
            "{}",
            r.mult[0].ratio()
        );
        // MULT at BL=1024 (dense): ~0.15 (paper label 0.19).
        assert!(r.mult[3].ratio() < 0.2);
    }

    #[test]
    fn ratios_fall_with_bl_size_and_mult_crosses_over() {
        let r = run();
        for series in [&r.add, &r.sub, &r.mult] {
            for w in series.windows(2) {
                assert!(w[1].ratio() < w[0].ratio(), "ratio must fall with BL size");
            }
        }
        // The crossover: bit-serial wins MULT at 128, loses from 256 up.
        assert!(r.mult[0].ratio() > 1.0);
        assert!(r.mult[1].ratio() < 1.0);
    }

    #[test]
    fn conventional_is_bl_size_independent() {
        let r = run();
        let c0 = r.add[0].conv_cpw();
        assert!(r.add.iter().all(|c| (c.conv_cpw() - c0).abs() < 1e-12));
    }

    #[test]
    fn proposed_cycles_are_the_table1_counts() {
        let r = run();
        assert!(r.add.iter().all(|c| c.prop_cycles == 1));
        assert!(r.sub.iter().all(|c| c.prop_cycles == 2));
        assert!(r.mult.iter().all(|c| c.prop_cycles == 10));
    }
}
