//! The per-figure / per-table experiment runners.

pub mod ablation;
pub mod fig2;
pub mod fig7a;
pub mod fig7b;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod vrange;
