//! Fig. 7(a) — BL computing delay across process corners.
//!
//! Transient-simulated delay (WL driver to single-ended SA output) of the
//! conventional WLUD scheme vs the proposed short-WL + boost scheme at each
//! of the five corners, 0.9 V, 25 C. The paper reports a worst-case 0.22x
//! (proposed over WLUD).

use crate::textfmt::{ns, TextTable};
use bpimc_cell::blbench::{BlComputeBench, WlScheme};
use bpimc_device::{Corner, Env};
use std::fmt;

/// Per-corner delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerDelays {
    /// The corner.
    pub corner: Corner,
    /// WLUD delay, seconds.
    pub wlud_s: f64,
    /// Proposed-scheme delay, seconds.
    pub prop_s: f64,
}

impl CornerDelays {
    /// Proposed / WLUD ratio (smaller is better for the proposal).
    pub fn ratio(&self) -> f64 {
        self.prop_s / self.wlud_s
    }
}

/// The result: one row per corner, in the paper's plotting order.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7aResult {
    /// Rows in SF/SS/NN/FS/FF order.
    pub rows: Vec<CornerDelays>,
}

impl Fig7aResult {
    /// The worst (largest) proposed delay across corners.
    pub fn worst_prop(&self) -> f64 {
        self.rows.iter().map(|r| r.prop_s).fold(0.0, f64::max)
    }

    /// The ratio at the proposal's worst corner (the paper's 0.22x claim).
    pub fn worst_case_ratio(&self) -> f64 {
        self.rows
            .iter()
            .max_by(|a, b| a.prop_s.total_cmp(&b.prop_s))
            .map(|r| r.ratio())
            .unwrap_or(f64::NAN)
    }
}

/// Runs the per-corner sweep (nominal devices, no mismatch — corner skew
/// only, like the paper's corner plot).
pub fn run() -> Fig7aResult {
    let rows = Corner::ALL
        .iter()
        .map(|&corner| {
            let env = Env::nominal().with_corner(corner);
            let wlud = BlComputeBench::new(128, env, WlScheme::Wlud { v_wl: 0.55 })
                .nominal_delay(false, true)
                .expect("WLUD discharges");
            let prop = BlComputeBench::new(128, env, WlScheme::short_boost_140ps())
                .nominal_delay(false, true)
                .expect("proposed discharges");
            CornerDelays {
                corner,
                wlud_s: wlud,
                prop_s: prop,
            }
        })
        .collect();
    Fig7aResult { rows }
}

impl fmt::Display for Fig7aResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7(a) — BL computing delay per corner (0.9 V, 25 C)")?;
        let mut t = TextTable::new(["corner", "WLUD (0.55 V)", "Short WL + Boost", "ratio"]);
        for r in &self.rows {
            t.row([
                r.corner.to_string(),
                ns(r.wlud_s),
                ns(r.prop_s),
                format!("x{:.2}", r.ratio()),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "worst-case ratio (paper: x0.22): x{:.2}",
            self.worst_case_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_wins_at_every_corner() {
        let r = run();
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(
                row.prop_s < 0.5 * row.wlud_s,
                "{}: prop {} vs wlud {}",
                row.corner,
                row.prop_s,
                row.wlud_s
            );
        }
        // The paper's headline: ~0.22x at the worst case. Allow model slack.
        let worst = r.worst_case_ratio();
        assert!((0.1..0.45).contains(&worst), "worst ratio {worst}");
    }

    #[test]
    fn slow_corners_are_slower() {
        let r = run();
        let find = |c: Corner| r.rows.iter().find(|x| x.corner == c).unwrap();
        assert!(find(Corner::Ss).wlud_s > find(Corner::Ff).wlud_s);
        assert!(find(Corner::Ss).prop_s > find(Corner::Ff).prop_s);
    }
}
