//! Table I — supported operations and their cycle counts, *measured* by
//! running each operation on the executor and counting logged cycles.

use crate::textfmt::TextTable;
use bpimc_core::{ImcMacro, LogicOp, MacroConfig, Precision};
use std::fmt;

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Operation name as the paper lists it.
    pub operation: String,
    /// The paper's cycle count (N = bit width).
    pub paper_cycles: String,
    /// Measured cycles at 8-bit precision.
    pub measured_8b: u64,
}

/// The measured Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// All rows.
    pub rows: Vec<Table1Row>,
}

/// Runs every operation once and records its cycle count.
pub fn run() -> Table1Result {
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    mac.write_words(0, p, &[11]).expect("fits");
    mac.write_words(1, p, &[5]).expect("fits");
    mac.write_mult_operands(4, p, &[11]).expect("fits");
    mac.write_mult_operands(5, p, &[5]).expect("fits");

    let mut rows = Vec::new();
    let mut push = |name: &str, paper: &str, cycles: u64| {
        rows.push(Table1Row {
            operation: name.to_string(),
            paper_cycles: paper.to_string(),
            measured_8b: cycles,
        });
    };
    push(
        "NAND/AND",
        "1",
        mac.logic(LogicOp::And, 0, 1, 2).expect("op"),
    );
    push("NOR/OR", "1", mac.logic(LogicOp::Nor, 0, 1, 2).expect("op"));
    push(
        "XNOR/XOR",
        "1",
        mac.logic(LogicOp::Xor, 0, 1, 2).expect("op"),
    );
    push("NOT", "1", mac.not(0, 2).expect("op"));
    push("Shift (<<1)", "1", mac.shl(0, 2, p).expect("op"));
    push("ADD", "1", mac.add(0, 1, 2, p).expect("op"));
    push("ADD-Shift", "1", mac.add_shift(0, 1, 2, p).expect("op"));
    push("SUB", "2", mac.sub(0, 1, 2, p).expect("op"));
    push("MULT", "N+2", mac.mult(4, 5, 6, p).expect("op"));
    Table1Result { rows }
}

impl Table1Result {
    /// True when every measured count equals the paper's formula at N = 8.
    pub fn all_match(&self) -> bool {
        self.rows.iter().all(|r| {
            let expect = match r.paper_cycles.as_str() {
                "1" => 1,
                "2" => 2,
                "N+2" => 10,
                _ => u64::MAX,
            };
            r.measured_8b == expect
        })
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — supported operations and cycles (measured @ 8-bit)"
        )?;
        let mut t = TextTable::new(["operation", "paper", "measured (N=8)"]);
        for r in &self.rows {
            t.row([
                r.operation.clone(),
                r.paper_cycles.clone(),
                r.measured_8b.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f, "all rows match: {}", self.all_match())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_matches_the_paper() {
        let r = run();
        assert_eq!(r.rows.len(), 9);
        assert!(r.all_match(), "{r}");
    }
}
