//! Fig. 8 — cycle delay breakdown (left), maximum frequency and TOPS/W vs
//! supply voltage (right).

use crate::textfmt::{ghz, ps, TextTable};
use bpimc_array::CyclePhase;
use bpimc_core::Precision;
use bpimc_device::Env;
use bpimc_metrics::energy::Table2Op;
use bpimc_metrics::{ComponentDelays, FrequencyModel, TopsModel};
use std::fmt;

/// One voltage sweep point of the right-hand plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Supply voltage.
    pub vdd: f64,
    /// Maximum clock frequency, hertz.
    pub fmax_hz: f64,
    /// 8-bit ADD TOPS/W (separator on).
    pub tops_add: f64,
    /// 8-bit MULT TOPS/W, separator on.
    pub tops_mult_sep: f64,
    /// 8-bit MULT TOPS/W, separator off.
    pub tops_mult_nosep: f64,
}

/// The complete Fig. 8 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// The component breakdown at the 0.9 V reference.
    pub breakdown: ComponentDelays,
    /// Per-phase `(name, seconds, fraction)`.
    pub fractions: Vec<(CyclePhase, f64, f64)>,
    /// The voltage sweep, 0.6-1.1 V.
    pub sweep: Vec<Fig8Point>,
}

/// Runs the experiment.
pub fn run() -> Fig8Result {
    let breakdown = ComponentDelays::paper_reference();
    let fractions = breakdown
        .fractions()
        .iter()
        .map(|&(p, frac)| (p, breakdown.phase(p), frac))
        .collect();
    let freq = FrequencyModel;
    let tops = TopsModel::paper_calibrated();
    let sweep = FrequencyModel::paper_voltages()
        .into_iter()
        .map(|vdd| Fig8Point {
            vdd,
            fmax_hz: freq.fmax(&Env::nominal().with_vdd(vdd)),
            tops_add: tops.tops_per_watt(Table2Op::Add, Precision::P8, true, vdd),
            tops_mult_sep: tops.tops_per_watt(Table2Op::Mult, Precision::P8, true, vdd),
            tops_mult_nosep: tops.tops_per_watt(Table2Op::Mult, Precision::P8, false, vdd),
        })
        .collect();
    Fig8Result {
        breakdown,
        fractions,
        sweep,
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8 (left) — one-cycle delay breakdown @ 0.9 V NN")?;
        let mut t = TextTable::new(["phase", "delay", "share"]);
        for (p, d, frac) in &self.fractions {
            t.row([format!("{p:?}"), ps(*d), format!("{:.1} %", frac * 100.0)]);
        }
        t.row([
            "TOTAL".to_string(),
            ps(self.breakdown.total()),
            String::new(),
        ]);
        t.row([
            "cycle (pch hidden)".to_string(),
            ps(self.breakdown.cycle_time()),
            String::new(),
        ]);
        write!(f, "{}", t.render())?;

        writeln!(
            f,
            "\nFig. 8 (right) — Fmax and TOPS/W vs supply (8-bit ops)"
        )?;
        let mut t = TextTable::new([
            "VDD",
            "Fmax",
            "ADD TOPS/W",
            "MULT TOPS/W (w/ sep)",
            "MULT TOPS/W (w/o sep)",
        ]);
        for p in &self.sweep {
            t.row([
                format!("{:.1} V", p.vdd),
                ghz(p.fmax_hz),
                format!("{:.2}", p.tops_add),
                format!("{:.3}", p.tops_mult_sep),
                format!("{:.3}", p.tops_mult_nosep),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_and_sweep_match_paper_anchors() {
        let r = run();
        assert!((r.breakdown.total() - 603e-12).abs() < 1e-15);
        // 1.0 V point: 2.25 GHz.
        let p10 = r.sweep.iter().find(|p| (p.vdd - 1.0).abs() < 1e-9).unwrap();
        assert!((p10.fmax_hz - 2.25e9).abs() / 2.25e9 < 0.02);
        // 0.6 V point: 372 MHz, ADD ~8.09, MULT ~0.68 TOPS/W.
        let p06 = r.sweep.iter().find(|p| (p.vdd - 0.6).abs() < 1e-9).unwrap();
        assert!((p06.fmax_hz - 372e6).abs() / 372e6 < 0.06);
        assert!(
            (p06.tops_add - 8.09).abs() / 8.09 < 0.15,
            "{}",
            p06.tops_add
        );
        assert!(
            (p06.tops_mult_sep - 0.68).abs() / 0.68 < 0.15,
            "{}",
            p06.tops_mult_sep
        );
    }

    #[test]
    fn separator_always_helps_mult_efficiency() {
        let r = run();
        assert!(r.sweep.iter().all(|p| p.tops_mult_sep > p.tops_mult_nosep));
    }

    #[test]
    fn display_renders() {
        assert!(format!("{}", run()).contains("Fmax"));
    }
}
