//! Fig. 2 — Monte-Carlo distribution of the BL computation delay.
//!
//! WLUD (0.55 V word-line) versus the proposed short WL (140 ps) + BL
//! boosting, at 28 nm, 0.9 V, 25 C, NN, with the two schemes operating at
//! (approximately) iso read-disturb failure rate (the paper's 2.5e-5).

use crate::textfmt::ns;
use bpimc_cell::blbench::{BlComputeBench, WlScheme};
use bpimc_cell::disturb::DisturbStudy;
use bpimc_device::{Env, MismatchModel};
use bpimc_stats::{Histogram, Summary, TailFit};
use std::fmt;

/// The result of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// WLUD delay samples (seconds).
    pub wlud_delays: Vec<f64>,
    /// Proposed-scheme delay samples (seconds).
    pub prop_delays: Vec<f64>,
    /// Extrapolated WLUD disturb failure probability.
    pub wlud_failure: f64,
    /// Extrapolated proposed-scheme disturb failure probability.
    pub prop_failure: f64,
    /// WLUD disturb-margin z-score (mean/sigma; the iso point 2.5e-5 is
    /// z = 4.06). Finite even when the probability underflows.
    pub wlud_z: f64,
    /// Proposed-scheme disturb-margin z-score.
    pub prop_z: f64,
    /// Sample count per scheme.
    pub samples: usize,
}

impl Fig2Result {
    /// Delay summary of the WLUD scheme.
    pub fn wlud_summary(&self) -> Summary {
        Summary::from_slice(&self.wlud_delays)
    }

    /// Delay summary of the proposed scheme.
    pub fn prop_summary(&self) -> Summary {
        Summary::from_slice(&self.prop_delays)
    }

    /// The paper's qualitative claim: the WLUD distribution has the long
    /// tail. Compares the relative tail extents ((p99 - median) / median).
    pub fn wlud_tail_is_longer(&self) -> bool {
        let w = self.wlud_summary();
        let p = self.prop_summary();
        (w.p99 - w.p50) / w.p50 > (p.p99 - p.p50) / p.p50
    }

    /// A histogram over the paper's 0.5-3.5 ns axis.
    pub fn histogram(&self, scheme_prop: bool) -> Histogram {
        let mut h = Histogram::new(0.0e-9, 3.5e-9, 70);
        h.extend(
            (if scheme_prop {
                &self.prop_delays
            } else {
                &self.wlud_delays
            })
            .iter()
            .copied(),
        );
        h
    }
}

/// Runs the experiment with `n` Monte-Carlo samples per scheme.
pub fn run(n: usize, seed: u64) -> Fig2Result {
    let env = Env::nominal();
    let mm = MismatchModel::nominal();
    let wlud = DisturbStudy::new(
        BlComputeBench::new(128, env, WlScheme::Wlud { v_wl: 0.55 }),
        mm,
    );
    let prop = DisturbStudy::new(
        BlComputeBench::new(128, env, WlScheme::short_boost_140ps()),
        mm,
    );
    let wlud_delays = wlud.delays(n, seed);
    let prop_delays = prop.delays(n, seed ^ 0x5555);
    // Failure rates are extrapolated from margin fits on a smaller sample
    // (each margin run is a full transient too).
    let n_fit = (n / 2).clamp(16, 600);
    let wlud_fit: TailFit = wlud.failure_fit(n_fit, seed ^ 0xABCD);
    let prop_fit: TailFit = prop.failure_fit(n_fit, seed ^ 0xDCBA);
    Fig2Result {
        wlud_delays,
        prop_delays,
        wlud_failure: wlud_fit.failure_probability(),
        prop_failure: prop_fit.failure_probability(),
        wlud_z: wlud_fit.z_margin(),
        prop_z: prop_fit.z_margin(),
        samples: n,
    }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.wlud_summary();
        let p = self.prop_summary();
        writeln!(
            f,
            "Fig. 2 — BL computing delay distribution ({} MC samples, 0.9 V NN)",
            self.samples
        )?;
        writeln!(
            f,
            "  WLUD (0.55 V WL):        mean {} | p50 {} | p99 {} | max {}",
            ns(w.mean),
            ns(w.p50),
            ns(w.p99),
            ns(w.max)
        )?;
        writeln!(
            f,
            "  Short WL (140 ps)+Boost: mean {} | p50 {} | p99 {} | max {}",
            ns(p.mean),
            ns(p.p50),
            ns(p.p99),
            ns(p.max)
        )?;
        writeln!(
            f,
            "  extrapolated disturb failure: WLUD {:.2e} (z {:.1}), proposed {:.2e} (z {:.1});",
            self.wlud_failure, self.wlud_z, self.prop_failure, self.prop_z
        )?;
        writeln!(
            f,
            "  (paper iso-point 2.5e-5 = z 4.06; both schemes sit at or beyond it here)"
        )?;
        writeln!(f, "  long tail on WLUD: {}", self.wlud_tail_is_longer())?;
        writeln!(f, "\n  proposed-scheme histogram (x = ns):")?;
        write!(f, "{}", self.histogram(true))?;
        writeln!(f, "\n  WLUD histogram (x = ns):")?;
        write!(f, "{}", self.histogram(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let r = run(40, 99);
        assert_eq!(r.wlud_delays.len(), 40);
        let w = r.wlud_summary();
        let p = r.prop_summary();
        // Proposed is much faster on average...
        assert!(p.mean < 0.6 * w.mean, "prop {} vs wlud {}", p.mean, w.mean);
        // ...and tighter in both absolute and relative spread.
        assert!(p.std < w.std);
        assert!(r.wlud_tail_is_longer());
        // Display renders without panicking.
        assert!(!format!("{r}").is_empty());
    }
}
