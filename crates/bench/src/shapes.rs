//! The canonical benchmark pipeline shapes.
//!
//! One deterministic multi-instruction [`Program`] per shape, plus its
//! host-computed expected outputs. The `load_gen` example drives them at
//! the server as `exec_program` / stored-program traffic, and
//! `repro lint --builtin` holds every shape to a zero-error, zero-warning
//! lint bar — the shapes are the reference corpus for "programs the
//! toolchain should never complain about".

use bpimc_core::prog::ProgramBuilder;
use bpimc_core::{LogicOp, Precision, Program};

/// Number of distinct pipeline shapes [`program_request`] cycles through.
pub const SHAPE_COUNT: u64 = 4;

/// Builds one deterministic multi-instruction pipeline plus its expected
/// outputs (host-computed), keyed by the request counter so every client
/// exercises dot, fused add+shl / sub, reduction and logic pipelines. Each
/// variant's *shape* (instruction kinds, vector lengths) is independent of
/// `k` — only the write values change — which is what makes the shapes
/// storable once and rebound per request in `load_gen --stored` mode.
pub fn program_request(k: u64, variant: u64) -> (Program, Vec<Vec<u64>>) {
    let mut b = ProgramBuilder::new();
    match variant {
        0 => {
            // Dot-style: two staging writes, one MULT, products out.
            let p = Precision::P8;
            let x: Vec<u64> = (0..8).map(|i| (k + i * 3) % 256).collect();
            let w: Vec<u64> = (0..8).map(|i| (k * 5 + i + 1) % 256).collect();
            let rx = b.write_mult(p, x.clone());
            let rw = b.write_mult(p, w.clone());
            let prod = b.mult(rx, rw, p);
            b.read_products(prod, p, 8);
            let expect = x.iter().zip(&w).map(|(a, c)| a * c).collect();
            (b.finish(), vec![expect])
        }
        1 => {
            // Fused add+shl (lowered to the hardware add_shift) plus SUB.
            let p = Precision::P8;
            let x: Vec<u64> = (0..16).map(|i| (k + i) % 256).collect();
            let y: Vec<u64> = (0..16).map(|i| (k * 3 + i) % 256).collect();
            let rx = b.write(p, x.clone());
            let ry = b.write(p, y.clone());
            let s = b.add(rx, ry, p);
            let d = b.shl(s, p);
            b.read(d, p, 16);
            let e = b.sub(rx, ry, p);
            b.read(e, p, 16);
            let doubled = x
                .iter()
                .zip(&y)
                .map(|(a, c)| ((a + c) << 1) & 0xFF)
                .collect();
            let diff = x
                .iter()
                .zip(&y)
                .map(|(a, c)| a.wrapping_sub(*c) & 0xFF)
                .collect();
            (b.finish(), vec![doubled, diff])
        }
        2 => {
            // In-memory reduction over four staged rows.
            let p = Precision::P8;
            let rows: Vec<Vec<u64>> = (0..4)
                .map(|j| (0..16).map(|i| (k * (j + 2) + i * 7) % 256).collect())
                .collect();
            let regs: Vec<_> = rows.iter().map(|r| b.write(p, r.clone())).collect();
            let total = b.reduce_add(&regs, p);
            b.read(total, p, 16);
            let expect = (0..16)
                .map(|i| rows.iter().map(|r| r[i]).sum::<u64>() & 0xFF)
                .collect();
            (b.finish(), vec![expect])
        }
        _ => {
            // 2-bit logic with an inversion chained on.
            let p = Precision::P2;
            let x: Vec<u64> = (0..32).map(|i| (k + i * 3) % 4).collect();
            let y: Vec<u64> = (0..32).map(|i| (k * 7 + i) % 4).collect();
            let rx = b.write(p, x.clone());
            let ry = b.write(p, y.clone());
            let xo = b.logic(LogicOp::Xor, rx, ry);
            let inv = b.not(xo);
            b.read(xo, p, 32);
            b.read(inv, p, 32);
            let xor: Vec<u64> = x.iter().zip(&y).map(|(a, c)| a ^ c).collect();
            let nxor = xor.iter().map(|v| !v & 3).collect();
            (b.finish(), vec![xor, nxor])
        }
    }
}
