//! Minimal fixed-width text table rendering for the experiment printouts.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(ncols) {
                let _ = write!(out, "| {:<width$} ", c, width = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push_str("|\n");
        out.push_str(&sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats seconds as picoseconds with one decimal.
pub fn ps(t: f64) -> String {
    format!("{:.1} ps", t * 1e12)
}

/// Formats seconds as nanoseconds with three decimals.
pub fn ns(t: f64) -> String {
    format!("{:.3} ns", t * 1e9)
}

/// Formats hertz as gigahertz.
pub fn ghz(f: f64) -> String {
    format!("{:.3} GHz", f / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header"]);
        t.row(["1", "2"]).row(["333333", "4"]);
        let s = t.render();
        assert!(s.contains("| a      | long-header |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn unit_formatters() {
        assert_eq!(ps(140e-12), "140.0 ps");
        assert_eq!(ns(1.5e-9), "1.500 ns");
        assert_eq!(ghz(2.25e9), "2.250 GHz");
    }
}
