//! Criterion benchmarks: one group per paper figure/table, plus simulator
//! micro-benchmarks.
//!
//! The figure/table benches wrap the same experiment runners the `repro`
//! CLI uses (with reduced Monte-Carlo sample counts where transient
//! simulation is involved), so `cargo bench` regenerates every evaluation
//! artefact and times it. The `macro_ops` group measures raw simulator
//! throughput of the core executor.

use bpimc_array::BitRow;
use bpimc_bench::experiments::{
    ablation, fig2, fig7a, fig7b, fig8, fig9, table1, table2, table3, vrange,
};
use bpimc_core::{ImcMacro, MacroBank, MacroConfig, Precision};
use bpimc_periph::CarryChain;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("fig2_bl_delay_distribution_mc64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fig2::run(64, seed))
        })
    });
    g.bench_function("fig7a_corner_delays", |b| {
        b.iter(|| black_box(fig7a::run()))
    });
    g.bench_function("fig7b_fa_critical_path", |b| {
        b.iter(|| black_box(fig7b::run()))
    });
    g.bench_function("fig8_breakdown_fmax_tops", |b| {
        b.iter(|| black_box(fig8::run()))
    });
    g.bench_function("fig9_cycles_vs_bl_size", |b| {
        b.iter(|| black_box(fig9::run()))
    });
    g.bench_function("supply_range_validation", |b| {
        b.iter(|| black_box(vrange::run()))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("table1_op_cycles", |b| b.iter(|| black_box(table1::run())));
    g.bench_function("table2_energy_calibration", |b| {
        b.iter(|| black_box(table2::run()))
    });
    g.bench_function("table3_comparison", |b| b.iter(|| black_box(table3::run())));
    g.bench_function("ablation_studies", |b| {
        b.iter(|| black_box(ablation::run()))
    });
    g.finish();
}

fn bench_macro_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("macro_ops");
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    mac.write_words(0, p, &[123; 16]).expect("fits");
    mac.write_words(1, p, &[45; 16]).expect("fits");
    mac.write_mult_operands(4, p, &[123; 8]).expect("fits");
    mac.write_mult_operands(5, p, &[45; 8]).expect("fits");
    for r in 8..16 {
        mac.write_words(r, p, &[(r as u64 * 31) % 256; 16])
            .expect("fits");
    }

    g.bench_function("add_row_128col_8b", |b| {
        b.iter(|| black_box(mac.add(0, 1, 2, p).expect("add")))
    });
    g.bench_function("sub_row_128col_8b", |b| {
        b.iter(|| black_box(mac.sub(0, 1, 3, p).expect("sub")))
    });
    g.bench_function("mult_row_128col_8b", |b| {
        b.iter(|| black_box(mac.mult(4, 5, 6, p).expect("mult")))
    });
    let reduce_rows: Vec<usize> = (8..16).collect();
    g.bench_function("reduce_add_8rows_8b", |b| {
        b.iter(|| black_box(mac.reduce_add(&reduce_rows, 6, p).expect("reduce")))
    });
    // An imc_dot-shaped workload: 64 features in 8 product-lane chunks.
    let x: Vec<u64> = (0..64u64).map(|i| (i * 37) % 256).collect();
    let w: Vec<u64> = (0..64u64).map(|i| (i * 53) % 256).collect();
    g.bench_function("imc_dot_64feat_8b", |b| {
        b.iter(|| {
            let lanes = p.product_lanes(mac.cols());
            let mut acc = 0u64;
            for (xc, wc) in x.chunks(lanes).zip(w.chunks(lanes)) {
                mac.write_mult_operands(0, p, xc).expect("fits");
                mac.write_mult_operands(1, p, wc).expect("fits");
                mac.mult(0, 1, 2, p).expect("mult");
                acc += mac
                    .read_products(2, p, xc.len())
                    .expect("read")
                    .iter()
                    .sum::<u64>();
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The typed program executor vs the same pipeline as raw method calls:
/// measures the overhead of validation, lowering and per-instruction span
/// accounting on an imc_dot-shaped workload.
fn bench_program_pipeline(c: &mut Criterion) {
    use bpimc_nn::dot_program;

    let mut g = c.benchmark_group("program_pipeline");
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    let x: Vec<u64> = (0..64u64).map(|i| (i * 37) % 256).collect();
    let w: Vec<u64> = (0..64u64).map(|i| (i * 53) % 256).collect();

    let prog = dot_program(p, &x, &w, mac.cols());
    g.bench_function("program_dot_64feat_8b", |b| {
        b.iter(|| {
            black_box(prog.run(&mut mac).expect("program runs"));
            mac.clear_activity();
        })
    });
    let compiled = prog.compile(mac.config()).expect("pipeline validates");
    g.bench_function("compiled_dot_64feat_8b", |b| {
        b.iter(|| {
            black_box(compiled.run(&mut mac).expect("compiled runs"));
            mac.clear_activity();
        })
    });
    g.bench_function("program_build_and_dot_64feat_8b", |b| {
        b.iter(|| {
            let prog = dot_program(p, &x, &w, mac.cols());
            black_box(prog.run(&mut mac).expect("program runs"));
            mac.clear_activity();
        })
    });
    g.bench_function("raw_calls_dot_64feat_8b", |b| {
        b.iter(|| {
            let lanes = p.product_lanes(mac.cols());
            let mut acc = 0u64;
            for (xc, wc) in x.chunks(lanes).zip(w.chunks(lanes)) {
                mac.write_mult_operands(0, p, xc).expect("fits");
                mac.write_mult_operands(1, p, wc).expect("fits");
                mac.mult(0, 1, 2, p).expect("mult");
                acc += mac
                    .read_products(2, p, xc.len())
                    .expect("read")
                    .iter()
                    .sum::<u64>();
            }
            mac.clear_activity();
            black_box(acc)
        })
    });
    g.finish();
}

/// The structure-of-arrays batch transient engine vs the scalar
/// one-instance-at-a-time solver on the fig2 Monte-Carlo workload (the
/// disturb study's sampled dual-WL bench). Both arms are single-threaded
/// — the batched arm is one cohort, the scalar arm an explicit sequential
/// loop over the same `(seed, i)` draws — so the ratio is the
/// SoA/vectorization win alone, not pool parallelism.
fn bench_transient_batch(c: &mut Criterion) {
    use bpimc_cell::blbench::{BlComputeBench, WlScheme};
    use bpimc_cell::disturb::DisturbStudy;
    use bpimc_circuit::mc::sample_rng;
    use bpimc_circuit::SimOptions;
    use bpimc_device::{Env, MismatchModel};

    let mut g = c.benchmark_group("transient_batch");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let bench = BlComputeBench::new(128, Env::nominal(), WlScheme::short_boost_140ps());
    let study = DisturbStudy::new(bench.clone(), MismatchModel::nominal());
    // One cohort's worth of samples (BATCH_COHORT = 16).
    g.bench_function("fig2_delays_batched_16", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(study.delays(16, seed))
        })
    });
    // The same 16 samples (identical `sampled_circuit` draws) solved one
    // at a time on the calling thread by the scalar solver.
    g.bench_function("fig2_delays_scalar_16", |b| {
        let mut seed = 0u64;
        let window = bench.window();
        let nodes = study.bench_nodes();
        let opts = SimOptions::for_window(window);
        b.iter(|| {
            seed += 1;
            let delays: Vec<f64> = (0..16u64)
                .map(|i| {
                    let mut rng = sample_rng(seed, i);
                    let trace = study.sampled_circuit(&mut rng).run(&opts);
                    let out = bench.measure(&trace, &nodes, false, true);
                    out.delay_s.unwrap_or(window)
                })
                .collect();
            black_box(delays)
        })
    });
    g.finish();
}

/// Limb-parallel engine vs the per-column structural reference, and the
/// batched bank executor vs sequential execution of the same jobs.
fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let chain = CarryChain::new(128, Precision::P8);
    let a = BitRow::from_limbs(128, vec![0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210]);
    let b = BitRow::from_limbs(128, vec![0x5555_AAAA_5555_AAAA, 0x0F0F_F0F0_0F0F_F0F0]);
    let readout = bpimc_array::DualReadout {
        and: &a & &b,
        nor: BitRow::nor_of(&a, &b),
    };
    g.bench_function("chain_add_limb_parallel", |bch| {
        bch.iter(|| black_box(chain.add(&readout, false)))
    });
    g.bench_function("chain_add_bitwise_reference", |bch| {
        bch.iter(|| black_box(chain.add_bitwise(&readout, false)))
    });

    // Small batches measure dispatch overhead; the 2048-job batch is the
    // executor's intended regime (enough work to amortize a worker wake).
    let small: Vec<(u64, u64)> = (0..64).map(|i| (i % 256, (i * 7) % 256)).collect();
    let big: Vec<(u64, u64)> = (0..2048).map(|i| (i % 256, (i * 7) % 256)).collect();
    let run = |mac: &mut ImcMacro, job: &(u64, u64)| {
        mac.write_mult_operands(0, Precision::P8, &[job.0])
            .expect("fits");
        mac.write_mult_operands(1, Precision::P8, &[job.1])
            .expect("fits");
        mac.mult(0, 1, 2, Precision::P8).expect("mult");
        mac.read_products(2, Precision::P8, 1).expect("read")[0]
    };
    let mut bank = MacroBank::with_host_parallelism(MacroConfig::paper_macro());
    let mut single = ImcMacro::new(MacroConfig::paper_macro());
    g.bench_function("bank_batch_64_mults", |bch| {
        bch.iter(|| black_box(bank.run_batch(&small, run)))
    });
    g.bench_function("sequential_64_mults", |bch| {
        bch.iter(|| black_box(small.iter().map(|j| run(&mut single, j)).sum::<u64>()))
    });
    g.bench_function("bank_batch_2048_mults", |bch| {
        bch.iter(|| black_box(bank.run_batch(&big, run)))
    });
    g.bench_function("sequential_2048_mults", |bch| {
        bch.iter(|| black_box(big.iter().map(|j| run(&mut single, j)).sum::<u64>()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figures,
    bench_tables,
    bench_macro_ops,
    bench_program_pipeline,
    bench_transient_batch,
    bench_engine
);
criterion_main!(benches);
