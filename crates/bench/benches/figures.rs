//! Criterion benchmarks: one group per paper figure/table, plus simulator
//! micro-benchmarks.
//!
//! The figure/table benches wrap the same experiment runners the `repro`
//! CLI uses (with reduced Monte-Carlo sample counts where transient
//! simulation is involved), so `cargo bench` regenerates every evaluation
//! artefact and times it. The `macro_ops` group measures raw simulator
//! throughput of the core executor.

use bpimc_bench::experiments::{ablation, fig2, fig7a, fig7b, fig8, fig9, table1, table2, table3, vrange};
use bpimc_core::{ImcMacro, MacroConfig, Precision};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("fig2_bl_delay_distribution_mc64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(fig2::run(64, seed))
        })
    });
    g.bench_function("fig7a_corner_delays", |b| b.iter(|| black_box(fig7a::run())));
    g.bench_function("fig7b_fa_critical_path", |b| b.iter(|| black_box(fig7b::run())));
    g.bench_function("fig8_breakdown_fmax_tops", |b| b.iter(|| black_box(fig8::run())));
    g.bench_function("fig9_cycles_vs_bl_size", |b| b.iter(|| black_box(fig9::run())));
    g.bench_function("supply_range_validation", |b| b.iter(|| black_box(vrange::run())));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("table1_op_cycles", |b| b.iter(|| black_box(table1::run())));
    g.bench_function("table2_energy_calibration", |b| b.iter(|| black_box(table2::run())));
    g.bench_function("table3_comparison", |b| b.iter(|| black_box(table3::run())));
    g.bench_function("ablation_studies", |b| b.iter(|| black_box(ablation::run())));
    g.finish();
}

fn bench_macro_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("macro_ops");
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    mac.write_words(0, p, &[123; 16]).expect("fits");
    mac.write_words(1, p, &[45; 16]).expect("fits");
    mac.write_mult_operands(4, p, &[123; 8]).expect("fits");
    mac.write_mult_operands(5, p, &[45; 8]).expect("fits");

    g.bench_function("add_row_128col_8b", |b| {
        b.iter(|| black_box(mac.add(0, 1, 2, p).expect("add")))
    });
    g.bench_function("sub_row_128col_8b", |b| {
        b.iter(|| black_box(mac.sub(0, 1, 3, p).expect("sub")))
    });
    g.bench_function("mult_row_128col_8b", |b| {
        b.iter(|| black_box(mac.mult(4, 5, 6, p).expect("mult")))
    });
    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_macro_ops);
criterion_main!(benches);
