//! # bpimc — Bit-Parallel 6T SRAM In-Memory Computing
//!
//! A Rust reproduction of *"Bit Parallel 6T SRAM In-memory Computing with
//! Reconfigurable Bit-Precision"* (Lee et al., DAC 2020).
//!
//! This facade crate re-exports every subsystem of the workspace so an
//! application can depend on `bpimc` alone:
//!
//! * [`core`] — the in-memory-computing macro itself (the paper's
//!   contribution): 6T array + dummy rows + column peripherals executing
//!   logic/ADD/SUB/ADD-shift/MULT bit-parallel with reconfigurable 2/4/8/16/32
//!   bit precision.
//! * [`mod@array`] / [`mod@periph`] — the functional SRAM array and the Y-path column
//!   peripheral models the macro is assembled from.
//! * [`device`] / [`circuit`] / [`cell`] — the 28 nm behavioral transistor
//!   model, transient solver and electrical cell/bit-line test-benches used
//!   for the circuit-level experiments (short-WL + BL boosting vs WLUD,
//!   read-disturb analysis).
//! * [`metrics`] — timing / energy / area / TOPS-per-watt models.
//! * [`baseline`] — the conventional bit-serial IMC used for comparison.
//! * [`nn`] — a quantized neural-network workload running on the macro.
//! * [`server`] — the multi-client TCP compute service multiplexing
//!   concurrent sessions onto a shared `MacroBank`, with opt-in
//!   crash-safe durable state (write-ahead journal + snapshots +
//!   restart recovery; see `bpimc::server::StateConfig`).
//! * [`mod@bench`] — the experiment runners that regenerate every figure and
//!   table of the paper's evaluation section.
//!
//! # Quickstart
//!
//! ```
//! use bpimc::core::{ImcMacro, MacroConfig, Precision};
//!
//! # fn main() -> Result<(), bpimc::core::Error> {
//! let mut mac = ImcMacro::new(MacroConfig::paper_macro());
//! // Store two vectors of 8-bit words in rows 0 and 1.
//! mac.write_words(0, Precision::P8, &[10, 20, 30])?;
//! mac.write_words(1, Precision::P8, &[5, 9, 200])?;
//! // One-cycle bit-parallel addition into row 2.
//! mac.add(0, 1, 2, Precision::P8)?;
//! assert_eq!(mac.read_words(2, Precision::P8, 3)?, vec![15, 29, 230 & 0xff]);
//! # Ok(())
//! # }
//! ```
//!
//! Multi-step pipelines are better expressed as a typed
//! [`Program`](core::prog::Program) — validated upfront, costed before
//! execution, and submittable to the server in one `exec_program` round
//! trip:
//!
//! ```
//! use bpimc::core::prog::ProgramBuilder;
//! use bpimc::core::{ImcMacro, MacroConfig, Precision};
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.write(Precision::P8, vec![10, 20, 30]);
//! let y = b.write(Precision::P8, vec![1, 2, 3]);
//! let sum = b.add(x, y, Precision::P8);
//! let doubled = b.shl(sum, Precision::P8); // lowered into one add_shift
//! b.read(doubled, Precision::P8, 3);
//! let prog = b.finish();
//! assert_eq!(prog.cycles(), 4); // known before execution
//!
//! let mut mac = ImcMacro::new(MacroConfig::paper_macro());
//! let run = prog.run(&mut mac).unwrap();
//! assert_eq!(run.outputs[0], vec![22, 44, 66]);
//! ```

pub use bpimc_array as array;
pub use bpimc_baseline as baseline;
pub use bpimc_bench as bench;
pub use bpimc_cell as cell;
pub use bpimc_circuit as circuit;
pub use bpimc_core as core;
pub use bpimc_device as device;
pub use bpimc_metrics as metrics;
pub use bpimc_nn as nn;
pub use bpimc_periph as periph;
pub use bpimc_server as server;
pub use bpimc_stats as stats;
