//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of criterion's API the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `iter`, and the `criterion_group!`
//! / `criterion_main!` macros — backed by a simple adaptive wall-clock
//! timer. No statistical analysis, plots or baselines: each bench prints
//! `name  time/iter (samples, iters/sample)` to stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// Substring filter from the command line (`cargo bench -- <filter>`),
    /// matched against `group/name`, like the real crate.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            filter,
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let group = name.to_string();
        BenchmarkGroup {
            filter: self.filter.clone(),
            group,
            announced: false,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a stand-alone benchmark (outside any group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self
            .filter
            .as_ref()
            .is_none_or(|flt| name.contains(flt.as_str()))
        {
            run_bench(name, self.sample_size, self.measurement_time, &mut f);
        }
        self
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    filter: Option<String>,
    group: String,
    announced: bool,
    sample_size: usize,
    measurement_time: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Times `f` and prints the result (skipped when a CLI filter does not
    /// match `group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.group);
        if self
            .filter
            .as_ref()
            .is_none_or(|flt| full.contains(flt.as_str()))
        {
            if !self.announced {
                println!("group: {}", self.group);
                self.announced = true;
            }
            run_bench(name, self.sample_size, self.measurement_time, &mut f);
        }
        self
    }

    /// Ends the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the elapsed time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, f: &mut F) {
    // Calibrate: how many iterations fit in ~5 ms?
    let mut iters_per_sample = 1u64;
    loop {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::from_millis(5) || iters_per_sample >= 1 << 20 {
            break;
        }
        iters_per_sample *= 2;
    }
    // Scale so `samples` samples roughly fill the measurement budget, then
    // collect them.
    let per_sample_budget = budget.as_secs_f64() / samples as f64;
    let mut b = Bencher {
        iters: iters_per_sample,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let t_iter = (b.elapsed.as_secs_f64() / iters_per_sample as f64).max(1e-12);
    let iters = ((per_sample_budget / t_iter) as u64).clamp(1, 1 << 24);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let (min, max) = (times[0], times[times.len() - 1]);
    println!(
        "  {name:<40} {:>12}/iter  [min {}, max {}]  ({samples} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into one runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(30));
        let mut count = 0u64;
        g.bench_function("incr", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
