//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! slice of proptest's API the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with ranges / [`any`] / tuples /
//! [`collection::vec`](prop::collection::vec) / [`Just`] / [`prop_oneof!`] /
//! `prop_map`, the `prop_assert*` macros, [`prop_assume!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: failing inputs are *not* shrunk (the
//! failing case is reported verbatim), and generation is driven by the
//! deterministic vendored `rand` stub with a per-test seed, so failures are
//! reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG for `(test name, case index)`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed; the message describes the violation.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` in the real crate's prelude).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite quick while
        // still exercising wide input variety (seeds differ per test).
        Self { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous collections like `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The alternatives; must be non-empty.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let i = rng.rng().random_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Full-range generation for a primitive type, via [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full value range of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().random::<u64>() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_any_int {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                (rng.rng().random::<u64>() as $u) as $t
            }
        }
    )*};
}

impl_any_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for Any<u128> {
    type Value = u128;
    fn new_value(&self, rng: &mut TestRng) -> u128 {
        let hi = rng.rng().random::<u64>() as u128;
        let lo = rng.rng().random::<u64>() as u128;
        hi << 64 | lo
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.rng().random()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Finite, wide-dynamic-range doubles (the real crate generates NaN
        // and infinities too; the tests here expect finite inputs).
        let mag = rng.rng().random_range(-300.0f64..300.0);
        let sign = if rng.rng().random() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection sizes: a fixed count or a range of counts.
pub trait SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

/// Strategy modules, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// `Vec` strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// A `Vec` of values from `element`, sized by `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `vec(element, size)` — the proptest collection combinator.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

/// The proptest harness macro: generates `#[test]` functions that run their
/// body over many strategy-generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected = 0u32;
            let mut case = 0u32;
            let mut ran = 0u32;
            // Cap total attempts so a rejecting prop_assume! cannot loop
            // forever (mirrors the real crate's max_global_rejects).
            while ran < config.cases && case < config.cases.saturating_mul(16).max(1024) {
                let mut rng = $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                case += 1;
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome = (|| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed: {}\ninputs: {}",
                            case - 1,
                            msg,
                            concat!($(stringify!($arg), " "),+),
                        );
                    }
                }
            }
            let _ = rejected;
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0.5f64..1.0, v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.0).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        /// Tuples, Just, oneof and assume all compose.
        #[test]
        fn combinators_work(
            pair in (0u32..4, 1u32..5),
            label in prop_oneof![Just("a"), Just("b")],
            n in any::<u16>(),
        ) {
            prop_assume!(n != 0);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert!(label == "a" || label == "b");
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = 0u64..1000;
        let a: Vec<u64> = (0..5)
            .map(|i| Strategy::new_value(&s, &mut crate::TestRng::for_case("t", i)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|i| Strategy::new_value(&s, &mut crate::TestRng::for_case("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
