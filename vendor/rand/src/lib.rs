//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `random` /
//! `random_range`. The generator is xoshiro256++ seeded through splitmix64 —
//! a high-quality, deterministic PRNG (not the CSPRNG the real `StdRng`
//! provides, which none of the Monte-Carlo code here needs).

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a "standard" value: `f64`/`f32` in `[0, 1)`,
/// integers over their full range, `bool` fair.
pub trait StandardValue {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (the 0.9 rename of `gen`).
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self.as_core())
    }

    /// A uniform sample from `range` (the 0.9 rename of `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.as_core())
    }

    /// A fair coin flip.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    #[doc(hidden)]
    fn as_core(&mut self) -> &mut dyn RngCore;
}

impl<R: RngCore> Rng for R {
    fn as_core(&mut self) -> &mut dyn RngCore {
        self
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl StandardValue for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardValue for u16 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardValue for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardValue for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardValue for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased sampling of `[0, n)` by rejection (Lemire-style threshold).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = rng.random_range(0u64..=5);
            assert!(m <= 5);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
