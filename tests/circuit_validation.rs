//! Circuit-level integration tests: the transient substrate produces the
//! paper's qualitative electrical behaviour end to end.

use bpimc::bench::experiments::{fig2, fig7a};
use bpimc::cell::blbench::{BlComputeBench, WlScheme};
use bpimc::cell::disturb::DisturbStudy;
use bpimc::device::{Corner, Env, MismatchModel};

/// Fig. 7(a): the proposed scheme beats WLUD at every corner, and by the
/// largest margin where WLUD hurts most.
#[test]
fn corner_sweep_shape() {
    let r = fig7a::run();
    for row in &r.rows {
        assert!(
            row.ratio() < 0.6,
            "{}: ratio {:.2}",
            row.corner,
            row.ratio()
        );
    }
    let worst = r.worst_case_ratio();
    assert!((0.1..0.45).contains(&worst), "worst-case ratio {worst:.2}");
}

/// Fig. 2 (small-sample smoke): proposed delays are faster AND tighter;
/// WLUD owns the long tail.
#[test]
fn delay_distribution_shape() {
    let r = fig2::run(48, 7);
    let w = r.wlud_summary();
    let p = r.prop_summary();
    assert!(p.mean < 0.6 * w.mean);
    assert!(p.std < w.std);
    assert!(r.wlud_tail_is_longer());
    // The WLUD distribution sits in the paper's 0.5-3.5 ns axis range.
    assert!(
        w.p50 > 0.5e-9 && w.p99 < 3.5e-9,
        "p50 {} p99 {}",
        w.p50,
        w.p99
    );
}

/// Iso-failure direction: full static WL is orders of magnitude worse than
/// either fix; the two fixes are comparable (that is the paper's iso-rate
/// premise).
#[test]
fn disturb_failure_ordering() {
    let env = Env::nominal();
    let mm = MismatchModel::nominal();
    let fit =
        |scheme| DisturbStudy::new(BlComputeBench::new(128, env, scheme), mm).failure_fit(48, 5);
    let full = fit(WlScheme::FullStatic);
    let wlud = fit(WlScheme::Wlud { v_wl: 0.55 });
    let prop = fit(WlScheme::short_boost_140ps());
    // Compare z-scores (margin mean / sigma): probabilities underflow in
    // the deeply safe regimes. Lower z = closer to failure.
    assert!(
        full.z_margin() < wlud.z_margin() && full.z_margin() < prop.z_margin(),
        "full-WL must be the most disturb-prone: full z {:.1}, wlud z {:.1}, prop z {:.1}",
        full.z_margin(),
        wlud.z_margin(),
        prop.z_margin()
    );
    // Both fixes sit at or beyond the paper's iso-failure point (2.5e-5,
    // z = 4.06) — i.e. at least as safe as the paper requires.
    let z_iso = 4.06;
    assert!(wlud.z_margin() > z_iso, "wlud z {:.2}", wlud.z_margin());
    assert!(prop.z_margin() > z_iso, "prop z {:.2}", prop.z_margin());
}

/// The corner that slows the booster (SS) still leaves the proposed scheme
/// clearly ahead — the paper's robustness argument.
#[test]
fn proposed_scheme_robust_at_slow_corner() {
    let env = Env::nominal().with_corner(Corner::Ss);
    let wlud = BlComputeBench::new(128, env, WlScheme::Wlud { v_wl: 0.55 })
        .nominal_delay(false, true)
        .unwrap();
    let prop = BlComputeBench::new(128, env, WlScheme::short_boost_140ps())
        .nominal_delay(false, true)
        .unwrap();
    assert!(prop < 0.5 * wlud, "SS: prop {prop:.3e} vs wlud {wlud:.3e}");
}
