//! Cross-crate integration tests: the proposed macro, the bit-serial
//! baseline and the experiment harness working together.

use bpimc::baseline::BitSerialImc;
use bpimc::core::{bank::Chip, config::ChipConfig, ImcMacro, LogicOp, MacroConfig, Precision};
use proptest::prelude::*;
use rand::Rng;

/// A random program of logic/arith ops produces identical results on the
/// bit-parallel macro and on plain host arithmetic.
#[test]
fn random_program_matches_host_reference() {
    let mut rng = bpimc::stats::seeded_rng(77);
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    // Host mirror of rows 0..8 (16 words each).
    let mut host: Vec<Vec<u64>> = (0..8)
        .map(|_| (0..16).map(|_| rng.random::<u64>() & 0xFF).collect())
        .collect();
    for (r, words) in host.iter().enumerate() {
        mac.write_words(r, p, words).unwrap();
    }
    for step in 0..200 {
        let a = rng.random_range(0..8usize);
        let mut b = rng.random_range(0..8usize);
        if b == a {
            b = (b + 1) % 8;
        }
        let d = rng.random_range(0..8usize);
        match step % 5 {
            0 => {
                mac.add(a, b, d, p).unwrap();
                host[d] = (0..16).map(|i| (host[a][i] + host[b][i]) & 0xFF).collect();
            }
            1 => {
                mac.sub(a, b, d, p).unwrap();
                host[d] = (0..16)
                    .map(|i| host[a][i].wrapping_sub(host[b][i]) & 0xFF)
                    .collect();
            }
            2 => {
                mac.logic(LogicOp::Xor, a, b, d).unwrap();
                host[d] = (0..16).map(|i| host[a][i] ^ host[b][i]).collect();
            }
            3 => {
                mac.shl(a, d, p).unwrap();
                host[d] = (0..16).map(|i| (host[a][i] << 1) & 0xFF).collect();
            }
            _ => {
                mac.add_shift(a, b, d, p).unwrap();
                host[d] = (0..16)
                    .map(|i| ((host[a][i] + host[b][i]) << 1) & 0xFF)
                    .collect();
            }
        }
        let got = mac.read_words(d, p, 16).unwrap();
        assert_eq!(got, host[d], "diverged at step {step}");
    }
}

/// The two architectures agree on add/sub/mult across precisions.
#[test]
fn architectures_agree_across_precisions() {
    for p in [Precision::P2, Precision::P4, Precision::P8] {
        let bits = p.bits();
        let n_words = 4usize;
        let a: Vec<u64> = (0..n_words as u64)
            .map(|i| (i * 3 + 1) & p.mask())
            .collect();
        let b: Vec<u64> = (0..n_words as u64)
            .map(|i| (i * 5 + 2) & p.mask())
            .collect();

        let mut mac = ImcMacro::new(MacroConfig::paper_macro());
        mac.write_mult_operands(0, p, &a).unwrap();
        mac.write_mult_operands(1, p, &b).unwrap();
        mac.mult(0, 1, 2, p).unwrap();
        let prop = mac.read_products(2, p, n_words).unwrap();

        let mut ser = BitSerialImc::new(8 * bits, n_words);
        ser.write_words(0, bits, &a).unwrap();
        ser.write_words(bits, bits, &b).unwrap();
        ser.mult(0, bits, 2 * bits, bits).unwrap();
        let conv = ser.read_words(2 * bits, 2 * bits, n_words).unwrap();

        assert_eq!(prop, conv, "disagreement at {p}");
    }
}

/// Chip-level broadcast keeps all macros in lock-step and the word
/// throughput scales with the macro count.
#[test]
fn chip_scales_word_throughput() {
    let mut chip = Chip::new(ChipConfig::paper_chip());
    assert_eq!(chip.macro_count(), 64);
    assert_eq!(chip.config().capacity_bytes(), 128 * 1024);
    for i in 0..chip.macro_count() {
        chip.macro_at(i)
            .write_words(0, Precision::P8, &[i as u64 & 0xFF])
            .unwrap();
        chip.macro_at(i)
            .write_words(1, Precision::P8, &[1])
            .unwrap();
    }
    let cycles = chip.add_all(0, 1, 2, Precision::P8).unwrap();
    assert_eq!(cycles, 1, "chip-wide ADD is still one cycle");
    assert_eq!(chip.words_per_op(Precision::P8), 1024);
    for i in 0..chip.macro_count() {
        assert_eq!(
            chip.macro_at(i).read_words(2, Precision::P8, 1).unwrap()[0],
            (i as u64 & 0xFF) + 1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Distributivity on the macro: a*(b+c) == a*b + a*c (mod 2^16 lanes),
    /// computed entirely in-memory.
    #[test]
    fn in_memory_distributivity(a in 0u64..256, b in 0u64..256, c in 0u64..256) {
        let p = Precision::P8;
        let mut mac = ImcMacro::new(MacroConfig::paper_macro());
        // b + c (8-bit wrap) then a * (b+c).
        mac.write_words(0, p, &[b]).unwrap();
        mac.write_words(1, p, &[c]).unwrap();
        mac.add(0, 1, 2, p).unwrap();
        let bc = mac.read_words(2, p, 1).unwrap()[0];
        mac.write_mult_operands(3, p, &[a]).unwrap();
        mac.write_mult_operands(4, p, &[bc]).unwrap();
        mac.mult(3, 4, 5, p).unwrap();
        let lhs = mac.read_products(5, p, 1).unwrap()[0];

        // a*b and a*c then add at 16-bit.
        mac.write_mult_operands(6, p, &[b]).unwrap();
        mac.mult(3, 6, 7, p).unwrap();
        let ab = mac.read_products(7, p, 1).unwrap()[0];
        mac.write_mult_operands(8, p, &[c]).unwrap();
        mac.mult(3, 8, 9, p).unwrap();
        let ac = mac.read_products(9, p, 1).unwrap()[0];
        mac.write_words(10, Precision::P16, &[ab]).unwrap();
        mac.write_words(11, Precision::P16, &[ac]).unwrap();
        mac.add(10, 11, 12, Precision::P16).unwrap();
        let rhs = mac.read_words(12, Precision::P16, 1).unwrap()[0];

        prop_assert_eq!(lhs, (a * ((b + c) & 0xFF)) & 0xFFFF);
        prop_assert_eq!(rhs, (a * b + a * c) & 0xFFFF);
    }
}
