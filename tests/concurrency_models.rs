//! Tier-1 coverage of the concurrency models: runs every model in the
//! stats and server suites under a small seed matrix, so a plain
//! `cargo test -q` exercises the same invariants CI's dedicated
//! model-check job explores more deeply (16 seeds; see `repro
//! model-check`). Failures print a replay seed — rerun with
//! `BPIMC_MODEL_SEED=<seed>` (or `repro model-check --model <name>
//! --seed <seed>`) for a byte-identical schedule.

use bpimc_stats::sync::model::{check, ExploreConfig};

/// Seeds per model for the light tier-1 pass (CI's model-check job runs
/// the full matrix; `BPIMC_MODEL_SEEDS` overrides both).
const LIGHT_SEEDS: u64 = 4;

#[test]
fn stats_models_hold() {
    let cfg = ExploreConfig::from_env(LIGHT_SEEDS);
    for spec in bpimc_stats::sync::models::MODELS {
        check(spec.name, &cfg, spec.run);
    }
}

#[test]
fn server_models_hold() {
    let cfg = ExploreConfig::from_env(LIGHT_SEEDS);
    for spec in bpimc_server::models::MODELS {
        check(spec.name, &cfg, spec.run);
    }
}
