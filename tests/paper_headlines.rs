//! The paper's headline claims, asserted against the models end to end.
//!
//! Each test names the claim as the paper states it and the tolerance we
//! accept from a behavioral (non-PDK) reproduction. `EXPERIMENTS.md` records
//! the measured values.

use bpimc::bench::experiments::{fig7b, fig8, fig9, table1, table3};
use bpimc::core::Precision;
use bpimc::device::Env;
use bpimc::metrics::energy::Table2Op;
use bpimc::metrics::{calibrate, AreaModel, FrequencyModel, TopsModel};

/// "it can achieve 2.25GHz clock frequency at 1.0V".
#[test]
fn claim_2_25_ghz_at_1v() {
    let f = FrequencyModel.fmax(&Env::nominal().with_vdd(1.0));
    assert!((f - 2.25e9).abs() / 2.25e9 < 0.02, "fmax {f:.3e}");
}

/// Table III: 372 MHz at 0.6 V (the wide supply-range claim's low end).
#[test]
fn claim_372_mhz_at_0v6() {
    let f = FrequencyModel.fmax(&Env::nominal().with_vdd(0.6));
    assert!((f - 372e6).abs() / 372e6 < 0.06, "fmax {f:.3e}");
}

/// "achieves 0.68, 8.09 TOPS/W" (Table III assignment: MULT 0.68, ADD 8.09).
#[test]
fn claim_tops_per_watt() {
    let m = TopsModel::paper_calibrated();
    let add = m.tops_per_watt(Table2Op::Add, Precision::P8, true, 0.6);
    let mult = m.tops_per_watt(Table2Op::Mult, Precision::P8, true, 0.6);
    assert!((add - 8.09).abs() / 8.09 < 0.15, "ADD {add}");
    assert!((mult - 0.68).abs() / 0.68 < 0.15, "MULT {mult}");
}

/// "5.2% of area overhead".
#[test]
fn claim_area_overhead() {
    let ovh =
        AreaModel::default_28nm().overhead_fraction(&bpimc::array::ArrayGeometry::paper_macro());
    assert!((ovh - 0.052).abs() < 0.005, "overhead {ovh}");
}

/// "the proposed FA improves the critical path delay 1.8X-2.2X".
#[test]
fn claim_fa_speedup_band() {
    let (lo, hi) = fig7b::run().speedup_band();
    assert!(lo >= 1.7 && hi <= 2.3, "band {lo:.2}-{hi:.2}");
}

/// Table I: every operation's cycle count, measured by execution.
#[test]
fn claim_table1_cycle_counts() {
    assert!(table1::run().all_match());
}

/// Table II: the activity-driven energy model reproduces all 15 cells
/// within 10% RMS.
#[test]
fn claim_table2_energy_fit() {
    let report = calibrate::calibrate();
    assert!(report.rms_rel_err < 0.10, "rms {:.3}", report.rms_rel_err);
}

/// Fig. 9: the bit-parallel advantage grows with BL size; 8-bit MULT loses
/// to bit-serial only at BL = 128 (ratio 1.19) and wins beyond.
#[test]
fn claim_fig9_shape() {
    let r = fig9::run();
    assert!((r.add[0].ratio() - 0.38).abs() < 0.01);
    assert!((r.mult[0].ratio() - 1.19).abs() < 0.01);
    assert!(r.mult[1].ratio() < 1.0 && r.mult[3].ratio() < 0.25);
}

/// Fig. 8 breakdown percentages as published.
#[test]
fn claim_fig8_breakdown() {
    let r = fig8::run();
    let shares: Vec<f64> = r.fractions.iter().map(|(_, _, f)| f * 100.0).collect();
    for (got, want) in shares.iter().zip([10.0, 23.2, 21.6, 36.8, 8.5]) {
        assert!((got - want).abs() < 0.2, "{got} vs {want}");
    }
}

/// Table III: the proposed row dominates the bit-serial baseline on both
/// clock rate and efficiency while using plain 6T cells.
#[test]
fn claim_table3_dominance() {
    let t = table3::run();
    let bs = t.cited[1];
    assert!(t.proposed.fmax_hz > 4.0 * bs.max_freq_hz);
    assert!(t.proposed.tops_w_add > bs.tops_w_add.unwrap());
    assert!(t.proposed.tops_w_mult > bs.tops_w_mult.unwrap());
}
