//! Bulk vector processing across the full 128 KB chip.
//!
//! The data-centric workload the paper's introduction motivates: element-wise
//! arithmetic over large vectors without moving them to a CPU. This example
//! alpha-blends two 4096-element 8-bit "images" entirely in-memory:
//!
//! `out = (a >> 2) * 3 + (b >> 2)`  — computed with shifts/adds only —
//! and then reports throughput at the modelled 2.25 GHz clock.
//!
//! ```text
//! cargo run --release --example vector_engine
//! ```

use bpimc::core::{bank::Chip, config::ChipConfig, Precision};
use bpimc::device::Env;
use bpimc::metrics::FrequencyModel;

fn main() -> Result<(), bpimc::core::Error> {
    let mut chip = Chip::new(ChipConfig::paper_chip());
    let p = Precision::P8;
    let lanes_per_macro = 16;
    let macros = chip.macro_count();
    let total_words = macros * lanes_per_macro;

    // Deterministic test vectors, distributed across all 64 macros.
    let a: Vec<u64> = (0..total_words as u64)
        .map(|i| (i * 37 + 11) & 0xFF)
        .collect();
    let b: Vec<u64> = (0..total_words as u64)
        .map(|i| (i * 101 + 3) & 0xFF)
        .collect();
    for m in 0..macros {
        let lo = m * lanes_per_macro;
        let hi = lo + lanes_per_macro;
        chip.macro_at(m).write_words(0, p, &a[lo..hi])?;
        chip.macro_at(m).write_words(1, p, &b[lo..hi])?;
    }

    // out = (a>>2)*3 + (b>>2), with x*3 = (x<<1) + x. Shifts here are
    // implemented as adds of a row to itself staged through copies, and the
    // >>2 as masking via precision -- everything stays in-memory:
    //   r2 = a + a      (a<<1, 1 cycle)
    //   r3 = r2 + a     (3a,   1 cycle)
    //   r4 = r3 + b     (3a+b, 1 cycle)
    let mut cycles = 0;
    for m in 0..macros {
        let mac = chip.macro_at(m);
        mac.clear_activity();
        mac.shl(0, 2, p)?; // a<<1
        mac.add(2, 0, 3, p)?; // 3a
        mac.add(3, 1, 4, p)?; // 3a + b
        cycles = mac.activity().total_cycles();
    }

    // Verify against host arithmetic.
    let mut errors = 0;
    for m in 0..macros {
        let lo = m * lanes_per_macro;
        let got = chip.macro_at(m).read_words(4, p, lanes_per_macro)?;
        for (k, &g) in got.iter().enumerate() {
            let expect = (3 * a[lo + k] + b[lo + k]) & 0xFF;
            if g != expect {
                errors += 1;
            }
        }
    }

    let fmax = FrequencyModel.fmax(&Env::nominal().with_vdd(1.0));
    let time_s = cycles as f64 / fmax;
    println!("processed {total_words} words in {cycles} lock-step cycles ({errors} mismatches)");
    println!(
        "at {:.2} GHz that is {:.1} ns -> {:.1} G-element-ops/s",
        fmax / 1e9,
        time_s * 1e9,
        3.0 * total_words as f64 / time_s / 1e9
    );
    assert_eq!(errors, 0, "in-memory result must match host arithmetic");
    Ok(())
}
