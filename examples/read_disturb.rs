//! Circuit-level demonstration of the read-disturb problem (the paper's
//! Fig. 1) and the two fixes.
//!
//! Runs real transient simulations of the dual word-line compute access
//! under three word-line schemes and prints the storage-node disturb
//! margins and BL computing delays:
//!
//! * full static WL — fast but the cells get dangerously close to flipping,
//! * WLUD (0.55 V) — safe but slow,
//! * short WL (140 ps) + BL boosting — the paper's scheme: safe *and* fast.
//!
//! ```text
//! cargo run --release --example read_disturb
//! ```

use bpimc::cell::blbench::{BlComputeBench, WlScheme};
use bpimc::cell::boost::BoostDevices;
use bpimc::cell::sram6t::CellDevices;
use bpimc::device::Env;

fn main() {
    let env = Env::nominal();
    println!("dual-WL compute access, A=0 / B=1 (worst-case disturb pattern), 0.9 V NN\n");
    println!(
        "{:<28} {:>12} {:>16} {:>10}",
        "WL scheme", "BL delay", "disturb margin", "flipped?"
    );
    for (name, scheme) in [
        ("full static WL", WlScheme::FullStatic),
        ("WLUD 0.55 V", WlScheme::Wlud { v_wl: 0.55 }),
        ("short WL 140 ps + boost", WlScheme::short_boost_140ps()),
    ] {
        let bench = BlComputeBench::new(128, env, scheme);
        let cell = CellDevices::nominal(bench.sizing);
        let boost = BoostDevices::nominal(bench.boost_sizing);
        let out = bench
            .run(&cell, &cell, &boost, &boost, false, true)
            .expect("bench runs");
        println!(
            "{:<28} {:>9.0} ps {:>13.0} mV {:>10}",
            name,
            out.delay_s.map_or(f64::NAN, |d| d * 1e12),
            out.worst_margin() * 1e3,
            if out.flipped { "FLIPPED" } else { "no" }
        );
    }
    println!(
        "\nThe short pulse closes the access transistors before the falling BL can\n\
         drag the storage node past its trip point; the booster then finishes the\n\
         BL swing with its own (large, LVT) devices. Margins shrink as mismatch is\n\
         added -- see `repro fig2` for the Monte-Carlo failure analysis."
    );
}
