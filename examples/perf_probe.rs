//! Wall-clock probe: imc_dot-heavy NN evaluation + mult/reduce_add micro ops.
use bpimc::core::{ImcMacro, MacroConfig, Precision};
use bpimc::nn::{Dataset, PrototypeClassifier};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    // NN evaluation: 4 classes x 64 features x 400 samples at P8.
    let d = Dataset::synthetic_blobs(4, 64, 400, 7);
    let mut clf = PrototypeClassifier::fit(&d, Precision::P8);
    let t0 = Instant::now();
    let r = clf.evaluate(&d);
    let nn_s = t0.elapsed().as_secs_f64();
    println!(
        "nn_eval_s {nn_s:.4} accuracy {:.3} cycles {}",
        r.accuracy, r.cycles
    );

    // Micro ops on one macro.
    let p = Precision::P8;
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    mac.write_mult_operands(0, p, &[123; 8]).unwrap();
    mac.write_mult_operands(1, p, &[45; 8]).unwrap();
    let t0 = Instant::now();
    let n = 20000;
    for _ in 0..n {
        black_box(mac.mult(0, 1, 2, p).unwrap());
        mac.clear_activity();
    }
    println!("mult_us {:.3}", t0.elapsed().as_secs_f64() * 1e6 / n as f64);

    for r in 0..8 {
        mac.write_words(3 + r, p, &[(r as u64 * 31) % 256; 16])
            .unwrap();
    }
    let rows: Vec<usize> = (3..11).collect();
    let t0 = Instant::now();
    for _ in 0..n {
        black_box(mac.reduce_add(&rows, 12, p).unwrap());
        mac.clear_activity();
    }
    println!(
        "reduce_add_us {:.3}",
        t0.elapsed().as_secs_f64() * 1e6 / n as f64
    );
}
