//! Quickstart: the macro's full operation set in a few lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bpimc::core::{ImcMacro, LogicOp, MacroConfig, Precision};

fn main() -> Result<(), bpimc::core::Error> {
    // One 128 x 128 macro with 3 dummy rows, BL separator enabled.
    let mut mac = ImcMacro::new(MacroConfig::paper_macro());
    let p = Precision::P8;

    // Sixteen 8-bit words fit one row.
    let a: Vec<u64> = (0..16).map(|i| 10 * i + 7).collect();
    let b: Vec<u64> = (0..16).map(|i| 3 * i + 1).collect();
    mac.write_words(0, p, &a)?;
    mac.write_words(1, p, &b)?;

    // Single-cycle bit-parallel operations.
    let c_xor = mac.logic(LogicOp::Xor, 0, 1, 2)?;
    let c_add = mac.add(0, 1, 3, p)?;
    let c_shl = mac.shl(0, 4, p)?;
    // Two-cycle subtraction, N+2-cycle multiplication.
    let c_sub = mac.sub(0, 1, 5, p)?;
    mac.write_mult_operands(6, p, &a[..8])?;
    mac.write_mult_operands(7, p, &b[..8])?;
    let c_mul = mac.mult(6, 7, 8, p)?;

    println!("cycles: XOR={c_xor} ADD={c_add} SHL={c_shl} SUB={c_sub} MULT={c_mul}");
    println!("a        = {:?}", a);
    println!("b        = {:?}", b);
    println!("a xor b  = {:?}", mac.read_words(2, p, 16)?);
    println!("a +  b   = {:?}", mac.read_words(3, p, 16)?);
    println!("a << 1   = {:?}", mac.read_words(4, p, 16)?);
    println!("a -  b   = {:?}", mac.read_words(5, p, 16)?);
    println!("a *  b   = {:?}", mac.read_products(8, p, 8)?);

    // Activity accounting: how many write-backs the BL separator shielded.
    println!(
        "separator: {} shielded / {} exposed write-backs",
        mac.separator().shielded(),
        mac.separator().exposed()
    );
    println!("total cycles logged: {}", mac.activity().total_cycles());
    Ok(())
}
