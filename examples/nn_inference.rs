//! Quantized inference with reconfigurable precision — the paper's
//! motivating application.
//!
//! A nearest-prototype classifier runs its dot products on the IMC macro at
//! 2-, 4- and 8-bit precision; the printout shows the accuracy / cycles /
//! energy trade the reconfigurable datapath buys.
//!
//! ```text
//! cargo run --release --example nn_inference
//! ```

use bpimc::core::Precision;
use bpimc::nn::{classifier::PrototypeClassifier, dataset::Dataset};

fn main() {
    let data = Dataset::synthetic_blobs(4, 8, 100, 2020);
    println!(
        "dataset: {} samples, {} classes, {}-dim features",
        data.len(),
        data.classes,
        data.dim
    );
    println!(
        "{:<10} {:>10} {:>14} {:>16} {:>18}",
        "precision", "accuracy", "cycles/sample", "energy/sample", "rel. energy"
    );
    let mut base_energy = None;
    for p in [Precision::P8, Precision::P4, Precision::P2] {
        let mut clf = PrototypeClassifier::fit(&data, p);
        let r = clf.evaluate(&data);
        let e = r.energy_per_sample_fj();
        let base = *base_energy.get_or_insert(e);
        println!(
            "{:<10} {:>9.1}% {:>14.1} {:>13.1} fJ {:>17.2}x",
            p.to_string(),
            r.accuracy * 100.0,
            r.cycles_per_sample(),
            e,
            e / base
        );
    }
    println!("\n(energy at 0.9 V from the Table II-calibrated activity model)");
}
